"""End-to-end runner tests: determinism, pairing, accounting."""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, run_simulation, schedule_workload
from repro.workload.scenarios import Scenario

#: Small but non-trivial: ~2 simulated minutes on the paper topology.
QUICK = SimulationConfig(
    seed=3,
    scenario=Scenario.PSD,
    strategy="eb",
    publishing_rate_per_min=10.0,
    duration_ms=120_000.0,
)


class TestDeterminism:
    def test_same_config_same_result(self):
        assert run_simulation(QUICK) == run_simulation(QUICK)

    def test_different_seed_different_result(self):
        a = run_simulation(QUICK)
        b = run_simulation(QUICK.replace(seed=4))
        assert a != b

    def test_workload_paired_across_strategies(self):
        """Different strategies must see the identical publication stream."""
        a = run_simulation(QUICK.replace(strategy="fifo"))
        b = run_simulation(QUICK.replace(strategy="rl"))
        assert a.published == b.published
        assert a.total_interested == b.total_interested


class TestAccounting:
    def test_metrics_internally_consistent(self):
        r = run_simulation(QUICK)
        assert r.published > 0
        assert r.deliveries_valid <= r.total_interested
        assert r.message_number >= r.published  # every message enters once
        assert 0.0 <= r.delivery_rate <= 1.0
        assert r.executed_events > 0

    def test_psd_earning_counts_unit_prices(self):
        r = run_simulation(QUICK)
        # PSD prices default to 1: earning == valid deliveries.
        assert r.earning == pytest.approx(float(r.deliveries_valid))

    def test_ssd_earning_at_least_deliveries(self):
        r = run_simulation(QUICK.replace(scenario=Scenario.SSD))
        # SSD prices are in {1,2,3}: earning between 1x and 3x deliveries.
        assert r.deliveries_valid <= r.earning <= 3 * r.deliveries_valid

    def test_hybrid_scenario_runs(self):
        r = run_simulation(QUICK.replace(scenario=Scenario.HYBRID))
        assert r.published > 0
        # Hybrid bounds are min(message, subscription): never easier than SSD.
        ssd = run_simulation(QUICK.replace(scenario=Scenario.SSD))
        assert r.deliveries_valid <= ssd.deliveries_valid

    def test_zero_rate_runs_clean(self):
        r = run_simulation(QUICK.replace(publishing_rate_per_min=0.0))
        assert r.published == 0
        assert r.message_number == 0
        assert r.delivery_rate == 0.0


class TestBuildSystem:
    def test_system_matches_spec(self):
        system = build_system(QUICK)
        assert len(system.brokers) == 32
        assert system.subscription_count == 160

    def test_schedule_workload_counts(self):
        system = build_system(QUICK)
        n = schedule_workload(system, QUICK)
        # 4 publishers x 10/min x 2 min ~ 80 (Poisson noise).
        assert 40 <= n <= 140
        assert system.sim.pending_events == n

    def test_custom_topology_override(self, line_topology):
        cfg = QUICK.replace(seed=9)
        system = build_system(cfg, topology=line_topology)
        assert sorted(system.brokers) == ["B1", "B2", "B3"]
        assert system.subscription_count == 1


class TestStrategyEquivalences:
    """EBPC at its endpoints makes exactly the same decisions as EB / PC."""

    def test_ebpc_r1_equals_eb(self):
        eb = run_simulation(QUICK)
        ebpc = run_simulation(
            QUICK.replace(strategy="ebpc", strategy_params={"r": 1.0})
        )
        assert ebpc.delivery_rate == eb.delivery_rate
        assert ebpc.message_number == eb.message_number
        assert ebpc.deliveries_valid == eb.deliveries_valid

    def test_ebpc_r0_equals_pc(self):
        pc = run_simulation(QUICK.replace(strategy="pc"))
        ebpc = run_simulation(
            QUICK.replace(strategy="ebpc", strategy_params={"r": 0.0})
        )
        assert ebpc.delivery_rate == pc.delivery_rate
        assert ebpc.message_number == pc.message_number
