"""Parallel sweep executor: determinism, caching, fingerprints."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.sim.parallel as parallel
from repro.sim.config import SimulationConfig
from repro.sim.parallel import (
    ParallelPointRunner,
    PointCache,
    config_fingerprint,
    make_point_runner,
)
from repro.sim.runner import run_simulation
from repro.sim.sweep import run_points_serial, sweep_publishing_rate, sweep_r_weight
from repro.workload.scenarios import Scenario

TINY = SimulationConfig(
    seed=0, scenario=Scenario.SSD, publishing_rate_per_min=6.0, duration_ms=5_000.0
)


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert config_fingerprint(TINY) == config_fingerprint(TINY.replace())

    def test_sensitive_to_every_relevant_knob(self):
        base = config_fingerprint(TINY)
        for changed in (
            TINY.replace(seed=1),
            TINY.replace(strategy="pc"),
            TINY.replace(strategy_params={"r": 0.7}),
            TINY.replace(publishing_rate_per_min=9.0),
            TINY.replace(scenario=Scenario.PSD),
            TINY.replace(duration_ms=6_000.0),
            TINY.replace(queue_backend="scan"),
        ):
            assert config_fingerprint(changed) != base

    def test_result_neutral_log_knobs_share_fingerprints(self):
        """log_spill/log_chunk_rows change residency, never results, so a
        spilled sweep must hit the cache a plain sweep populated."""
        assert config_fingerprint(TINY) == config_fingerprint(
            TINY.replace(log_spill=True, log_chunk_rows=256)
        )

    def test_fingerprint_is_hex_sha256(self):
        fp = config_fingerprint(TINY)
        assert len(fp) == 64
        int(fp, 16)


class TestPointCache:
    def test_round_trip(self, tmp_path):
        cache = PointCache(tmp_path / "points")
        assert cache.get(TINY) is None
        result = run_simulation(TINY)
        cache.put(TINY, result)
        assert cache.get(TINY) == result
        assert len(cache) == 1

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = PointCache(tmp_path)
        (tmp_path / f"{config_fingerprint(TINY)}.json").write_text("{not json")
        assert cache.get(TINY) is None

    def test_valid_json_non_object_entry_recomputed(self, tmp_path):
        cache = PointCache(tmp_path)
        (tmp_path / f"{config_fingerprint(TINY)}.json").write_text("5")
        assert cache.get(TINY) is None

    def test_stale_schema_entry_recomputed(self, tmp_path):
        cache = PointCache(tmp_path)
        (tmp_path / f"{config_fingerprint(TINY)}.json").write_text(
            json.dumps({"strategy": "eb"})  # missing every other field
        )
        assert cache.get(TINY) is None

    def test_corrupt_entry_is_deleted_not_poisonous(self, tmp_path):
        """Satellite regression: a truncated file left by a killed run (or
        a full disk) must be a cache miss AND be removed, so neither this
        sweep nor a later one trips over it again."""
        cache = PointCache(tmp_path)
        path = tmp_path / f"{config_fingerprint(TINY)}.json"
        path.write_text('{"strategy": "eb", "scenario"')  # torn mid-write
        assert cache.get(TINY) is None
        assert not path.exists()
        # The slot is immediately reusable.
        result = run_simulation(TINY)
        cache.put(TINY, result)
        assert cache.get(TINY) == result

    def test_undecodable_bytes_entry_is_a_miss(self, tmp_path):
        cache = PointCache(tmp_path)
        path = tmp_path / f"{config_fingerprint(TINY)}.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x80")  # not valid UTF-8
        assert cache.get(TINY) is None
        assert not path.exists()

    def test_unreadable_entry_is_a_miss(self, tmp_path, monkeypatch):
        """An OSError while reading (NFS hiccup, permissions) is a miss,
        not a sweep abort."""
        cache = PointCache(tmp_path)
        path = tmp_path / f"{config_fingerprint(TINY)}.json"
        path.write_text("{}")
        real_read = Path.read_text

        def flaky_read(self, *a, **kw):
            if self == path:
                raise OSError("I/O error")
            return real_read(self, *a, **kw)

        monkeypatch.setattr(Path, "read_text", flaky_read)
        assert cache.get(TINY) is None


class TestParallelRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelPointRunner(jobs=0)

    def test_parallel_results_identical_to_serial(self):
        configs = [TINY.replace(seed=s) for s in range(3)]
        assert ParallelPointRunner(jobs=2)(configs) == run_points_serial(configs)

    def test_cache_skips_finished_points(self, tmp_path, monkeypatch):
        runner = ParallelPointRunner(jobs=1, cache=PointCache(tmp_path))
        configs = [TINY.replace(seed=s) for s in range(2)]
        first = runner(configs)
        calls = []

        def boom(config):
            calls.append(config)
            raise AssertionError("cache miss on a cached point")

        monkeypatch.setattr(parallel, "_run_point", boom)
        assert runner(configs) == first
        assert calls == []

    def test_failed_batch_still_caches_finished_points(self, tmp_path, monkeypatch):
        """A point that raises mid-batch must not discard finished points."""
        cache = PointCache(tmp_path)
        runner = ParallelPointRunner(jobs=1, cache=cache)
        good, bad = TINY.replace(seed=0), TINY.replace(seed=1)

        def sometimes(config):
            if config.seed == 1:
                raise RuntimeError("simulated worker crash")
            return run_simulation(config)

        monkeypatch.setattr(parallel, "_run_point", sometimes)
        with pytest.raises(RuntimeError):
            runner([good, bad])
        assert cache.get(good) is not None  # finished point survived
        assert cache.get(bad) is None

    def test_cache_dir_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("hello")
        with pytest.raises(NotADirectoryError):
            PointCache(target)

    def test_make_point_runner_serial_default(self, tmp_path):
        assert make_point_runner(None, None) is run_points_serial
        assert make_point_runner(1, None) is run_points_serial
        assert isinstance(make_point_runner(2, None), ParallelPointRunner)
        assert isinstance(make_point_runner(None, tmp_path / "a"), ParallelPointRunner)
        assert isinstance(make_point_runner(1, tmp_path / "b"), ParallelPointRunner)


class TestSweepIntegration:
    def test_rate_sweep_parallel_matches_serial(self):
        serial = sweep_publishing_rate(TINY, [3.0, 6.0], ["fifo", "eb"])
        parallel_ = sweep_publishing_rate(
            TINY, [3.0, 6.0], ["fifo", "eb"], point_runner=ParallelPointRunner(jobs=2)
        )
        assert serial.series == parallel_.series
        assert serial.x_values == parallel_.x_values

    def test_r_sweep_parallel_matches_serial(self):
        serial = sweep_r_weight(TINY, [0.0, 0.5, 1.0])
        parallel_ = sweep_r_weight(
            TINY, [0.0, 0.5, 1.0], point_runner=ParallelPointRunner(jobs=2)
        )
        assert serial.series == parallel_.series

    def test_multi_seed_mean_stored(self):
        sweep = sweep_publishing_rate(TINY, [6.0], ["fifo"], seeds=[0, 1])
        single = sweep_publishing_rate(TINY, [6.0], ["fifo"], seeds=[0])
        collapsed = sweep.series["fifo"][0]
        lone = single.series["fifo"][0]
        # The docstring promises the per-seed mean, not the seed-0 run.
        per_seed = [
            run_simulation(TINY.replace(strategy="fifo", publishing_rate_per_min=6.0, seed=s))
            for s in (0, 1)
        ]
        if per_seed[0].earning != per_seed[1].earning:
            assert collapsed.earning != lone.earning
        assert collapsed.earning == pytest.approx(
            sum(r.earning for r in per_seed) / 2
        )


class TestPointRetry:
    @pytest.fixture(autouse=True)
    def _fast_backoff(self, monkeypatch):
        monkeypatch.setattr(parallel, "_POINT_BACKOFF_S", 0.0)

    def test_transient_failure_heals(self, monkeypatch):
        attempts = []

        def flaky(config):
            attempts.append(config)
            if len(attempts) < 3:
                raise OSError("transient spill hiccup")
            return run_simulation(config)

        monkeypatch.setattr(parallel, "_run_point", flaky)
        result = parallel._run_point_retrying(TINY, retries=2, backoff_s=0.0)
        assert result == run_simulation(TINY)
        assert len(attempts) == 3

    def test_persistent_failure_propagates_after_budget(self, monkeypatch):
        attempts = []

        def always(config):
            attempts.append(config)
            raise RuntimeError("deterministic failure")

        monkeypatch.setattr(parallel, "_run_point", always)
        with pytest.raises(RuntimeError, match="deterministic"):
            parallel._run_point_retrying(TINY, retries=2, backoff_s=0.0)
        assert len(attempts) == 3  # retries + 1

    def test_zero_retries_is_single_shot(self, monkeypatch):
        attempts = []

        def always(config):
            attempts.append(config)
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel, "_run_point", always)
        with pytest.raises(RuntimeError):
            parallel._run_point_retrying(TINY, retries=0, backoff_s=0.0)
        assert len(attempts) == 1

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            ParallelPointRunner(jobs=1, retries=-1)
        with pytest.raises(ValueError):
            ParallelPointRunner(jobs=1, max_respawns=-1)

    def test_serial_path_retries(self, tmp_path, monkeypatch):
        """jobs=1 goes through the same bounded-retry entry as the pool."""
        attempts = []

        def flaky(config):
            attempts.append(config)
            if len(attempts) == 1:
                raise OSError("transient")
            return run_simulation(config)

        monkeypatch.setattr(parallel, "_run_point", flaky)
        runner = ParallelPointRunner(jobs=1, cache=PointCache(tmp_path))
        results = runner([TINY])
        assert results == [run_simulation(TINY)]
        assert len(attempts) == 2
        assert runner.cache.get(TINY) is not None


class TestBrokenPoolRecovery:
    """Worker death (os._exit — bypasses worker-side retry entirely) must
    respawn the pool and recover the lost points, not abort the sweep.

    The pool start method on Linux is fork, so monkeypatching
    ``parallel._run_point`` in the parent is inherited by the workers.
    """

    def test_sweep_survives_one_worker_crash(self, tmp_path, monkeypatch):
        import os

        sentinel = tmp_path / "crashed-once"

        def crash_once(config):
            if config.seed == 1 and not sentinel.exists():
                sentinel.write_text("x")
                os._exit(1)  # hard kill: BrokenProcessPool in the parent
            return run_simulation(config)

        monkeypatch.setattr(parallel, "_run_point", crash_once)
        configs = [TINY.replace(seed=s) for s in range(3)]
        runner = ParallelPointRunner(jobs=2, max_respawns=2)
        with pytest.warns(RuntimeWarning, match="respawning"):
            results = runner(configs)
        assert sentinel.exists()
        assert results == run_points_serial(configs)

    def test_unrecoverable_points_marked_failed_not_fatal(self, tmp_path, monkeypatch):
        import os
        import time

        cache = PointCache(tmp_path / "cache")
        good, bad = TINY.replace(seed=0), TINY.replace(seed=1)
        good_entry = cache.root / f"{config_fingerprint(good)}.json"

        def crash_after_good(config):
            if config.seed == 1:
                # Die only once the good point's result is cached (the
                # parent caches completions as they arrive), so exactly
                # one point is unrecoverable — deterministically.
                deadline = time.time() + 30.0
                while not good_entry.exists() and time.time() < deadline:
                    time.sleep(0.01)
                os._exit(1)
            return run_simulation(config)

        monkeypatch.setattr(parallel, "_run_point", crash_after_good)
        runner = ParallelPointRunner(jobs=2, cache=cache, max_respawns=1)
        # Both the respawn warning and the final unrecoverable warning
        # fire; pytest.warns swallows all recorded RuntimeWarnings.
        with pytest.warns(RuntimeWarning) as recorded:
            results = runner([good, bad])
        assert any("unrecoverable" in str(w.message) for w in recorded)
        assert results[0] == run_simulation(good)
        failure = results[1]
        assert isinstance(failure, parallel.PointFailure)
        assert failure.config.seed == 1
        assert failure.attempts == 2  # initial pool + 1 respawn
        # The survivor was cached; the placeholder must never be.
        assert cache.get(good) is not None
        assert cache.get(bad) is None


class TestCacheDurability:
    def test_put_is_atomic_no_tmp_residue(self, tmp_path):
        cache = PointCache(tmp_path)
        cache.put(TINY, run_simulation(TINY))
        assert not list(tmp_path.glob("*.tmp"))
        assert cache.get(TINY) is not None

    def test_old_orphan_tmp_swept_on_open(self, tmp_path):
        import os
        import time

        old = tmp_path / "deadbeef.12345.tmp"
        old.write_text("torn write from a killed sweep")
        stale = time.time() - 2 * PointCache._TMP_ORPHAN_AGE_S
        os.utime(old, (stale, stale))
        fresh = tmp_path / "cafebabe.6789.tmp"
        fresh.write_text("concurrent writer, in flight")
        PointCache(tmp_path)
        assert not old.exists()  # stale orphan reaped
        assert fresh.exists()  # young file untouched (may be mid-replace)


class TestCliJobs:
    def test_jobs_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig5a", "--scale", "0.02", "--jobs", "4"])
        assert args.jobs == 4
        assert args.cache_dir is None
        args = build_parser().parse_args(["fig6b", "--cache-dir", "/tmp/pts"])
        assert args.jobs == 1
        assert args.cache_dir == "/tmp/pts"
