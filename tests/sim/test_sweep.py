"""Sweep harness tests."""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.sweep import sweep_publishing_rate, sweep_r_weight
from repro.workload.scenarios import Scenario

BASE = SimulationConfig(
    seed=1,
    scenario=Scenario.PSD,
    publishing_rate_per_min=10.0,
    duration_ms=60_000.0,
)


class TestRateSweep:
    def test_structure(self):
        sweep = sweep_publishing_rate(BASE, rates=[2.0, 8.0], strategies=["fifo", "eb"])
        assert sweep.x_values == [2.0, 8.0]
        assert set(sweep.series) == {"fifo", "eb"}
        assert all(len(v) == 2 for v in sweep.series.values())

    def test_rates_applied(self):
        sweep = sweep_publishing_rate(BASE, rates=[2.0, 8.0], strategies=["fifo"])
        runs = sweep.series["fifo"]
        assert runs[0].publishing_rate_per_min == 2.0
        assert runs[1].publishing_rate_per_min == 8.0
        assert runs[0].published < runs[1].published

    def test_parametrised_strategy(self):
        sweep = sweep_publishing_rate(
            BASE, rates=[5.0], strategies=[("ebpc", {"r": 0.3})]
        )
        assert list(sweep.series) == ["ebpc(r=0.3)"]
        assert sweep.series["ebpc(r=0.3)"][0].strategy == "ebpc(r=0.3)"

    def test_metric_extraction(self):
        sweep = sweep_publishing_rate(BASE, rates=[5.0], strategies=["fifo"])
        values = sweep.metric("fifo", lambda r: r.delivery_rate)
        assert len(values) == 1 and 0.0 <= values[0] <= 1.0
        table = sweep.table(lambda r: r.delivery_rate)
        assert table == {"fifo": values}

    def test_multi_seed_aggregation(self):
        sweep = sweep_publishing_rate(
            BASE, rates=[5.0], strategies=["fifo"], seeds=[1, 2, 3]
        )
        run = sweep.series["fifo"][0]
        singles = [
            sweep_publishing_rate(BASE.replace(seed=s), [5.0], ["fifo"]).series["fifo"][0]
            for s in (1, 2, 3)
        ]
        assert run.delivery_rate == pytest.approx(
            sum(r.delivery_rate for r in singles) / 3
        )


class TestRSweep:
    def test_structure(self):
        sweep = sweep_r_weight(BASE, r_values=[0.0, 0.5, 1.0])
        assert set(sweep.series) == {"ebpc", "eb", "pc"}
        assert len(sweep.series["ebpc"]) == 3

    def test_reference_lines_flat(self):
        sweep = sweep_r_weight(BASE, r_values=[0.0, 1.0])
        assert sweep.series["eb"][0] is sweep.series["eb"][1]
        assert sweep.series["pc"][0] is sweep.series["pc"][1]

    def test_endpoints_match_references(self):
        sweep = sweep_r_weight(BASE, r_values=[0.0, 1.0])
        assert sweep.series["ebpc"][1].delivery_rate == sweep.series["eb"][0].delivery_rate
        assert sweep.series["ebpc"][0].delivery_rate == sweep.series["pc"][0].delivery_rate


class TestAggregation:
    def _result(self, **kw) -> SimulationResult:
        defaults = dict(
            strategy="eb", scenario="psd", seed=0, publishing_rate_per_min=1.0,
            published=10, message_number=100, transmissions=90,
            deliveries_valid=8, deliveries_late=1, pruned=2,
            total_interested=10, delivery_rate=0.8, earning=8.0,
            mean_latency_ms=100.0, residual_queued=0, executed_events=500,
        )
        defaults.update(kw)
        return SimulationResult(**defaults)

    def test_means(self):
        agg = aggregate_results([
            self._result(delivery_rate=0.8, earning=8.0),
            self._result(delivery_rate=0.4, earning=4.0),
        ])
        assert agg["delivery_rate"] == pytest.approx(0.6)
        assert agg["earning"] == pytest.approx(6.0)
        assert agg["replicas"] == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])
