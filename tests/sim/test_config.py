"""SimulationConfig tests."""

from __future__ import annotations

import pytest

from repro.sim.config import PAPER_DURATION_MS, SimulationConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SimulationConfig()
        assert cfg.duration_ms == PAPER_DURATION_MS == 7_200_000.0
        assert cfg.message_size_kb == 50.0
        assert cfg.processing_delay_ms == 2.0
        assert cfg.epsilon == 5e-4
        assert cfg.topology_spec.layer_sizes == (4, 4, 8, 16)

    def test_horizon(self):
        cfg = SimulationConfig(duration_ms=100.0, grace_ms=50.0)
        assert cfg.horizon_ms == 150.0


class TestReplace:
    def test_replace_creates_new(self):
        a = SimulationConfig()
        b = a.replace(strategy="pc", publishing_rate_per_min=15.0)
        assert a.strategy == "eb"
        assert b.strategy == "pc"
        assert b.publishing_rate_per_min == 15.0
        assert b.duration_ms == a.duration_ms


class TestValidation:
    def test_negative_rate(self):
        with pytest.raises(ValueError):
            SimulationConfig(publishing_rate_per_min=-1.0)

    def test_zero_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_ms=0.0)

    def test_negative_grace(self):
        with pytest.raises(ValueError):
            SimulationConfig(grace_ms=-1.0)


class TestLabels:
    def test_plain_strategy_label(self):
        assert SimulationConfig(strategy="fifo").strategy_label() == "fifo"

    def test_ebpc_label_includes_r(self):
        cfg = SimulationConfig(strategy="ebpc", strategy_params={"r": 0.3})
        assert cfg.strategy_label() == "ebpc(r=0.3)"

    def test_ebpc_label_default_r(self):
        assert SimulationConfig(strategy="ebpc").strategy_label() == "ebpc(r=0.5)"
