"""Runner-level checkpointing: policies, cadence, pruning, resume, CLI."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointMismatch, latest_checkpoint
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    CheckpointPolicy,
    CheckpointStats,
    build_system,
    resume_run,
    run_checkpointed,
    run_simulation,
    save_run_checkpoint,
    schedule_workload,
)
from repro.workload.scenarios import Scenario

TINY = SimulationConfig(
    seed=3, scenario=Scenario.SSD, publishing_rate_per_min=6.0, duration_ms=30_000.0
)


class TestCheckpointPolicy:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointPolicy(tmp_path, every_ms=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(tmp_path, every_ms=-5.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(tmp_path, every_ms=1.0, keep=0)

    def test_directory_coerced_to_path(self, tmp_path):
        from pathlib import Path

        policy = CheckpointPolicy(str(tmp_path), every_ms=1.0)
        assert isinstance(policy.directory, Path)

    def test_stats_accounting(self, tmp_path):
        stats = CheckpointStats()
        stats.note(tmp_path / "a", 0.5, 100)
        stats.note(tmp_path / "b", 0.25, 80)
        assert stats.snapshots == 2
        assert stats.write_s == pytest.approx(0.75)
        assert stats.bytes == 80  # latest size, not a sum
        assert stats.paths == [tmp_path / "a", tmp_path / "b"]


class TestCheckpointedRun:
    def test_checkpointing_does_not_change_the_result(self, tmp_path):
        plain = run_simulation(TINY)
        policy = CheckpointPolicy(tmp_path / "ck", every_ms=10_000.0)
        checkpointed = run_simulation(TINY, checkpoint=policy)
        assert checkpointed == plain

    def test_snapshot_cadence_and_pruning(self, tmp_path):
        system = build_system(TINY)
        schedule_workload(system, TINY)
        policy = CheckpointPolicy(tmp_path / "ck", every_ms=5_000.0, keep=2)
        stats = run_checkpointed(system, TINY, policy)
        # horizon = 30 s publication + grace; boundaries below the horizon
        # each wrote a snapshot, and pruning held the directory at `keep`.
        assert stats.snapshots >= 3
        on_disk = sorted((tmp_path / "ck").glob("ckpt-*"))
        assert len(on_disk) == 2
        assert stats.write_s > 0.0 and stats.bytes > 0

    def test_cadence_longer_than_horizon_writes_nothing(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "ck", every_ms=10_000_000.0)
        result = run_simulation(TINY, checkpoint=policy)
        assert result == run_simulation(TINY)
        assert not (tmp_path / "ck").exists()

    def test_resume_from_root_picks_latest(self, tmp_path):
        system = build_system(TINY)
        schedule_workload(system, TINY)
        policy = CheckpointPolicy(tmp_path / "ck", every_ms=8_000.0, keep=5)
        run_checkpointed(system, TINY, policy)
        newest = latest_checkpoint(tmp_path / "ck")
        assert newest is not None
        by_root, _, _ = resume_run(tmp_path / "ck", config=TINY)
        by_path, _, _ = resume_run(newest, config=TINY)
        assert by_root.sim.executed_events == by_path.sim.executed_events
        assert by_root.sim.now == by_path.sim.now

    def test_resume_refuses_mismatched_config(self, tmp_path):
        system = build_system(TINY)
        schedule_workload(system, TINY)
        system.sim.run(until=10_000.0)
        path, _, _ = save_run_checkpoint(system, TINY, tmp_path / "ck")
        with pytest.raises(CheckpointMismatch, match="config"):
            resume_run(path, config=TINY.replace(strategy="fifo"))
        # Result-neutral spill knobs are NOT part of the identity.
        restored, _, _ = resume_run(
            path, config=TINY.replace(log_spill=True, log_chunk_rows=256)
        )
        assert restored.sim.executed_events == system.sim.executed_events

    def test_run_simulation_resume_path(self, tmp_path):
        system = build_system(TINY)
        schedule_workload(system, TINY)
        system.sim.run(until=12_000.0)
        path, _, _ = save_run_checkpoint(system, TINY, tmp_path / "ck")
        resumed = run_simulation(TINY, resume=path)
        assert resumed == run_simulation(TINY)
        with pytest.raises(ValueError, match="topology"):
            run_simulation(TINY, system.topology, resume=path)

    def test_snapshot_names_order_by_execution(self, tmp_path):
        system = build_system(TINY)
        schedule_workload(system, TINY)
        policy = CheckpointPolicy(tmp_path / "ck", every_ms=8_000.0, keep=10)
        run_checkpointed(system, TINY, policy)
        names = [p.name for p in sorted((tmp_path / "ck").glob("ckpt-*"))]
        executed = [int(n.split("-", 1)[1]) for n in names]
        assert executed == sorted(executed)
        assert latest_checkpoint(tmp_path / "ck").name == names[-1]


class TestCliFlags:
    def test_checkpoint_flags_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "run", "--checkpoint-every", "30",
            "--checkpoint-dir", "/tmp/ck", "--checkpoint-keep", "5",
        ])
        assert args.checkpoint_every == 30.0
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.checkpoint_keep == 5
        assert args.resume is None

    def test_resume_flag_parsed_everywhere(self):
        from repro.cli import build_parser

        for cmd in (["run"], ["scale", "--size", "smoke"], ["dynamics"]):
            args = build_parser().parse_args([*cmd, "--resume", "/tmp/ck"])
            assert args.resume == "/tmp/ck"
            assert args.checkpoint_every is None

    def test_policy_built_from_flags(self):
        from repro.cli import _checkpoint_policy, build_parser

        args = build_parser().parse_args(["run", "--checkpoint-every", "30"])
        policy = _checkpoint_policy(args)
        assert policy is not None
        assert policy.every_ms == 30_000.0  # seconds on the CLI, ms inside
        args = build_parser().parse_args(["run"])
        assert _checkpoint_policy(args) is None
