"""System doctor tests."""

from __future__ import annotations

import pytest

from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription, TableRow
from repro.pubsub.system import RoutingMode, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system
from repro.sim.validation import validate_system
from repro.stats.normal import Normal
from repro.workload.scenarios import Scenario

MATCH_ALL = Predicate("A1", "<", 1e9)
CFG = SimulationConfig(seed=1, scenario=Scenario.SSD, duration_ms=60_000.0)


class TestHealthySystems:
    def test_paper_system_is_clean(self):
        findings = validate_system(build_system(CFG))
        assert findings == []

    def test_multipath_system_is_clean(self):
        from repro.core.strategies import EbStrategy
        from repro.des.rng import RngStreams
        from repro.des.simulator import Simulator
        from repro.pubsub.system import PubSubSystem
        from tests.conftest import make_diamond_topology

        topo = make_diamond_topology(publishers={"P1": "B1"}, subscribers={"S1": "B4"})
        system = PubSubSystem(
            topo, EbStrategy(), Simulator(), RngStreams(0),
            config=SystemConfig(routing=RoutingMode.multi_path(k=2)),
        )
        system.subscribe(Subscription("S1", MATCH_ALL))
        assert validate_system(system) == []

    def test_clean_after_unsubscribe(self):
        system = build_system(CFG)
        system.unsubscribe("S1")
        assert validate_system(system) == []
        assert system.subscription_count == 159


class TestCorruptionDetected:
    def test_broken_row_chain(self):
        system = build_system(CFG)
        # Remove a mid-path row: upstream rows now point into a void.
        victim = None
        for name, broker in system.brokers.items():
            for row in broker.table.rows():
                if row.next_hop is not None and not row.is_local:
                    victim = (row.next_hop, row.subscriber)
                    break
            if victim:
                break
        assert victim is not None
        next_broker, subscriber = victim
        if subscriber in system.brokers[next_broker].table:
            system.brokers[next_broker].table.uninstall(subscriber)
        findings = validate_system(system)
        assert any("no row" in f.what or "no local row" in f.what for f in findings)

    def test_bad_local_row_detected(self):
        system = build_system(CFG)
        # Install a "local" row for a subscriber attached elsewhere.
        bogus = Subscription("intruder", MATCH_ALL)
        system.brokers["B1"].table.install(
            TableRow(
                subscription=bogus, next_hop=None, nn=0,
                rate=Normal(0.0, 0.0), sources=frozenset({"B1"}),
            )
        )
        findings = validate_system(system)
        assert any(f.where.startswith("B1/row[intruder") for f in findings)

    def test_empty_sources_warns(self):
        system = build_system(CFG)
        orphan = Subscription("orphan", MATCH_ALL)
        edge = "B17"  # a layer-4 broker in the paper topology
        system.topology.attach_subscriber("orphan", edge)
        system.brokers[edge].table.install(
            TableRow(
                subscription=orphan, next_hop=None, nn=0,
                rate=Normal(0.0, 0.0), sources=frozenset(),
            )
        )
        findings = validate_system(system)
        assert any(f.severity == "warning" and "empty source set" in f.what for f in findings)


class TestUnsubscribe:
    def test_unsubscribed_rows_removed_everywhere(self):
        system = build_system(CFG)
        assert any("S1" in b.table for b in system.brokers.values())
        handle = system.unsubscribe("S1")
        assert handle.name == "S1"
        assert not any("S1" in b.table for b in system.brokers.values())
        assert "S1" not in system.subscribers

    def test_unsubscribed_gets_no_new_messages(self):
        system = build_system(CFG)
        handle = system.unsubscribe("S1")
        for pub in sorted(system.topology.publisher_brokers):
            system.publish(pub, {"A1": 0.1, "A2": 0.1})  # matches ~everyone
        system.sim.run()
        assert handle.records == []

    def test_unknown_subscriber_raises(self):
        system = build_system(CFG)
        with pytest.raises(KeyError):
            system.unsubscribe("ghost")

    def test_population_count_shrinks(self):
        system = build_system(CFG)
        before = system.publish("P1", {"A1": 0.1, "A2": 0.1})
        system.unsubscribe("S1")
        after = system.publish("P1", {"A1": 0.1, "A2": 0.1})
        assert system.metrics.interested[after.msg_id] <= system.metrics.interested[before.msg_id]
