"""Result persistence round-trip tests."""

from __future__ import annotations

import pytest

from repro.sim.io import (
    load_results_csv,
    load_results_json,
    result_from_dict,
    result_to_dict,
    save_results_csv,
    save_results_json,
)
from repro.sim.results import SimulationResult


def result(**kw) -> SimulationResult:
    defaults = dict(
        strategy="ebpc(r=0.5)", scenario="ssd", seed=3, publishing_rate_per_min=12.0,
        published=100, message_number=1500, transmissions=1400,
        deliveries_valid=80, deliveries_late=5, pruned=20,
        total_interested=120, delivery_rate=80 / 120, earning=160.0,
        mean_latency_ms=12345.6, residual_queued=2, executed_events=9000,
    )
    defaults.update(kw)
    return SimulationResult(**defaults)


class TestDictRoundTrip:
    def test_roundtrip(self):
        r = result()
        assert result_from_dict(result_to_dict(r)) == r

    def test_unknown_field_rejected(self):
        data = result_to_dict(result())
        data["bogus"] = 1
        with pytest.raises(ValueError):
            result_from_dict(data)

    def test_missing_field_rejected(self):
        data = result_to_dict(result())
        del data["earning"]
        with pytest.raises(ValueError):
            result_from_dict(data)


class TestJsonRoundTrip:
    def test_roundtrip(self, tmp_path):
        rs = [result(seed=i) for i in range(3)]
        path = tmp_path / "results.json"
        save_results_json(rs, path)
        assert load_results_json(path) == rs

    def test_empty_list(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results_json([], path)
        assert load_results_json(path) == []


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        rs = [result(seed=i, strategy=f"s{i}") for i in range(3)]
        path = tmp_path / "results.csv"
        save_results_csv(rs, path)
        loaded = load_results_csv(path)
        assert loaded == rs

    def test_types_preserved(self, tmp_path):
        path = tmp_path / "typed.csv"
        save_results_csv([result()], path)
        (loaded,) = load_results_csv(path)
        assert isinstance(loaded.delivery_rate, float)
        assert isinstance(loaded.published, int)
        assert isinstance(loaded.strategy, str)
