"""CLI tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_subcommands_exist(self):
        parser = build_parser()
        for fig in ("fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b"):
            args = parser.parse_args([fig, "--scale", "0.02", "--seed", "3"])
            assert args.command == fig
            assert args.scale == 0.02
            assert args.seed == 3

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "psd"
        assert args.strategy == "eb"
        assert args.rate == 10.0

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "xyz"])

    def test_dynamics_defaults(self):
        args = build_parser().parse_args(["dynamics"])
        assert args.preset == "flash-crowd"
        assert args.metric == "delivery-rate"
        assert args.strategy is None  # -> all strategies

    def test_dynamics_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamics", "--preset", "nope"])


class TestExecution:
    def test_tab1(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "DiffServ" in out

    def test_run_custom_point(self, capsys):
        assert main(["run", "--minutes", "1", "--rate", "5", "--strategy", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "delivery rate" in out
        assert "fifo" in out

    def test_run_ebpc_uses_r(self, capsys):
        assert main(["run", "--minutes", "1", "--strategy", "ebpc", "--r", "0.7"]) == 0
        assert "ebpc(r=0.7)" in capsys.readouterr().out

    def test_figure_tiny_scale(self, capsys):
        assert main(["fig4b", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4(b)" in out
        assert "ebpc" in out

    def test_dynamics_command(self, capsys):
        assert main([
            "dynamics", "--preset", "diurnal", "--minutes", "2", "--window", "30",
            "--rate", "4", "--strategy", "fifo", "--strategy", "eb",
        ]) == 0
        out = capsys.readouterr().out
        assert "Dynamics [diurnal]" in out
        assert "fifo" in out and "eb" in out
        assert "legend:" in out  # ascii chart rendered

    def test_dynamics_queue_metric(self, capsys):
        assert main([
            "dynamics", "--preset", "degrade-worst-link", "--metric", "queue-depth",
            "--minutes", "2", "--window", "30", "--rate", "4", "--strategy", "fifo",
        ]) == 0
        assert "queue" in capsys.readouterr().out

    def test_run_with_log_spill(self, capsys):
        assert main([
            "run", "--minutes", "1", "--rate", "5", "--strategy", "fifo",
            "--log-spill", "--log-chunk", "128",
        ]) == 0
        assert "delivery rate" in capsys.readouterr().out

    def test_scale_smoke_point(self, capsys):
        assert main([
            "scale", "--size", "smoke", "--minutes", "0.5", "--rate", "4",
            "--log-spill", "--log-chunk", "4096",
        ]) == 0
        out = capsys.readouterr().out
        assert "scale-smoke" in out
        assert "spilled chunks" in out
        assert "peak RSS" in out
