"""Shared fixtures: small deterministic topologies and systems."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import Topology, build_from_edges
from repro.stats.normal import Normal

# Arm the invariant sentinel on every run the suite performs (the
# sentinel is decision-neutral, so this cannot change any expected
# value).  setdefault keeps CI's explicit "deep"/"0" overrides in force.
os.environ.setdefault("REPRO_SENTINEL", "1")

# ``REPRO_SHARDS=N`` (same contract, read in PubSubSystem) forces the
# broker-partitioned parallel engine onto every fused run the suite
# performs — sharding is identity-preserving, so the whole tier-1 suite
# must pass unchanged under it.  CI exercises exactly that:
#   REPRO_SHARDS=2 python -m pytest -x -q
# Not set by default here; the dedicated differential tests in
# tests/integration/test_shard_identity.py cover sharding locally.


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=7)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def make_line_topology(
    n: int = 3,
    rate: Normal = Normal(10.0, 4.0),
    publishers: dict[str, str] | None = None,
    subscribers: dict[str, str] | None = None,
) -> Topology:
    """``B1 - B2 - ... - Bn`` with identical link rates."""
    edges = [(f"B{i}", f"B{i + 1}", rate) for i in range(1, n)]
    return build_from_edges(edges, publishers=publishers, subscribers=subscribers)


def make_diamond_topology(
    fast: Normal = Normal(5.0, 1.0),
    slow: Normal = Normal(50.0, 4.0),
    publishers: dict[str, str] | None = None,
    subscribers: dict[str, str] | None = None,
) -> Topology:
    """A diamond ``B1 -> {B2 fast, B3 slow} -> B4``: two distinct paths."""
    edges = [
        ("B1", "B2", fast),
        ("B2", "B4", fast),
        ("B1", "B3", slow),
        ("B3", "B4", slow),
    ]
    return build_from_edges(edges, publishers=publishers, subscribers=subscribers)


@pytest.fixture
def line_topology() -> Topology:
    return make_line_topology(
        n=3,
        publishers={"P1": "B1"},
        subscribers={"S1": "B3"},
    )


@pytest.fixture
def diamond_topology() -> Topology:
    return make_diamond_topology(
        publishers={"P1": "B1"},
        subscribers={"S1": "B4"},
    )
