"""Filter language tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.filters import (
    AndFilter,
    FilterError,
    OrFilter,
    Predicate,
    conjunction_predicates,
    parse_filter,
)


class TestPredicate:
    @pytest.mark.parametrize(
        "op,value,attr_value,expected",
        [
            ("<", 5.0, 4.9, True),
            ("<", 5.0, 5.0, False),
            ("<=", 5.0, 5.0, True),
            (">", 5.0, 5.1, True),
            (">", 5.0, 5.0, False),
            (">=", 5.0, 5.0, True),
            ("==", 5.0, 5.0, True),
            ("==", 5.0, 5.1, False),
            ("!=", 5.0, 5.1, True),
            ("!=", 5.0, 5.0, False),
        ],
    )
    def test_operators(self, op, value, attr_value, expected):
        assert Predicate("A", op, value).matches({"A": attr_value}) is expected

    def test_missing_attribute_never_matches(self):
        assert not Predicate("A", "<", 5.0).matches({"B": 1.0})

    def test_unknown_operator(self):
        with pytest.raises(FilterError):
            Predicate("A", "~", 5.0)

    def test_empty_attribute(self):
        with pytest.raises(FilterError):
            Predicate("", "<", 5.0)

    def test_str(self):
        assert str(Predicate("A1", "<", 5.0)) == "A1<5"


class TestCombinators:
    def test_and(self):
        f = Predicate("A", "<", 5.0) & Predicate("B", ">", 2.0)
        assert isinstance(f, AndFilter)
        assert f.matches({"A": 4.0, "B": 3.0})
        assert not f.matches({"A": 4.0, "B": 1.0})

    def test_or(self):
        f = Predicate("A", "<", 5.0) | Predicate("B", ">", 2.0)
        assert isinstance(f, OrFilter)
        assert f.matches({"A": 9.0, "B": 3.0})
        assert not f.matches({"A": 9.0, "B": 1.0})

    def test_and_flattens(self):
        f = Predicate("A", "<", 1.0) & Predicate("B", "<", 2.0) & Predicate("C", "<", 3.0)
        assert len(f.parts) == 3

    def test_empty_and_matches_everything(self):
        assert AndFilter([]).matches({})

    def test_empty_or_matches_nothing(self):
        assert not OrFilter([]).matches({"A": 1.0})

    def test_filters_hashable(self):
        a = Predicate("A", "<", 5.0)
        b = Predicate("A", "<", 5.0)
        assert a == b
        assert hash(a) == hash(b)
        assert AndFilter([a]) == AndFilter([b])


class TestParser:
    def test_single_predicate(self):
        f = parse_filter("A1<5")
        assert f == Predicate("A1", "<", 5.0)

    def test_conjunction(self):
        f = parse_filter("A1<5 & A2>=2.5")
        assert isinstance(f, AndFilter)
        assert f.matches({"A1": 1.0, "A2": 2.5})

    def test_disjunction_precedence(self):
        # & binds tighter: (A<1 & B<1) | C>9
        f = parse_filter("A<1 & B<1 | C>9")
        assert f.matches({"A": 5.0, "B": 5.0, "C": 10.0})
        assert f.matches({"A": 0.5, "B": 0.5, "C": 0.0})
        assert not f.matches({"A": 0.5, "B": 5.0, "C": 0.0})

    def test_scientific_notation_and_negative(self):
        f = parse_filter("A>=-1.5e2")
        assert f == Predicate("A", ">=", -150.0)

    @pytest.mark.parametrize("bad", ["", "A1", "A1<", "<5", "A1 ? 5", "A1<5 &"])
    def test_malformed(self, bad):
        with pytest.raises(FilterError):
            parse_filter(bad)

    def test_roundtrip_through_str(self):
        f = parse_filter("A1<5 & A2<7")
        assert parse_filter(str(f)) == f


class TestConjunctionExtraction:
    def test_predicate_is_conjunction(self):
        p = Predicate("A", "<", 1.0)
        assert conjunction_predicates(p) == (p,)

    def test_and_of_predicates(self):
        f = Predicate("A", "<", 1.0) & Predicate("B", "<", 2.0)
        preds = conjunction_predicates(f)
        assert preds is not None and len(preds) == 2

    def test_or_is_not_conjunction(self):
        f = Predicate("A", "<", 1.0) | Predicate("B", "<", 2.0)
        assert conjunction_predicates(f) is None

    def test_nested_or_inside_and_is_not_conjunction(self):
        inner = Predicate("A", "<", 1.0) | Predicate("B", "<", 2.0)
        f = AndFilter([inner, Predicate("C", "<", 3.0)])
        assert conjunction_predicates(f) is None


attr_values = st.dictionaries(
    st.sampled_from(["A", "B", "C"]), st.floats(-10, 10), min_size=0, max_size=3
)


@given(
    attr=st.sampled_from(["A", "B", "C"]),
    op=st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    threshold=st.floats(-10, 10),
    values=attr_values,
)
@settings(max_examples=300)
def test_predicate_matches_python_semantics(attr, op, threshold, values):
    import operator

    ops = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
           ">=": operator.ge, "==": operator.eq, "!=": operator.ne}
    p = Predicate(attr, op, threshold)
    expected = attr in values and ops[op](values[attr], threshold)
    assert p.matches(values) is expected
