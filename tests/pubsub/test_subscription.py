"""Subscription table tests."""

from __future__ import annotations

import math

import pytest

from repro.pubsub.filters import Predicate
from repro.pubsub.message import Message
from repro.pubsub.subscription import RowArrays, Subscription, SubscriptionTable, TableRow
from repro.stats.normal import Normal


def sub(name="S1", threshold=5.0, deadline=None, price=None) -> Subscription:
    return Subscription(
        subscriber=name,
        filter=Predicate("A1", "<", threshold),
        deadline_ms=deadline,
        price=price,
    )


def row(subscription=None, next_hop="B2", nn=2, rate=Normal(20.0, 8.0), sources=("B1",)) -> TableRow:
    return TableRow(
        subscription=subscription or sub(),
        next_hop=next_hop,
        nn=nn,
        rate=rate,
        sources=frozenset(sources),
    )


def msg(attrs=None, source="B1", msg_id=1) -> Message:
    return Message(
        msg_id=msg_id,
        publisher="P1",
        source_broker=source,
        attributes=attrs or {"A1": 3.0, "A2": 3.0},
        size_kb=50.0,
        publish_time=0.0,
    )


class TestSubscription:
    def test_validation(self):
        with pytest.raises(ValueError):
            sub(deadline=0.0)
        with pytest.raises(ValueError):
            Subscription("S", Predicate("A", "<", 1.0), price=-1.0)

    def test_row_accessors(self):
        r = row(subscription=sub(deadline=10_000.0, price=2.0))
        assert r.subscriber == "S1"
        assert r.deadline_ms == 10_000.0
        assert r.price == 2.0
        assert not r.is_local

    def test_local_row(self):
        r = row(next_hop=None, nn=0, rate=Normal(0.0, 0.0))
        assert r.is_local


class TestSubscriptionTable:
    def test_install_and_match(self):
        t = SubscriptionTable()
        t.install(row())
        assert len(t) == 1
        assert "S1" in t
        matches = t.match(msg())
        assert [r.subscriber for r in matches] == ["S1"]

    def test_filter_mismatch(self):
        t = SubscriptionTable()
        t.install(row())
        assert t.match(msg(attrs={"A1": 9.0})) == []

    def test_provenance_check(self):
        t = SubscriptionTable()
        t.install(row(sources=("B7",)))
        # Message from B1 must not ride a row installed only for B7 traffic.
        assert t.match(msg(source="B1")) == []
        assert [r.subscriber for r in t.match(msg(source="B7"))] == ["S1"]

    def test_duplicate_subscriber_rejected(self):
        t = SubscriptionTable()
        t.install(row())
        with pytest.raises(KeyError):
            t.install(row())

    def test_uninstall(self):
        t = SubscriptionTable()
        t.install(row())
        t.uninstall("S1")
        assert len(t) == 0
        assert t.match(msg()) == []

    def test_match_grouped(self):
        t = SubscriptionTable()
        t.install(row(subscription=sub("S1"), next_hop=None, nn=0, rate=Normal(0, 0)))
        t.install(row(subscription=sub("S2"), next_hop="B2"))
        t.install(row(subscription=sub("S3"), next_hop="B2"))
        t.install(row(subscription=sub("S4"), next_hop="B3"))
        local, remote = t.match_grouped(msg())
        assert [r.subscriber for r in local] == ["S1"]
        assert sorted(remote) == ["B2", "B3"]
        assert [r.subscriber for r in remote["B2"]] == ["S2", "S3"]

    def test_rows_sorted(self):
        t = SubscriptionTable()
        t.install(row(subscription=sub("S2")))
        t.install(row(subscription=sub("S1")))
        assert [r.subscriber for r in t.rows()] == ["S1", "S2"]


class TestColumnArrays:
    """The table-level column arrays behind RowGroup gathers."""

    def test_group_arrays_equal_from_rows(self):
        t = SubscriptionTable()
        r1 = row(subscription=sub("S1", deadline=10_000.0, price=3.0), nn=3,
                 rate=Normal(20.0, 16.0))
        r2 = row(subscription=sub("S2"), nn=1, rate=Normal(10.0, 4.0))
        t.install(r1)
        t.install(r2)
        _, remote = t.match_grouped(msg())
        group = remote["B2"]
        expected = RowArrays.from_rows(group.rows)
        for field in ("nn", "mean", "std", "deadline", "price"):
            assert getattr(group.arrays, field).tolist() == getattr(expected, field).tolist()

    def test_group_rows_and_len(self):
        t = SubscriptionTable()
        t.install(row(subscription=sub("S1")))
        t.install(row(subscription=sub("S2")))
        _, remote = t.match_grouped(msg())
        group = remote["B2"]
        assert len(group) == 2
        assert group[0].subscriber == "S1"
        assert [r.subscriber for r in group] == ["S1", "S2"]

    def test_multipath_dedup_keeps_lowest_path(self):
        t = SubscriptionTable()
        s = sub("S1")
        t.install(TableRow(subscription=s, next_hop="B2", nn=2,
                           rate=Normal(20.0, 8.0), sources=frozenset({"B1"}), path_id=0))
        t.install(TableRow(subscription=s, next_hop="B2", nn=4,
                           rate=Normal(30.0, 8.0), sources=frozenset({"B1"}), path_id=1))
        _, remote = t.match_grouped(msg())
        group = remote["B2"]
        assert len(group) == 1
        assert group[0].path_id == 0  # first in (subscriber, path_id) order

    def test_install_after_match_recompiles(self):
        t = SubscriptionTable()
        t.install(row(subscription=sub("S1")))
        assert [r.subscriber for r in t.match(msg())] == ["S1"]
        t.install(row(subscription=sub("S2")))
        assert [r.subscriber for r in t.match(msg())] == ["S1", "S2"]

    def test_matcher_backend_knob(self):
        for backend in ("vector", "oracle", "brute"):
            t = SubscriptionTable(matcher_backend=backend)
            t.install(row())
            assert [r.subscriber for r in t.match(msg())] == ["S1"]


class TestUninstallSideIndex:
    def test_uninstall_removes_all_paths(self):
        t = SubscriptionTable()
        s = sub("S1")
        for path_id in (0, 1):
            t.install(TableRow(subscription=s, next_hop="B2", nn=2,
                               rate=Normal(20.0, 8.0), sources=frozenset({"B1"}),
                               path_id=path_id))
        t.install(row(subscription=sub("S2")))
        assert "S1" in t and len(t) == 3
        t.uninstall("S1")
        assert "S1" not in t and "S2" in t
        assert len(t) == 1
        assert [r.subscriber for r in t.match(msg())] == ["S2"]

    def test_uninstall_unknown_raises(self):
        t = SubscriptionTable()
        with pytest.raises(KeyError):
            t.uninstall("missing")

    def test_reinstall_after_uninstall(self):
        t = SubscriptionTable()
        t.install(row())
        t.uninstall("S1")
        t.install(row(subscription=sub("S1", threshold=1.0)))
        assert t.match(msg(attrs={"A1": 3.0})) == []
        assert [r.subscriber for r in t.match(msg(attrs={"A1": 0.5}))] == ["S1"]

    def test_churn_does_not_grow_row_storage(self):
        """Install/uninstall cycles reuse freed row ids, so the column
        arrays scale with peak live rows rather than cumulative churn."""
        t = SubscriptionTable()
        t.install(row(subscription=sub("KEEP")))
        for i in range(50):
            t.install(row(subscription=sub(f"S{i}")))
            assert sorted(r.subscriber for r in t.match(msg())) == ["KEEP", f"S{i}"]
            t.uninstall(f"S{i}")
        assert len(t._rows_by_id) <= 2
        assert len(t) == 1


class TestRowArrays:
    def test_from_rows(self):
        rows = [
            row(subscription=sub("S1", deadline=10_000.0, price=3.0), nn=2, rate=Normal(20.0, 16.0)),
            row(subscription=sub("S2"), nn=1, rate=Normal(10.0, 4.0)),
        ]
        arrays = RowArrays.from_rows(rows)
        assert len(arrays) == 2
        assert arrays.nn.tolist() == [2.0, 1.0]
        assert arrays.mean.tolist() == [20.0, 10.0]
        assert arrays.std.tolist() == [4.0, 2.0]
        assert arrays.deadline[0] == 10_000.0
        assert math.isinf(arrays.deadline[1])  # unspecified deadline
        assert arrays.price.tolist() == [3.0, 1.0]  # unspecified price -> 1

    def test_empty(self):
        arrays = RowArrays.from_rows([])
        assert len(arrays) == 0
        assert arrays.nn.shape == (0,)
