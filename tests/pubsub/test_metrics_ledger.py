"""Differential tests: the ledger metrics backend ≡ the scalar oracle.

The array-backed :class:`LedgerMetricsCollector` must agree with the
dict/set :class:`MetricsCollector` on every public counter and derived
metric — bit for bit, including the float accumulators (``earning``,
``latency_sum_ms``), whose fold order the ledger preserves — under any
interleaving of scalar deliveries, batched deliveries and duplicate
settlements.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.metrics import (
    METRICS_BACKENDS,
    LedgerMetricsCollector,
    MetricsCollector,
    MetricsError,
    make_metrics,
)


def assert_equivalent(ledger: LedgerMetricsCollector, scalar: MetricsCollector) -> None:
    """Every public counter, dict view and derived float must match
    exactly (``==`` on floats: the fold order is part of the contract)."""
    for attr in (
        "published", "receptions", "transmissions", "deliveries_valid",
        "deliveries_late", "pruned", "duplicate_deliveries",
        "total_interested", "delivery_rate", "earning", "latency_sum_ms",
        "mean_latency_ms",
    ):
        assert getattr(ledger, attr) == getattr(scalar, attr), attr
    assert ledger.interested == dict(scalar.interested)
    assert ledger.delivered == {k: v for k, v in scalar.delivered.items() if v}
    assert ledger.per_subscriber_valid == {
        k: v for k, v in scalar.per_subscriber_valid.items() if v
    }
    ledger.check_invariants()
    scalar.check_invariants()


class TestFactory:
    def test_backends(self):
        assert isinstance(make_metrics("ledger"), LedgerMetricsCollector)
        assert isinstance(make_metrics("scalar"), MetricsCollector)
        assert make_metrics().backend == "ledger"
        assert set(METRICS_BACKENDS) == {"ledger", "scalar"}

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_metrics("typo")


class TestLedgerScalarParity:
    """Hand-written sequences mirroring the scalar collector's test
    surface, replayed against both backends."""

    def both(self):
        return LedgerMetricsCollector(), MetricsCollector()

    def test_basic_counters(self):
        ledger, scalar = self.both()
        for m in (ledger, scalar):
            m.on_publish(1, 4)
            m.on_publish(2, 2)
            m.on_delivery(1, "S1", 100.0, 1.0, valid=True)
            m.on_delivery(1, "S2", 120.0, 1.0, valid=True)
            m.on_delivery(2, "S1", 900.0, 1.0, valid=False)
            m.on_reception()
            m.on_transmission()
            m.on_prune(3)
        assert ledger.delivery_rate == pytest.approx(2 / 6)
        assert_equivalent(ledger, scalar)

    def test_empty(self):
        ledger, scalar = self.both()
        assert ledger.delivery_rate == 0.0
        assert ledger.mean_latency_ms == 0.0
        assert_equivalent(ledger, scalar)

    def test_duplicate_settlement_valid_then_valid(self):
        ledger, scalar = self.both()
        for m in (ledger, scalar):
            m.on_publish(1, 1)
            m.on_delivery(1, "S1", 100.0, 2.0, valid=True)
            m.on_delivery(1, "S1", 150.0, 2.0, valid=True)
        assert ledger.deliveries_valid == 1
        assert ledger.duplicate_deliveries == 1
        assert_equivalent(ledger, scalar)

    def test_duplicate_settlement_late_then_late(self):
        ledger, scalar = self.both()
        for m in (ledger, scalar):
            m.on_publish(1, 1)
            m.on_delivery(1, "S1", 900.0, 1.0, valid=False)
            m.on_delivery(1, "S1", 950.0, 1.0, valid=False)
        assert ledger.deliveries_late == 1
        assert ledger.duplicate_deliveries == 1
        assert_equivalent(ledger, scalar)

    def test_batch_then_duplicate_batch(self):
        """Multi-path style: the same (message, subscriber) pairs arrive
        again in a later batch and must settle as duplicates."""
        ledger, scalar = self.both()
        subs = ["S1", "S2", "S3"]
        prices = np.array([3.0, 2.0, 1.0])
        valid = np.array([True, False, True])
        for m in (ledger, scalar):
            m.on_publish(7, 3)
            m.on_delivery_batch(7, subs, 50.0, prices, valid)
            m.on_delivery_batch(7, subs, 80.0, prices, np.array([True, True, True]))
        assert ledger.duplicate_deliveries == 3
        assert ledger.deliveries_valid == 2
        assert ledger.deliveries_late == 1
        assert_equivalent(ledger, scalar)

    def test_batch_with_intra_batch_duplicates_falls_back(self):
        ledger, scalar = self.both()
        subs = ["S1", "S1", "S2"]
        prices = np.array([3.0, 3.0, 2.0])
        valid = np.array([True, True, True])
        for m in (ledger, scalar):
            m.on_publish(1, 2)
            m.on_delivery_batch(1, subs, 10.0, prices, valid)
        assert ledger.duplicate_deliveries == 1
        assert_equivalent(ledger, scalar)

    def test_empty_batch(self):
        ledger, scalar = self.both()
        for m in (ledger, scalar):
            m.on_publish(1, 1)
            m.on_delivery_batch(1, [], 10.0, np.empty(0), np.empty(0, dtype=bool))
        assert_equivalent(ledger, scalar)

    def test_scalar_and_batch_interleaved_across_paths(self):
        """Scalar arrivals (one path) interleave with batches (another);
        settlement is first-arrival-wins across entry points."""
        ledger, scalar = self.both()
        for m in (ledger, scalar):
            m.on_publish(1, 3)
            m.on_delivery(1, "S2", 40.0, 2.0, valid=True)
            m.on_delivery_batch(
                1, ["S1", "S2", "S3"], 60.0,
                np.array([1.0, 2.0, 3.0]), np.array([True, True, False]),
            )
            m.on_delivery(1, "S3", 70.0, 3.0, valid=True)
        assert ledger.duplicate_deliveries == 2
        assert_equivalent(ledger, scalar)


class TestInvariantErrors:
    """check_invariants raises real exceptions (survives ``python -O``),
    still catchable as AssertionError for old callers."""

    @pytest.mark.parametrize("backend", METRICS_BACKENDS)
    def test_over_delivery_detected(self, backend):
        m = make_metrics(backend)
        m.on_publish(1, 1)
        m.on_delivery(1, "S1", 1.0, 1.0, valid=True)
        m.on_delivery(1, "S2", 1.0, 1.0, valid=True)  # more than interested
        with pytest.raises(MetricsError):
            m.check_invariants()
        with pytest.raises(AssertionError):  # backwards-compatible catch
            m.check_invariants()

    @pytest.mark.parametrize("backend", METRICS_BACKENDS)
    def test_clean_state_passes(self, backend):
        m = make_metrics(backend)
        m.on_publish(1, 3)
        m.on_delivery(1, "S1", 1.0, 1.0, valid=True)
        m.check_invariants()

    def test_is_not_a_bare_assert(self):
        """The raise must be explicit: compiling the module with -O-style
        optimisation must not remove the checks (bare asserts would)."""
        import inspect

        from repro.pubsub import metrics

        source = inspect.getsource(metrics.MetricsCollector.check_invariants)
        assert "assert " not in source
        source = inspect.getsource(metrics.LedgerMetricsCollector.check_invariants)
        assert "assert " not in source


# --------------------------------------------------------------------- #
# Property-based differential: random interleavings of publishes, scalar
# deliveries (with duplicates) and batches.
# --------------------------------------------------------------------- #

SUBSCRIBERS = [f"S{i}" for i in range(6)]
MESSAGES = list(range(4))


@st.composite
def delivery_ops(draw):
    ops = []
    for msg_id in MESSAGES:
        ops.append(("publish", msg_id, draw(st.integers(0, 6))))
    n_ops = draw(st.integers(1, 25))
    for _ in range(n_ops):
        msg_id = draw(st.sampled_from(MESSAGES))
        if draw(st.booleans()):
            sub = draw(st.sampled_from(SUBSCRIBERS))
            ops.append((
                "delivery", msg_id, sub,
                draw(st.floats(0.0, 1000.0, allow_nan=False)),
                draw(st.floats(0.0, 5.0, allow_nan=False)),
                draw(st.booleans()),
            ))
        else:
            subs = draw(
                st.lists(st.sampled_from(SUBSCRIBERS), min_size=0, max_size=5)
            )
            prices = [draw(st.floats(0.0, 5.0, allow_nan=False)) for _ in subs]
            valid = [draw(st.booleans()) for _ in subs]
            ops.append((
                "batch", msg_id, subs,
                draw(st.floats(0.0, 1000.0, allow_nan=False)),
                prices, valid,
            ))
    return ops


@settings(max_examples=120, deadline=None)
@given(ops=delivery_ops())
def test_ledger_equals_scalar_on_random_interleavings(ops):
    ledger, scalar = LedgerMetricsCollector(), MetricsCollector()
    for m in (ledger, scalar):
        for op in ops:
            if op[0] == "publish":
                m.on_publish(op[1], op[2])
            elif op[0] == "delivery":
                m.on_delivery(op[1], op[2], op[3], op[4], op[5])
            else:
                _, msg_id, subs, latency, prices, valid = op
                m.on_delivery_batch(
                    msg_id, subs, latency,
                    np.asarray(prices, dtype=np.float64),
                    np.asarray(valid, dtype=bool),
                )
    for attr in (
        "published", "deliveries_valid", "deliveries_late",
        "duplicate_deliveries", "total_interested", "delivery_rate",
        "earning", "latency_sum_ms", "mean_latency_ms",
    ):
        assert getattr(ledger, attr) == getattr(scalar, attr), attr
    assert ledger.delivered == {k: v for k, v in scalar.delivered.items() if v}
    assert ledger.per_subscriber_valid == {
        k: v for k, v in scalar.per_subscriber_valid.items() if v
    }
