"""Metrics collector tests."""

from __future__ import annotations

import pytest

from repro.pubsub.metrics import MetricsCollector


class TestCounters:
    def test_delivery_rate(self):
        m = MetricsCollector()
        m.on_publish(1, interested_subscribers=4)
        m.on_publish(2, interested_subscribers=2)
        m.on_delivery(1, "S1", 100.0, 1.0, valid=True)
        m.on_delivery(1, "S2", 120.0, 1.0, valid=True)
        m.on_delivery(2, "S1", 900.0, 1.0, valid=False)
        assert m.total_interested == 6
        assert m.deliveries_valid == 2
        assert m.deliveries_late == 1
        assert m.delivery_rate == pytest.approx(2 / 6)

    def test_delivery_rate_empty(self):
        assert MetricsCollector().delivery_rate == 0.0

    def test_earning_sums_prices(self):
        m = MetricsCollector()
        m.on_publish(1, 2)
        m.on_delivery(1, "S1", 10.0, 3.0, valid=True)
        m.on_delivery(1, "S2", 10.0, 2.0, valid=True)
        assert m.earning == 5.0

    def test_late_delivery_earns_nothing(self):
        m = MetricsCollector()
        m.on_publish(1, 1)
        m.on_delivery(1, "S1", 10.0, 3.0, valid=False)
        assert m.earning == 0.0
        assert m.per_subscriber_valid == {}

    def test_mean_latency(self):
        m = MetricsCollector()
        m.on_publish(1, 2)
        m.on_delivery(1, "S1", 100.0, 1.0, valid=True)
        m.on_delivery(1, "S2", 300.0, 1.0, valid=True)
        assert m.mean_latency_ms == 200.0
        assert MetricsCollector().mean_latency_ms == 0.0

    def test_receptions_and_pruning(self):
        m = MetricsCollector()
        m.on_reception()
        m.on_reception()
        m.on_prune(3)
        m.on_transmission()
        assert m.receptions == 2
        assert m.pruned == 3
        assert m.transmissions == 1


class TestDuplicateSettlement:
    """Multi-path routing can deliver the same (message, subscriber) pair
    twice; only the first arrival may count."""

    def test_second_valid_arrival_ignored(self):
        m = MetricsCollector()
        m.on_publish(1, 1)
        m.on_delivery(1, "S1", 100.0, 2.0, valid=True)
        m.on_delivery(1, "S1", 150.0, 2.0, valid=True)
        assert m.deliveries_valid == 1
        assert m.earning == 2.0
        assert m.duplicate_deliveries == 1
        m.check_invariants()

    def test_late_then_late_counts_once(self):
        m = MetricsCollector()
        m.on_publish(1, 1)
        m.on_delivery(1, "S1", 900.0, 1.0, valid=False)
        m.on_delivery(1, "S1", 950.0, 1.0, valid=False)
        assert m.deliveries_late == 1
        assert m.duplicate_deliveries == 1

    def test_distinct_subscribers_not_duplicates(self):
        m = MetricsCollector()
        m.on_publish(1, 2)
        m.on_delivery(1, "S1", 100.0, 1.0, valid=True)
        m.on_delivery(1, "S2", 100.0, 1.0, valid=True)
        assert m.deliveries_valid == 2
        assert m.duplicate_deliveries == 0

    def test_distinct_messages_not_duplicates(self):
        m = MetricsCollector()
        m.on_publish(1, 1)
        m.on_publish(2, 1)
        m.on_delivery(1, "S1", 100.0, 1.0, valid=True)
        m.on_delivery(2, "S1", 100.0, 1.0, valid=True)
        assert m.deliveries_valid == 2


class TestInvariants:
    def test_clean_state_passes(self):
        m = MetricsCollector()
        m.on_publish(1, 3)
        m.on_delivery(1, "S1", 1.0, 1.0, valid=True)
        m.check_invariants()

    def test_over_delivery_detected(self):
        m = MetricsCollector()
        m.on_publish(1, 1)
        m.on_delivery(1, "S1", 1.0, 1.0, valid=True)
        m.on_delivery(1, "S2", 1.0, 1.0, valid=True)  # more than interested
        with pytest.raises(AssertionError):
            m.check_invariants()
