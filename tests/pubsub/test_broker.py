"""Broker unit tests: processing, queueing, scheduling, pruning, FT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pruning import PruningPolicy
from repro.core.strategies import EbStrategy, FifoStrategy
from repro.des.simulator import Simulator
from repro.network.link import DirectedLink
from repro.network.measurement import LinkMonitor
from repro.pubsub.broker import Broker
from repro.pubsub.filters import Predicate
from repro.pubsub.message import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.subscription import Subscription, TableRow
from repro.stats.normal import Normal

MATCH_ALL = Predicate("A1", "<", 1e9)


def make_broker(sim, strategy=None, metrics=None, **kw) -> Broker:
    return Broker(
        name="B1",
        sim=sim,
        strategy=strategy or FifoStrategy(),
        metrics=metrics or MetricsCollector(),
        **kw,
    )


def wire_neighbor(broker, sim, neighbor="B2", rate=Normal(10.0, 0.0), seed=0):
    """Attach a deterministic outbound link; returns delivered-message log."""
    delivered = []
    link = DirectedLink(broker.name, neighbor, rate, np.random.default_rng(seed))
    monitor = LinkMonitor(link)
    broker.add_neighbor(neighbor, link, monitor, delivered.append)
    return delivered, link


def local_row(subscriber="S1", deadline=None, price=None) -> TableRow:
    return TableRow(
        subscription=Subscription(subscriber, MATCH_ALL, deadline_ms=deadline, price=price),
        next_hop=None,
        nn=0,
        rate=Normal(0.0, 0.0),
        sources=frozenset({"B0", "B1"}),
    )


def remote_row(subscriber="S1", next_hop="B2", deadline=30_000.0) -> TableRow:
    return TableRow(
        subscription=Subscription(subscriber, MATCH_ALL, deadline_ms=deadline),
        next_hop=next_hop,
        nn=1,
        rate=Normal(10.0, 4.0),
        sources=frozenset({"B0", "B1"}),
    )


def msg(msg_id=1, publish_time=0.0, deadline=None, size=50.0, source="B1") -> Message:
    return Message(
        msg_id=msg_id,
        publisher="P1",
        source_broker=source,
        attributes={"A1": 1.0},
        size_kb=size,
        publish_time=publish_time,
        deadline_ms=deadline,
    )


class TestProcessing:
    def test_processing_delay_applied(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, metrics=metrics, processing_delay_ms=2.0)
        broker.install(local_row())
        delivered_at = []
        broker.delivery_callbacks.append(lambda s, m, lat, ok: delivered_at.append(sim.now))
        metrics.on_publish(1, 1)
        broker.receive(msg())
        sim.run()
        assert delivered_at == [2.0]
        assert metrics.receptions == 1

    def test_local_delivery_validity(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, metrics=metrics)
        broker.install(local_row(deadline=1_000.0))
        metrics.on_publish(1, 1)
        metrics.on_publish(2, 1)
        broker.receive(msg(msg_id=1, publish_time=0.0))  # arrives fresh
        sim.run()
        # Second message was published 5 s ago: already past its deadline.
        sim.schedule(0.0, lambda: broker.receive(msg(msg_id=2, publish_time=sim.now - 5_000.0)))
        sim.run()
        assert metrics.deliveries_valid == 1
        assert metrics.deliveries_late == 1

    def test_ssd_price_earned(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, metrics=metrics)
        broker.install(local_row(deadline=10_000.0, price=3.0))
        metrics.on_publish(1, 1)
        broker.receive(msg())
        sim.run()
        assert metrics.earning == 3.0

    def test_unmatched_message_goes_nowhere(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, metrics=metrics)
        wire_neighbor(broker, sim)
        broker.install(remote_row())
        bad = Message(
            msg_id=9, publisher="P1", source_broker="B1",
            attributes={"A1": 1e12}, size_kb=1.0, publish_time=0.0,
        )
        broker.receive(bad)
        sim.run()
        assert broker.queued_entries() == 0


class TestForwarding:
    def test_message_forwarded_with_transmission_delay(self, sim):
        broker = make_broker(sim, processing_delay_ms=2.0)
        delivered, _ = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        broker.install(remote_row())
        broker.receive(msg(size=5.0))
        sim.run()
        # 2 ms processing + 5 KB * 10 ms/KB = 52 ms.
        assert len(delivered) == 1
        assert sim.now == pytest.approx(52.0)

    def test_link_serialises(self, sim):
        broker = make_broker(sim)
        delivered, link = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        broker.install(remote_row())
        broker.receive(msg(msg_id=1, size=10.0))
        broker.receive(msg(msg_id=2, size=10.0))
        sim.run()
        # 2 ms processing, then two back-to-back 100 ms transmissions.
        assert [m.msg_id for m in delivered] == [1, 2]
        assert sim.now == pytest.approx(202.0)
        assert link.stats.transmissions == 2

    def test_one_copy_per_neighbor(self, sim):
        broker = make_broker(sim)
        d2, _ = wire_neighbor(broker, sim, neighbor="B2")
        d3, _ = wire_neighbor(broker, sim, neighbor="B3", seed=1)
        broker.install(remote_row("S1", next_hop="B2"))
        broker.install(remote_row("S2", next_hop="B2"))
        broker.install(remote_row("S3", next_hop="B3"))
        metrics = broker.metrics
        broker.receive(msg())
        sim.run()
        assert len(d2) == 1  # S1+S2 share one copy
        assert len(d3) == 1
        assert metrics.transmissions == 2

    def test_scheduling_strategy_controls_order(self, sim):
        broker = make_broker(sim, strategy=EbStrategy())
        delivered, _ = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        # Remaining path needs ~25 s against a 30 s deadline, so message age
        # moves success along the CDF ramp: the older message (~0.02) loses
        # to the fresh one (~1.0) under EB, despite arriving first.
        broker.install(
            TableRow(
                subscription=Subscription("S1", MATCH_ALL, deadline_ms=30_000.0),
                next_hop="B2",
                nn=1,
                rate=Normal(500.0, 400.0),
                sources=frozenset({"B1"}),
            )
        )
        broker.receive(msg(msg_id=1, publish_time=0.0))
        sim.schedule(100.0, lambda: broker.receive(msg(msg_id=2, publish_time=-7_000.0)))
        sim.schedule(100.0, lambda: broker.receive(msg(msg_id=3, publish_time=sim.now)))
        sim.run()
        assert [m.msg_id for m in delivered] == [1, 3, 2]


class TestPruning:
    def test_expired_pruned_under_fifo(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, metrics=metrics)
        delivered, _ = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        broker.install(remote_row(deadline=1_000.0))
        broker.receive(msg(msg_id=1))  # occupies the link
        # Arrives already expired; pruned when the queue is next served.
        sim.schedule(10.0, lambda: broker.receive(msg(msg_id=2, publish_time=sim.now - 5_000.0)))
        sim.run()
        assert [m.msg_id for m in delivered] == [1]
        assert metrics.pruned == 1

    def test_hopeless_pruned_under_eb_before_expiry(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(sim, strategy=EbStrategy(), metrics=metrics)
        delivered, _ = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        # Remaining path needs ~25 s (nn=1, 500 ms/KB * 50 KB), deadline 30 s.
        broker.install(
            TableRow(
                subscription=Subscription("S1", MATCH_ALL, deadline_ms=30_000.0),
                next_hop="B2",
                nn=1,
                rate=Normal(500.0, 400.0),
                sources=frozenset({"B1"}),
            )
        )
        broker.receive(msg(msg_id=1))  # fresh: feasible; blocks the link
        # 28 s old: 2 s of budget left vs ~25 s needed — hopeless, yet its
        # deadline has NOT passed (28 < 30): only Eq. 11 can delete it.
        sim.schedule(10.0, lambda: broker.receive(msg(msg_id=2, publish_time=sim.now - 28_000.0)))
        sim.run()
        assert [m.msg_id for m in delivered] == [1]
        assert metrics.pruned == 1

    def test_pruning_override(self, sim):
        metrics = MetricsCollector()
        broker = make_broker(
            sim, strategy=EbStrategy(), metrics=metrics,
            pruning_override=PruningPolicy.NONE,
        )
        delivered, _ = wire_neighbor(broker, sim, rate=Normal(10.0, 0.0))
        broker.install(remote_row(deadline=1_000.0))
        broker.receive(msg(msg_id=1))
        sim.schedule(10.0, lambda: broker.receive(msg(msg_id=2, publish_time=sim.now - 5_000.0)))
        sim.run()
        assert len(delivered) == 2  # nothing pruned
        assert metrics.pruned == 0


class TestAverageSize:
    def test_default_before_any_message(self, sim):
        broker = make_broker(sim, default_size_kb=42.0)
        assert broker.average_size_kb() == 42.0

    def test_running_average(self, sim):
        broker = make_broker(sim)
        broker.install(local_row())
        broker.receive(msg(msg_id=1, size=10.0))
        broker.receive(msg(msg_id=2, size=30.0))
        sim.run()
        assert broker.average_size_kb() == pytest.approx(20.0)


class TestSchedulingSlack:
    def test_zero_slack_is_paper_behaviour(self, sim):
        broker = make_broker(sim)
        assert broker.planning_delay_ms == broker.processing_delay_ms

    def test_slack_adds_to_planning_only(self, sim):
        broker = make_broker(sim, scheduling_slack_per_hop_ms=500.0, processing_delay_ms=2.0)
        assert broker.planning_delay_ms == 502.0
        assert broker.processing_delay_ms == 2.0  # real delay unchanged

    def test_negative_slack_rejected(self, sim):
        with pytest.raises(ValueError):
            make_broker(sim, scheduling_slack_per_hop_ms=-1.0)

    def test_slack_makes_pruning_more_aggressive(self, sim):
        # With a huge per-hop allowance the 30 s deadline looks infeasible
        # and the copy is pruned; without slack it is forwarded.
        def run(slack):
            metrics = MetricsCollector()
            broker = make_broker(
                sim=Simulator(), strategy=EbStrategy(), metrics=metrics,
                scheduling_slack_per_hop_ms=slack,
            )
            delivered, _ = wire_neighbor(broker, broker.sim, rate=Normal(10.0, 0.0))
            broker.install(remote_row(deadline=30_000.0))
            broker.receive(msg())
            broker.sim.run()
            return len(delivered), metrics.pruned

        assert run(0.0) == (1, 0)
        assert run(40_000.0) == (0, 1)


class TestWiring:
    def test_duplicate_neighbor_rejected(self, sim):
        broker = make_broker(sim)
        wire_neighbor(broker, sim)
        with pytest.raises(ValueError):
            wire_neighbor(broker, sim)

    def test_row_via_unwired_neighbor_rejected(self, sim):
        broker = make_broker(sim)
        with pytest.raises(ValueError):
            broker.install(remote_row(next_hop="nowhere"))

    def test_invalid_processing_delay(self, sim):
        with pytest.raises(ValueError):
            make_broker(sim, processing_delay_ms=-1.0)
