"""Fault-model semantics: hard link/broker failures, dead-letter
accounting, cascades, and the conservation identities under stress."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sentinel import InvariantSentinel
from repro.core.strategies import FifoStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.link import RATE_FLOOR_MS_PER_KB, DirectedLink
from repro.network.measurement import LinkMonitor, MeasurementMode
from repro.pubsub.faults import FaultLedger
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    build_system,
    run_simulation,
    schedule_dynamics,
    schedule_workload,
)
from repro.stats.normal import Normal
from repro.workload.dynamics import (
    BrokerOutage,
    BrokerRecover,
    CascadeOutage,
    LinkFailure,
    LinkPartition,
    LinkRestore,
    ScenarioScript,
)
from repro.workload.scenarios import Scenario
from tests.conftest import make_line_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


def make_system(topology) -> PubSubSystem:
    return PubSubSystem(
        topology=topology,
        strategy=FifoStrategy(),
        sim=Simulator(),
        streams=RngStreams(0),
    )


def line_system() -> PubSubSystem:
    system = make_system(
        make_line_topology(n=3, publishers={"P1": "B1"}, subscribers={"S1": "B3"})
    )
    system.subscribe(Subscription("S1", MATCH_ALL))
    return system


class TestRateFloor:
    def test_zero_rate_clamped_on_construction(self, rng):
        link = DirectedLink("A", "B", Normal(0.0, 1.0), rng)
        assert link.true_rate.mean == RATE_FLOOR_MS_PER_KB

    def test_zero_rate_clamped_on_runtime_change(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 1.0), rng)
        link.set_true_rate(Normal(0.0, 0.0))
        assert link.true_rate.mean == RATE_FLOOR_MS_PER_KB
        # The drawn transmission time stays positive and finite.
        t = link.draw_transmission_time(50.0)
        assert t > 0.0 and np.isfinite(t)

    def test_non_finite_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            DirectedLink("A", "B", Normal(float("nan"), 1.0), rng)
        link = DirectedLink("A", "B", Normal(10.0, 1.0), rng)
        with pytest.raises(ValueError):
            link.set_true_rate(Normal(float("inf"), 1.0))

    def test_estimated_monitor_floors_zero_mean(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 1.0), rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED)
        # Two zero-duration observations: a naive estimator would expose
        # mean 0 and poison every downstream per-KB division.
        monitor._on_transmission(10.0, 0.0)
        monitor._on_transmission(10.0, 0.0)
        rate = monitor.rate()
        assert rate.mean == RATE_FLOOR_MS_PER_KB
        assert rate.variance >= 0.0


class TestLinkFailure:
    def test_fail_downs_both_directions(self):
        system = line_system()
        system.fail_link("B1", "B2")
        assert not system.link_up("B1", "B2")
        assert ("B1", "B2") in system.failed_links
        system.restore_link_up("B1", "B2")
        assert system.link_up("B1", "B2")
        assert not system.failed_links

    def test_unknown_link_rejected(self):
        system = line_system()
        with pytest.raises(ValueError):
            system.fail_link("B1", "B3")  # not adjacent

    def test_traffic_dead_letters_after_timeout(self):
        system = line_system()
        system.warm()
        system.fail_link("B2", "B3")
        system.publish("P1", {"A1": 1.0})
        system.sim.run()
        f = system.faults
        assert f.dead_entries == 1 and f.dead_pairs == 1
        assert f.retries > 0
        assert f.records and f.records[0].reason == "link_down"
        assert f.records[0].broker == "B2" and f.records[0].neighbor == "B3"
        # Aged out at (not before) the dead-letter timeout.
        rec = f.records[0]
        assert rec.dead_ms - rec.enqueue_ms >= system.config.dead_letter_timeout_ms
        assert system.metrics.deliveries_valid + system.metrics.deliveries_late == 0
        # Entry conservation still closes after the drop.
        assert f.enqueued_entries == f.sent_entries + f.pruned_entries + f.dead_entries

    def test_restore_before_timeout_delivers(self):
        system = line_system()
        system.warm()
        system.fail_link("B2", "B3")
        system.publish("P1", {"A1": 1.0})
        system.sim.run(until=5_000.0)
        assert system.total_queued() == 1
        system.restore_link_up("B2", "B3")
        system.sim.run()
        f = system.faults
        assert f.dead_entries == 0
        assert f.retries >= 1
        assert system.metrics.deliveries_valid + system.metrics.deliveries_late == 1

    def test_no_faults_leaves_ledger_clean(self):
        system = line_system()
        system.warm()
        system.publish("P1", {"A1": 1.0})
        system.sim.run()
        assert system.faults.clean
        assert system.metrics.deliveries_valid == 1


class TestBrokerOutage:
    def test_publish_at_down_broker_dropped_but_counted(self):
        system = line_system()
        system.warm()
        system.fail_broker("B1")
        assert system.down_brokers == frozenset({"B1"})
        message = system.publish("P1", {"A1": 1.0})
        assert message is not None
        system.sim.run()
        f = system.faults
        assert system.metrics.published == 1  # msg_id density preserved
        assert f.publish_drops == 1 and f.publish_drop_pairs == 1
        assert system.metrics.deliveries_valid == 0

    def test_outage_downs_adjacent_links_and_recover_restores(self):
        system = line_system()
        system.fail_broker("B2")
        assert not system.link_up("B1", "B2")
        assert not system.link_up("B2", "B3")
        # An explicit link restore cannot resurrect a link whose endpoint
        # broker is down.
        system.restore_link_up("B1", "B2")
        assert not system.link_up("B1", "B2")
        system.recover_broker("B2")
        assert system.link_up("B1", "B2")
        assert system.link_up("B2", "B3")

    def test_separately_failed_link_stays_down_after_recover(self):
        system = line_system()
        system.fail_link("B1", "B2")
        system.fail_broker("B2")
        system.recover_broker("B2")
        assert not system.link_up("B1", "B2")
        assert system.link_up("B2", "B3")

    def test_unknown_broker_rejected(self):
        system = line_system()
        with pytest.raises(ValueError):
            system.fail_broker("nope")


class TestPartition:
    def test_partition_cuts_crossing_links_only(self):
        system = line_system()
        cut = system.partition({"B3"})
        assert cut == [("B2", "B3")]
        assert not system.link_up("B2", "B3")
        assert system.link_up("B1", "B2")
        system.heal_partition({"B3"})
        assert system.link_up("B2", "B3")

    def test_unknown_group_member_rejected(self):
        system = line_system()
        with pytest.raises(ValueError):
            system.partition({"B3", "ghost"})


class TestInterventionValidation:
    def test_partition_heal_must_follow_start(self):
        with pytest.raises(ValueError):
            LinkPartition(at_ms=10.0, group=("B1",), heal_ms=5.0)

    def test_cascade_parameters_validated(self):
        with pytest.raises(ValueError):
            CascadeOutage(at_ms=10.0, origin="B1", spread_prob=1.5)
        with pytest.raises(ValueError):
            CascadeOutage(at_ms=10.0, origin="B1", max_depth=-1)
        with pytest.raises(ValueError):
            CascadeOutage(at_ms=10.0, origin="B1", step_ms=0.0)


def _faulted_config(**overrides) -> SimulationConfig:
    base = SimulationConfig(
        seed=5,
        scenario=Scenario.SSD,
        publishing_rate_per_min=15.0,
        duration_ms=60_000.0,
    )
    system = build_system(base)
    a, b = sorted(system.monitors)[0]
    script = ScenarioScript((
        LinkFailure(at_ms=10_000.0, a=a, b=b),
        BrokerOutage(at_ms=15_000.0, broker=b),
        CascadeOutage(
            at_ms=20_000.0, origin=a, step_ms=4_000.0, max_depth=2,
            recover_after_ms=15_000.0,
        ),
        LinkRestore(at_ms=45_000.0, a=a, b=b),
        BrokerRecover(at_ms=50_000.0, broker=b),
    ))
    return base.replace(dynamics=script, **overrides)


class TestCascadeDeterminism:
    def test_identical_runs_identical_ledgers(self):
        config = _faulted_config()
        summaries = []
        for _ in range(2):
            system = build_system(config)
            schedule_workload(system, config)
            schedule_dynamics(system, config)
            system.run(until=config.horizon_ms)
            summaries.append(
                (system.faults.summary(), system.sim.executed_events)
            )
        assert summaries[0] == summaries[1]

    def test_cascade_spreads_beyond_origin(self):
        # With spread_prob defaulting high, depth 2 from a hub should down
        # more than the origin at some point: detectable as publish drops
        # from brokers other than the scripted outage.
        config = _faulted_config()
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        system.run(until=config.horizon_ms)
        assert not system.faults.clean


class TestConservationUnderFaults:
    """The acceptance matrix: with faults active, entry and pair
    conservation hold exactly for all five strategies, both metrics
    backends, and spill on/off."""

    @pytest.mark.parametrize("strategy", ("fifo", "rl", "eb", "pc", "ebpc"))
    @pytest.mark.parametrize("metrics_backend", ("ledger", "scalar"))
    def test_all_strategies_both_backends(self, strategy, metrics_backend):
        config = _faulted_config(
            strategy=strategy, metrics_backend=metrics_backend
        )
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        sentinel = InvariantSentinel(system)
        system.run(until=config.horizon_ms)
        sentinel.final()  # raises InvariantViolation on any breach
        assert not system.faults.clean, "fault script never bit"

    @pytest.mark.parametrize("spill", (False, True))
    def test_spill_modes(self, spill):
        config = _faulted_config(log_spill=spill, log_chunk_rows=256)
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        sentinel = InvariantSentinel(system, deep=True)
        system.run(until=config.horizon_ms)
        sentinel.final()
        assert not system.faults.clean

    def test_faulted_results_reproducible_via_runner(self):
        config = _faulted_config(sentinel=True, sentinel_deep=True)
        assert run_simulation(config) == run_simulation(config)


class TestFaultLedgerUnit:
    def test_records_capped_counters_exact(self):
        from repro.pubsub.faults import DeadLetterRecord

        ledger = FaultLedger(max_records=2)
        for i in range(5):
            ledger.on_dead_letter(DeadLetterRecord(
                broker="B1", neighbor="B2", msg_id=i, pairs=3,
                enqueue_ms=0.0, dead_ms=30_000.0, reason="link_down",
            ))
        assert len(ledger.records) == 2
        assert ledger.dead_entries == 5 and ledger.dead_pairs == 15
