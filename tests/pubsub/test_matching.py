"""Matching engine tests: counting index and vector matcher vs oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.filters import AndFilter, OrFilter, Predicate
from repro.pubsub.matching import (
    MATCHER_BACKENDS,
    BruteForceMatcher,
    CountingIndexMatcher,
    VectorCountingMatcher,
    make_matcher,
)


def predicates():
    return st.builds(
        Predicate,
        attribute=st.sampled_from(["A", "B", "C"]),
        op=st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
        value=st.floats(-5, 5, allow_nan=False),
    )


def conjunctions():
    return st.lists(predicates(), min_size=1, max_size=3).map(
        lambda ps: ps[0] if len(ps) == 1 else AndFilter(ps)
    )


def any_filters():
    """Conjunctions plus the vector matcher's special cases: match-all
    (empty conjunction) and non-conjunctive fallback (disjunctions)."""
    return st.one_of(
        conjunctions(),
        st.just(AndFilter([])),
        st.lists(predicates(), min_size=1, max_size=2).map(OrFilter),
    )


def attributes():
    return st.dictionaries(
        st.sampled_from(["A", "B", "C"]), st.floats(-5, 5, allow_nan=False), max_size=3
    )


class TestBruteForce:
    def test_basic_match(self):
        m = BruteForceMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.add("s2", Predicate("A", ">", 5.0))
        assert m.match({"A": 3.0}) == {"s1"}
        assert len(m) == 2

    def test_duplicate_key_rejected(self):
        m = BruteForceMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        with pytest.raises(KeyError):
            m.add("s1", Predicate("A", ">", 5.0))

    def test_remove(self):
        m = BruteForceMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.remove("s1")
        assert m.match({"A": 3.0}) == set()
        assert len(m) == 0


class TestCountingIndex:
    def test_conjunction_requires_all_predicates(self):
        m = CountingIndexMatcher()
        m.add("s1", AndFilter([Predicate("A", "<", 5.0), Predicate("B", "<", 5.0)]))
        assert m.match({"A": 3.0, "B": 3.0}) == {"s1"}
        assert m.match({"A": 3.0, "B": 7.0}) == set()
        assert m.match({"A": 3.0}) == set()  # missing attribute

    def test_shared_thresholds(self):
        m = CountingIndexMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.add("s2", Predicate("A", "<", 5.0))
        m.add("s3", Predicate("A", "<", 2.0))
        assert m.match({"A": 3.0}) == {"s1", "s2"}
        assert m.match({"A": 1.0}) == {"s1", "s2", "s3"}

    def test_all_operators(self):
        m = CountingIndexMatcher()
        m.add("lt", Predicate("A", "<", 5.0))
        m.add("le", Predicate("A", "<=", 5.0))
        m.add("gt", Predicate("A", ">", 5.0))
        m.add("ge", Predicate("A", ">=", 5.0))
        m.add("eq", Predicate("A", "==", 5.0))
        m.add("ne", Predicate("A", "!=", 5.0))
        assert m.match({"A": 5.0}) == {"le", "ge", "eq"}
        assert m.match({"A": 4.0}) == {"lt", "le", "ne"}
        assert m.match({"A": 6.0}) == {"gt", "ge", "ne"}

    def test_match_all_conjunction(self):
        m = CountingIndexMatcher()
        m.add("s1", AndFilter([]))
        assert m.match({"A": 1.0}) == {"s1"}
        assert m.match({}) == {"s1"}

    def test_non_conjunctive_falls_back(self):
        m = CountingIndexMatcher()
        m.add("s1", OrFilter([Predicate("A", "<", 1.0), Predicate("B", ">", 9.0)]))
        assert m.match({"A": 0.5, "B": 0.0}) == {"s1"}
        assert m.match({"A": 5.0, "B": 9.5}) == {"s1"}
        assert m.match({"A": 5.0, "B": 5.0}) == set()
        assert len(m) == 1

    def test_remove_indexed(self):
        m = CountingIndexMatcher()
        f = AndFilter([Predicate("A", "<", 5.0), Predicate("B", "<", 5.0)])
        m.add("s1", f)
        m.remove("s1")
        assert m.match({"A": 1.0, "B": 1.0}) == set()
        assert len(m) == 0

    def test_remove_fallback(self):
        m = CountingIndexMatcher()
        m.add("s1", OrFilter([Predicate("A", "<", 1.0)]))
        m.remove("s1")
        assert len(m) == 0

    def test_duplicate_key_rejected(self):
        m = CountingIndexMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        with pytest.raises(KeyError):
            m.add("s1", Predicate("B", "<", 5.0))

    def test_duplicate_key_in_fallback_rejected(self):
        m = CountingIndexMatcher()
        m.add("s1", OrFilter([Predicate("A", "<", 1.0), Predicate("B", ">", 9.0)]))
        with pytest.raises(KeyError):
            m.add("s1", Predicate("B", "<", 5.0))

    def test_duplicate_threshold_same_attr(self):
        m = CountingIndexMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.add("s2", Predicate("A", "<", 5.0))
        m.remove("s1")
        assert m.match({"A": 1.0}) == {"s2"}


@given(
    filters=st.lists(conjunctions(), min_size=1, max_size=12),
    attrs=st.dictionaries(
        st.sampled_from(["A", "B", "C"]), st.floats(-5, 5, allow_nan=False), max_size=3
    ),
)
@settings(max_examples=300)
def test_counting_index_agrees_with_brute_force(filters, attrs):
    brute = BruteForceMatcher()
    index = CountingIndexMatcher()
    for i, f in enumerate(filters):
        brute.add(i, f)
        index.add(i, f)
    assert index.match(attrs) == brute.match(attrs)


@given(
    filters=st.lists(conjunctions(), min_size=2, max_size=10),
    attrs=st.dictionaries(
        st.sampled_from(["A", "B", "C"]), st.floats(-5, 5, allow_nan=False), max_size=3
    ),
    remove_idx=st.integers(0, 1),
)
@settings(max_examples=150)
def test_counting_index_agrees_after_removal(filters, attrs, remove_idx):
    brute = BruteForceMatcher()
    index = CountingIndexMatcher()
    for i, f in enumerate(filters):
        brute.add(i, f)
        index.add(i, f)
    brute.remove(remove_idx)
    index.remove(remove_idx)
    assert index.match(attrs) == brute.match(attrs)


class TestAddMany:
    def test_bulk_equals_incremental(self):
        filters = [
            ("s1", Predicate("A", "<", 5.0)),
            ("s2", AndFilter([Predicate("A", "<", 5.0), Predicate("B", ">", 1.0)])),
            ("s3", Predicate("A", "<", 5.0)),  # shared threshold
            ("s4", OrFilter([Predicate("C", ">", 0.0)])),  # fallback
            ("s5", AndFilter([])),  # match-all
        ]
        incremental = CountingIndexMatcher()
        for key, f in filters:
            incremental.add(key, f)
        bulk = CountingIndexMatcher()
        bulk.add_many(filters)
        for attrs in ({"A": 3.0, "B": 2.0}, {"A": 6.0}, {"C": 1.0}, {}):
            assert bulk.match(attrs) == incremental.match(attrs)
        assert len(bulk) == len(incremental)

    def test_bulk_into_populated_index(self):
        m = CountingIndexMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.add_many([("s2", Predicate("A", "<", 3.0)), ("s3", Predicate("A", "<", 5.0))])
        assert m.match({"A": 1.0}) == {"s1", "s2", "s3"}
        assert m.match({"A": 4.0}) == {"s1", "s3"}

    def test_bulk_then_remove(self):
        m = CountingIndexMatcher()
        m.add_many([("s1", Predicate("A", "<", 5.0)), ("s2", Predicate("A", "<", 5.0))])
        m.remove("s1")
        assert m.match({"A": 1.0}) == {"s2"}

    def test_duplicate_within_batch_rejected(self):
        m = CountingIndexMatcher()
        with pytest.raises(KeyError):
            m.add_many([("s1", Predicate("A", "<", 5.0)), ("s1", Predicate("B", "<", 5.0))])

    def test_duplicate_against_existing_rejected(self):
        m = CountingIndexMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        with pytest.raises(KeyError):
            m.add_many([("s1", Predicate("B", "<", 5.0))])
        m2 = CountingIndexMatcher()
        m2.add("f1", OrFilter([Predicate("A", "<", 1.0)]))
        with pytest.raises(KeyError):
            m2.add_many([("f1", Predicate("B", "<", 5.0))])


@given(
    first=st.lists(conjunctions(), min_size=0, max_size=6),
    second=st.lists(conjunctions(), min_size=0, max_size=6),
    attrs=st.dictionaries(
        st.sampled_from(["A", "B", "C"]), st.floats(-5, 5, allow_nan=False), max_size=3
    ),
)
@settings(max_examples=200)
def test_add_many_agrees_with_incremental_adds(first, second, attrs):
    """Bulk-build over a (possibly non-empty) index == sequential adds."""
    incremental = CountingIndexMatcher()
    bulk = CountingIndexMatcher()
    for i, f in enumerate(first):
        incremental.add(("a", i), f)
        bulk.add(("a", i), f)
    for i, f in enumerate(second):
        incremental.add(("b", i), f)
    bulk.add_many([(("b", i), f) for i, f in enumerate(second)])
    assert bulk.match(attrs) == incremental.match(attrs)
    assert len(bulk) == len(incremental)


# ---------------------------------------------------------------------- #
# VectorCountingMatcher: unit behaviour + three-way differential suite.
# ---------------------------------------------------------------------- #
class TestVectorCountingMatcher:
    def test_all_operators(self):
        m = VectorCountingMatcher()
        m.add("lt", Predicate("A", "<", 5.0))
        m.add("le", Predicate("A", "<=", 5.0))
        m.add("gt", Predicate("A", ">", 5.0))
        m.add("ge", Predicate("A", ">=", 5.0))
        m.add("eq", Predicate("A", "==", 5.0))
        m.add("ne", Predicate("A", "!=", 5.0))
        assert m.match({"A": 5.0}) == {"le", "ge", "eq"}
        assert m.match({"A": 4.0}) == {"lt", "le", "ne"}
        assert m.match({"A": 6.0}) == {"gt", "ge", "ne"}

    def test_conjunction_requires_all_predicates(self):
        m = VectorCountingMatcher()
        m.add("s1", AndFilter([Predicate("A", "<", 5.0), Predicate("B", "<", 5.0)]))
        assert m.match({"A": 3.0, "B": 3.0}) == {"s1"}
        assert m.match({"A": 3.0, "B": 7.0}) == set()
        assert m.match({"A": 3.0}) == set()  # missing attribute

    def test_repeated_attribute_in_one_conjunction(self):
        m = VectorCountingMatcher()
        m.add("s1", AndFilter([Predicate("A", "<", 5.0), Predicate("A", "<", 3.0)]))
        assert m.match({"A": 2.0}) == {"s1"}
        assert m.match({"A": 4.0}) == set()

    def test_match_all_and_fallback(self):
        m = VectorCountingMatcher()
        m.add("all", AndFilter([]))
        m.add("or", OrFilter([Predicate("A", "<", 1.0), Predicate("B", ">", 9.0)]))
        assert m.match({}) == {"all"}
        assert m.match({"A": 0.0, "B": 0.0}) == {"all", "or"}
        assert len(m) == 2

    def test_remove_and_readd(self):
        m = VectorCountingMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        m.add("s2", Predicate("A", "<", 5.0))
        m.remove("s1")
        assert m.match({"A": 1.0}) == {"s2"}
        m.add("s1", Predicate("A", ">", 0.0))
        assert m.match({"A": 1.0}) == {"s1", "s2"}
        assert len(m) == 2

    def test_mass_removal_triggers_compaction(self):
        """Tombstoned ids are purged once they outnumber live entries,
        and matching stays correct before, across and after the purge."""
        m = VectorCountingMatcher()
        for i in range(40):
            m.add(i, AndFilter([Predicate("A", "<", float(i)), Predicate("B", ">", -1.0)]))
        for i in range(35):
            assert m.match({"A": -1.0, "B": 0.0}) == set(range(i, 40))
            m.remove(i)
        assert m.match({"A": -1.0, "B": 0.0}) == {35, 36, 37, 38, 39}
        assert m._dead_entries * 2 <= m._total_entries  # compaction ran
        assert len(m) == 5
        # The id space is compacted too: it tracks live keys, not the 40
        # cumulative installs.
        assert len(m._keys) <= 2 * len(m)

    def test_duplicate_key_rejected(self):
        m = VectorCountingMatcher()
        m.add("s1", Predicate("A", "<", 5.0))
        with pytest.raises(KeyError):
            m.add("s1", Predicate("B", "<", 5.0))
        m.add("f1", OrFilter([Predicate("A", "<", 1.0)]))
        with pytest.raises(KeyError):
            m.add("f1", Predicate("B", "<", 5.0))
        with pytest.raises(KeyError):
            m.add_many([("s2", Predicate("A", "<", 1.0)), ("s2", Predicate("A", ">", 1.0))])

    def test_match_array_with_int_keys(self):
        m = VectorCountingMatcher()
        m.add(0, Predicate("A", "<", 5.0))
        m.add(1, AndFilter([]))
        m.add(2, OrFilter([Predicate("A", ">", 9.0), Predicate("B", "<", 0.0)]))
        got = m.match_array({"A": 3.0})
        assert isinstance(got, np.ndarray)
        assert set(got.tolist()) == {0, 1} == m.match({"A": 3.0})

    def test_make_matcher_backends(self):
        assert isinstance(make_matcher("vector"), VectorCountingMatcher)
        assert isinstance(make_matcher("oracle"), CountingIndexMatcher)
        assert isinstance(make_matcher("brute"), BruteForceMatcher)
        with pytest.raises(ValueError):
            make_matcher("nope")
        assert set(MATCHER_BACKENDS) == {"vector", "oracle", "brute"}


@given(filters=st.lists(any_filters(), min_size=1, max_size=14), attrs=attributes())
@settings(max_examples=300)
def test_vector_matcher_three_way_differential(filters, attrs):
    """vector ≡ oracle counting index ≡ brute force on random tables."""
    brute = BruteForceMatcher()
    index = CountingIndexMatcher()
    vector = VectorCountingMatcher()
    for i, f in enumerate(filters):
        brute.add(i, f)
        index.add(i, f)
        vector.add(i, f)
    expected = brute.match(attrs)
    assert index.match(attrs) == expected
    assert vector.match(attrs) == expected
    assert set(vector.match_array(attrs).tolist()) == expected


@given(
    filters=st.lists(any_filters(), min_size=2, max_size=12),
    attrs=attributes(),
    removals=st.sets(st.integers(0, 11), max_size=6),
    readd=st.booleans(),
)
@settings(max_examples=200)
def test_vector_matcher_differential_under_churn(filters, attrs, removals, readd):
    """Add/remove churn (including re-adds) keeps all three engines equal."""
    brute = BruteForceMatcher()
    index = CountingIndexMatcher()
    vector = VectorCountingMatcher()
    engines = (brute, index, vector)
    for i, f in enumerate(filters):
        for e in engines:
            e.add(i, f)
    removed = [i for i in sorted(removals) if i < len(filters)]
    for i in removed:
        for e in engines:
            e.remove(i)
    if readd and removed:
        for e in engines:
            e.add(removed[0], filters[removed[0]])
    expected = brute.match(attrs)
    assert index.match(attrs) == expected
    assert vector.match(attrs) == expected
    assert len(vector) == len(index) == len(brute)


@given(filters=st.lists(any_filters(), min_size=0, max_size=10), attrs=attributes())
@settings(max_examples=150)
def test_vector_add_many_agrees_with_incremental(filters, attrs):
    incremental = VectorCountingMatcher()
    bulk = VectorCountingMatcher()
    for i, f in enumerate(filters):
        incremental.add(i, f)
    bulk.add_many(list(enumerate(filters)))
    assert bulk.match(attrs) == incremental.match(attrs)
    assert len(bulk) == len(incremental)
