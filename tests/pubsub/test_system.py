"""System assembly tests: wiring, routing installation, publishing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import EbStrategy, FifoStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import TopologyError, build_from_edges, build_layered_mesh
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem, SystemConfig
from repro.stats.normal import Normal
from tests.conftest import make_diamond_topology, make_line_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


def make_system(topology, strategy=None, config=None) -> PubSubSystem:
    return PubSubSystem(
        topology=topology,
        strategy=strategy or FifoStrategy(),
        sim=Simulator(),
        streams=RngStreams(0),
        config=config,
    )


class TestConstruction:
    def test_brokers_and_links_built(self, line_topology):
        system = make_system(line_topology)
        assert sorted(system.brokers) == ["B1", "B2", "B3"]
        # Two directions per edge.
        assert len(system.monitors) == 4
        assert "B2" in system.brokers["B1"].queues
        assert "B1" in system.brokers["B2"].queues

    def test_disconnected_topology_rejected(self):
        topo = make_line_topology(n=2)
        topo.add_broker("Z")
        with pytest.raises(TopologyError):
            make_system(topo)

    def test_publisher_handles_created(self, line_topology):
        system = make_system(line_topology)
        assert list(system.publishers) == ["P1"]


class TestSubscriptionInstallation:
    def test_rows_installed_along_path(self, line_topology):
        system = make_system(line_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        # Path B1 -> B2 -> B3; every broker on it holds a row.
        assert "S1" in system.brokers["B1"].table
        assert "S1" in system.brokers["B2"].table
        assert "S1" in system.brokers["B3"].table
        assert system.brokers["B1"].table.row("S1").next_hop == "B2"
        assert system.brokers["B3"].table.row("S1").is_local

    def test_row_parameters_describe_remaining_path(self, line_topology):
        system = make_system(line_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        row = system.brokers["B1"].table.row("S1")
        assert row.nn == 2
        assert row.rate.mean == 20.0  # two links at mean 10
        assert row.rate.variance == 8.0

    def test_off_path_brokers_hold_no_row(self, diamond_topology):
        system = make_system(diamond_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        # Fast branch is B1->B2->B4; B3 is off-path.
        assert "S1" in system.brokers["B2"].table
        assert "S1" not in system.brokers["B3"].table

    def test_unattached_subscriber_rejected(self, line_topology):
        system = make_system(line_topology)
        with pytest.raises(TopologyError):
            system.subscribe(Subscription("ghost", MATCH_ALL))

    def test_duplicate_subscription_rejected(self, line_topology):
        system = make_system(line_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        with pytest.raises(ValueError):
            system.subscribe(Subscription("S1", MATCH_ALL))

    def test_routing_path_diagnostic(self, diamond_topology):
        system = make_system(diamond_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        assert system.routing_path("B1", "S1") == ["B1", "B2", "B4"]


class TestPublishing:
    def test_end_to_end_delivery(self, line_topology):
        system = make_system(line_topology)
        handle = system.subscribe(Subscription("S1", MATCH_ALL))
        system.publish("P1", {"A1": 1.0})
        system.sim.run()
        assert handle.valid_count == 1
        assert system.metrics.deliveries_valid == 1
        # Receptions: B1 (inject), B2, B3.
        assert system.metrics.receptions == 3

    def test_interested_population_counted(self, line_topology):
        system = make_system(line_topology)
        system.subscribe(Subscription("S1", Predicate("A1", "<", 5.0)))
        system.publish("P1", {"A1": 1.0})  # matches
        system.publish("P1", {"A1": 9.0})  # does not
        assert system.metrics.interested == {0: 1, 1: 0}

    def test_unknown_publisher_rejected(self, line_topology):
        system = make_system(line_topology)
        with pytest.raises(TopologyError):
            system.publish("P9", {"A1": 1.0})

    def test_publisher_handle(self, line_topology):
        system = make_system(line_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        system.publishers["P1"].publish({"A1": 1.0})
        assert system.publishers["P1"].published == 1

    def test_message_size_defaults_from_config(self, line_topology):
        system = make_system(
            line_topology, config=SystemConfig(default_size_kb=7.0)
        )
        m = system.publish("P1", {"A1": 1.0})
        assert m.size_kb == 7.0


class TestNoDuplicateDelivery:
    def test_multi_publisher_mesh_no_duplicates(self):
        """The provenance check must keep single-path routing duplicate-free
        even when paths from different publishers overlap."""
        rate = Normal(10.0, 1.0)
        topo = build_from_edges(
            [
                ("B1", "B3", rate), ("B2", "B3", rate),
                ("B1", "B4", rate), ("B2", "B4", rate),
                ("B3", "B5", rate), ("B4", "B5", rate),
                ("B3", "B6", rate), ("B4", "B6", rate),
            ],
            publishers={"P1": "B1", "P2": "B2"},
            subscribers={"S1": "B5", "S2": "B6"},
        )
        system = make_system(topo)
        h1 = system.subscribe(Subscription("S1", MATCH_ALL))
        h2 = system.subscribe(Subscription("S2", MATCH_ALL))
        for pub in ("P1", "P2"):
            system.publish(pub, {"A1": 1.0})
        system.sim.run()
        # Each subscriber gets each of the two messages exactly once.
        assert sorted(r.msg_id for r in h1.records) == [0, 1]
        assert sorted(r.msg_id for r in h2.records) == [0, 1]

    def test_paper_topology_no_duplicates(self):
        topo = build_layered_mesh(np.random.default_rng(2))
        system = make_system(topo, strategy=EbStrategy())
        handles = [
            system.subscribe(Subscription(s, MATCH_ALL, deadline_ms=60_000.0, price=1.0))
            for s in sorted(topo.subscriber_brokers)
        ]
        for pub in sorted(topo.publisher_brokers):
            system.publish(pub, {"A1": 1.0})
        system.sim.run()
        for handle in handles:
            ids = [r.msg_id for r in handle.records]
            assert len(ids) == len(set(ids)), f"{handle.name} got duplicates"
            assert len(ids) == 4  # one per publisher

    def test_reception_count_matches_path_lengths(self, diamond_topology):
        system = make_system(diamond_topology)
        system.subscribe(Subscription("S1", MATCH_ALL))
        system.publish("P1", {"A1": 1.0})
        system.sim.run()
        # Path B1->B2->B4: three receptions, two transmissions.
        assert system.metrics.receptions == 3
        assert system.metrics.transmissions == 2


class TestRuntimeLinkInterventions:
    """The failure-injection path must reach *live* links, not just the
    static topology description (the historic dead path)."""

    def test_topology_mutation_alone_is_dead(self, line_topology):
        system = make_system(line_topology)
        old = system.monitors[("B1", "B2")].link.true_rate
        line_topology.set_link_rate("B1", "B2", Normal(999.0, 1.0))
        # Static layer changed, live channel did not — which is why the
        # system-level API below exists.
        assert system.monitors[("B1", "B2")].link.true_rate is old

    def test_system_set_link_rate_reaches_every_layer(self, line_topology):
        system = make_system(line_topology)
        new = Normal(999.0, 1.0)
        system.set_link_rate("B1", "B2", new)
        assert system.topology.link_rate("B1", "B2") is new
        assert system.monitors[("B1", "B2")].link.true_rate is new
        assert system.monitors[("B2", "B1")].link.true_rate is new
        # ORACLE monitors repin instantly.
        assert system.monitors[("B1", "B2")].rate() is new
        assert system.monitors[("B2", "B1")].rate() is new

    def test_set_link_rate_unknown_link_rejected(self, line_topology):
        system = make_system(line_topology)
        with pytest.raises(TopologyError):
            system.set_link_rate("B1", "B3", Normal(1.0, 1.0))

    def test_degrade_validates_factor(self, line_topology):
        system = make_system(line_topology)
        with pytest.raises(ValueError):
            system.degrade_link("B1", "B2", 0.0)

    def test_rate_change_invalidates_sink_tree_cache(self):
        # Diamond: B1 -> {B2 fast | B3 slow} -> B4; routing prefers B2.
        topo = make_diamond_topology(fast=Normal(10.0, 1.0), slow=Normal(50.0, 1.0))
        topo.attach_publisher("P1", "B1")
        topo.attach_subscriber("S1", "B4")
        topo.attach_subscriber("S2", "B4")
        system = make_system(topo)
        system.subscribe(Subscription("S1", MATCH_ALL))
        assert system.routing_path("B1", "S1") == ["B1", "B2", "B4"]
        # Degrade the fast branch below the slow one: new subscriptions
        # must route around it.
        system.set_link_rate("B1", "B2", Normal(100.0, 1.0))
        system.subscribe(Subscription("S2", MATCH_ALL))
        assert system.routing_path("B1", "S2") == ["B1", "B3", "B4"]
