"""Client endpoint tests."""

from __future__ import annotations

import numpy as np

from repro.core.strategies import FifoStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.client import DeliveryLog, DeliveryRecord, SubscriberHandle
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem
from tests.conftest import make_line_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


def _fill_log(log: DeliveryLog, endpoints: int, rows: int, seed: int = 3):
    """Register endpoints and append a deterministic row mix (batch +
    scalar appends, so chunk boundaries land mid-batch too)."""
    ids = [log.register() for _ in range(endpoints)]
    rng = np.random.default_rng(seed)
    sub = rng.integers(0, endpoints, rows)
    msg = rng.integers(0, 50, rows)
    t = np.sort(rng.uniform(0, 1000, rows))
    lat = rng.uniform(1, 100, rows)
    valid = rng.integers(0, 2, rows).astype(bool)
    i = 0
    while i < rows:
        k = min(int(rng.integers(1, 9)), rows - i)
        if k == 1:
            log.append(int(sub[i]), int(msg[i]), float(t[i]), float(lat[i]), bool(valid[i]))
        else:
            log.append_batch(sub[i : i + k], int(msg[i]), float(t[i]), float(lat[i]), valid[i : i + k])
            msg[i : i + k] = msg[i]
            t[i : i + k] = t[i]
            lat[i : i + k] = lat[i]
        i += k
    return ids, (sub, msg, t, lat, valid)


class TestDeliveryLogChunked:
    def test_columns_is_a_stable_snapshot(self):
        """Satellite pin: ``columns()`` snapshots are copies — they stay
        valid (and unchanged) across later appends that seal/reallocate
        chunks.  The pre-chunking zero-copy views did not survive this."""
        log = DeliveryLog(chunk_rows=4)
        log.register()
        for i in range(6):
            log.append(0, i, float(i), 1.0, True)
        snap = log.columns()
        for i in range(6, 40):  # forces several seals past the snapshot
            log.append(0, i, float(i), 1.0, False)
        np.testing.assert_array_equal(snap[1], np.arange(6))
        assert snap[4].all()
        assert len(log) == 40

    def test_chunked_matches_unchunked(self):
        big = DeliveryLog()  # one active chunk
        small = DeliveryLog(chunk_rows=16)
        _fill_log(big, 5, 200)
        _fill_log(small, 5, 200)
        for a, b in zip(big.columns(), small.columns()):
            assert a.tobytes() == b.tobytes()
        for sid in range(5):
            assert big.counts_for(sid) == small.counts_for(sid)
            for a, b in zip(big.columns_for(sid), small.columns_for(sid)):
                np.testing.assert_array_equal(a, b)

    def test_spill_matches_memory(self):
        mem = DeliveryLog(chunk_rows=16)
        disk = DeliveryLog(chunk_rows=16, spill=True)
        _fill_log(mem, 4, 150)
        _fill_log(disk, 4, 150)
        assert disk.spilled_chunks > 0 and disk.spills
        assert mem.spilled_chunks == 0 and not mem.spills
        for a, b in zip(mem.columns(), disk.columns()):
            assert a.tobytes() == b.tobytes()

    def test_counts_cache_tracks_growth_and_new_endpoints(self):
        log = DeliveryLog(chunk_rows=8)
        a = log.register()
        log.append(a, 1, 1.0, 1.0, True)
        assert log.counts_for(a) == (1, 1)
        b = log.register()  # registered after the tallies were cached
        assert log.counts_for(b) == (0, 0)
        log.append(b, 2, 2.0, 2.0, False)
        assert log.counts_for(b) == (1, 0)
        assert log.counts_for(a) == (1, 1)

    def test_handle_counts_on_chunked_log(self):
        log = DeliveryLog(chunk_rows=4)
        h = SubscriberHandle("S1", log=log)
        other = SubscriberHandle("S2", log=log)
        for i in range(10):
            (h if i % 2 else other).record(i, float(i), 1.0, valid=i < 6)
        assert h.valid_count + h.late_count == 5
        assert other.valid_count + other.late_count == 5
        assert h.received_ids() == {1, 3, 5, 7, 9}


class TestSubscriberHandle:
    def test_counts(self):
        h = SubscriberHandle("S1")
        h.record(1, 10.0, 10.0, valid=True)
        h.record(2, 20.0, 20.0, valid=True)
        h.record(3, 30.0, 30.0, valid=False)
        assert h.valid_count == 2
        assert h.late_count == 1
        assert h.received_ids() == {1, 2, 3}
        assert h.records == [
            DeliveryRecord(1, 10.0, 10.0, valid=True),
            DeliveryRecord(2, 20.0, 20.0, valid=True),
            DeliveryRecord(3, 30.0, 30.0, valid=False),
        ]

    def test_records_refresh_after_append(self):
        h = SubscriberHandle("S1")
        assert h.records == []
        h.record(7, 1.0, 1.0, valid=True)
        assert [r.msg_id for r in h.records] == [7]
        h.record(8, 2.0, 2.0, valid=False)
        assert [r.msg_id for r in h.records] == [7, 8]

    def test_empty(self):
        h = SubscriberHandle("S1")
        assert h.valid_count == 0 and h.late_count == 0
        assert h.received_ids() == set()


class TestPublisherHandle:
    def test_publish_through_system(self):
        topo = make_line_topology(
            n=2, publishers={"P1": "B1"}, subscribers={"S1": "B2"}
        )
        system = PubSubSystem(topo, FifoStrategy(), Simulator(), RngStreams(0))
        handle_sub = system.subscribe(Subscription("S1", MATCH_ALL))
        pub = system.publishers["P1"]
        message = pub.publish({"A1": 2.0}, size_kb=10.0)
        system.sim.run()
        assert pub.published == 1
        assert message.size_kb == 10.0
        assert handle_sub.received_ids() == {message.msg_id}

    def test_deadline_forwarded(self):
        topo = make_line_topology(n=2, publishers={"P1": "B1"})
        system = PubSubSystem(topo, FifoStrategy(), Simulator(), RngStreams(0))
        message = system.publishers["P1"].publish({"A1": 1.0}, deadline_ms=5_000.0)
        assert message.deadline_ms == 5_000.0
