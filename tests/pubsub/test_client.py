"""Client endpoint tests."""

from __future__ import annotations

from repro.core.strategies import FifoStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.client import DeliveryRecord, SubscriberHandle
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem
from tests.conftest import make_line_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


class TestSubscriberHandle:
    def test_counts(self):
        h = SubscriberHandle("S1")
        h.record(1, 10.0, 10.0, valid=True)
        h.record(2, 20.0, 20.0, valid=True)
        h.record(3, 30.0, 30.0, valid=False)
        assert h.valid_count == 2
        assert h.late_count == 1
        assert h.received_ids() == {1, 2, 3}
        assert h.records == [
            DeliveryRecord(1, 10.0, 10.0, valid=True),
            DeliveryRecord(2, 20.0, 20.0, valid=True),
            DeliveryRecord(3, 30.0, 30.0, valid=False),
        ]

    def test_records_refresh_after_append(self):
        h = SubscriberHandle("S1")
        assert h.records == []
        h.record(7, 1.0, 1.0, valid=True)
        assert [r.msg_id for r in h.records] == [7]
        h.record(8, 2.0, 2.0, valid=False)
        assert [r.msg_id for r in h.records] == [7, 8]

    def test_empty(self):
        h = SubscriberHandle("S1")
        assert h.valid_count == 0 and h.late_count == 0
        assert h.received_ids() == set()


class TestPublisherHandle:
    def test_publish_through_system(self):
        topo = make_line_topology(
            n=2, publishers={"P1": "B1"}, subscribers={"S1": "B2"}
        )
        system = PubSubSystem(topo, FifoStrategy(), Simulator(), RngStreams(0))
        handle_sub = system.subscribe(Subscription("S1", MATCH_ALL))
        pub = system.publishers["P1"]
        message = pub.publish({"A1": 2.0}, size_kb=10.0)
        system.sim.run()
        assert pub.published == 1
        assert message.size_kb == 10.0
        assert handle_sub.received_ids() == {message.msg_id}

    def test_deadline_forwarded(self):
        topo = make_line_topology(n=2, publishers={"P1": "B1"})
        system = PubSubSystem(topo, FifoStrategy(), Simulator(), RngStreams(0))
        message = system.publishers["P1"].publish({"A1": 1.0}, deadline_ms=5_000.0)
        assert message.deadline_ms == 5_000.0
