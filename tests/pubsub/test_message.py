"""Message tests."""

from __future__ import annotations

import pytest

from repro.pubsub.message import Message


def make_message(**kw) -> Message:
    defaults = dict(
        msg_id=1,
        publisher="P1",
        source_broker="B1",
        attributes={"A1": 3.0, "A2": 7.0},
        size_kb=50.0,
        publish_time=1000.0,
    )
    defaults.update(kw)
    return Message(**defaults)


class TestConstruction:
    def test_attributes_frozen(self):
        m = make_message()
        with pytest.raises(TypeError):
            m.attributes["A1"] = 9.9  # type: ignore[index]

    def test_attributes_copied(self):
        attrs = {"A1": 1.0}
        m = make_message(attributes=attrs)
        attrs["A1"] = 2.0
        assert m.attributes["A1"] == 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_message(size_kb=0.0)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            make_message(deadline_ms=-5.0)


class TestDelayAccounting:
    def test_hdl(self):
        m = make_message(publish_time=1000.0)
        assert m.hdl(1500.0) == 500.0

    def test_expired_with_deadline(self):
        m = make_message(publish_time=0.0, deadline_ms=1000.0)
        assert not m.expired(999.0)
        assert not m.expired(1000.0)  # boundary: exactly on time
        assert m.expired(1000.1)

    def test_never_expires_without_deadline(self):
        m = make_message(deadline_ms=None)
        assert not m.expired(1e15)
