"""Multi-path routing extension tests.

The paper's Section 3.3 contrasts its single-path choice with the
multi-path routing of mesh systems like DCP [13]: multi-path improves
delivery odds at the cost of duplicate traffic.  These tests pin down the
extension's semantics: every chosen path is populated, duplicate arrivals
are settled once, and the expected traffic/reliability trade shows up.
"""

from __future__ import annotations

import pytest

from repro.core.strategies import EbStrategy, FifoStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem, RoutingMode, SystemConfig
from repro.stats.normal import Normal
from tests.conftest import make_diamond_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


def diamond_system(routing: RoutingMode, seed: int = 0) -> PubSubSystem:
    topo = make_diamond_topology(
        fast=Normal(10.0, 1.0), slow=Normal(12.0, 1.0),
        publishers={"P1": "B1"}, subscribers={"S1": "B4"},
    )
    system = PubSubSystem(
        topology=topo,
        strategy=FifoStrategy(),
        sim=Simulator(),
        streams=RngStreams(seed),
        config=SystemConfig(routing=routing, default_size_kb=5.0),
    )
    system.subscribe(Subscription("S1", MATCH_ALL))
    return system


class TestRoutingMode:
    def test_defaults(self):
        assert RoutingMode.single_path().is_single_path
        assert not RoutingMode.multi_path(k=2).is_single_path
        assert SystemConfig().routing.is_single_path

    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingMode(k=0)
        with pytest.raises(ValueError):
            RoutingMode(k=2, extra_hops=-1)


class TestInstallation:
    def test_both_diamond_branches_populated(self):
        system = diamond_system(RoutingMode.multi_path(k=2))
        # Single-path uses only B2; multi-path must also install via B3.
        assert "S1" in system.brokers["B2"].table
        assert "S1" in system.brokers["B3"].table
        assert len(system.brokers["B1"].table) == 2  # one row per path

    def test_k1_multi_path_equals_single_path_route(self):
        multi = diamond_system(RoutingMode(k=1))
        single = diamond_system(RoutingMode.single_path())
        assert ("S1" in multi.brokers["B3"].table) == (
            "S1" in single.brokers["B3"].table
        )

    def test_row_parameters_per_path(self):
        system = diamond_system(RoutingMode.multi_path(k=2))
        rows = system.brokers["B1"].table.rows()
        means = sorted(r.rate.mean for r in rows)
        assert means == pytest.approx([20.0, 24.0])  # fast 2x10, slow 2x12
        assert all(r.nn == 2 for r in rows)


class TestDelivery:
    def test_duplicates_settled_once(self):
        system = diamond_system(RoutingMode.multi_path(k=2))
        handle = system.subscribers["S1"]
        system.publish("P1", {"A1": 1.0})
        system.sim.run()
        # The endpoint saw two arrivals, the metrics counted one.
        assert len(handle.records) == 2
        assert system.metrics.deliveries_valid == 1
        assert system.metrics.duplicate_deliveries == 1
        system.metrics.check_invariants()

    def test_traffic_doubles_on_diamond(self):
        single = diamond_system(RoutingMode.single_path())
        multi = diamond_system(RoutingMode.multi_path(k=2))
        for system in (single, multi):
            system.publish("P1", {"A1": 1.0})
            system.sim.run()
        # Single: B1,B2,B4 = 3 receptions.  Multi: + B3,B4 = 5.
        assert single.metrics.receptions == 3
        assert multi.metrics.receptions == 5

    def test_survives_one_dead_branch(self):
        """Reliability win: with the fast branch effectively down at
        publish-time parameters, the slow-path copy still arrives."""
        topo = make_diamond_topology(
            fast=Normal(10.0, 1.0), slow=Normal(12.0, 1.0),
            publishers={"P1": "B1"}, subscribers={"S1": "B4"},
        )
        # Break the fast branch *after* route installation: transmissions
        # on it stall for ~28 hours of simulated time.
        system = PubSubSystem(
            topology=topo, strategy=EbStrategy(), sim=Simulator(),
            streams=RngStreams(3),
            config=SystemConfig(routing=RoutingMode.multi_path(k=2), default_size_kb=5.0),
        )
        system.subscribe(Subscription("S1", MATCH_ALL, deadline_ms=60_000.0, price=1.0))
        for queue in system.brokers["B1"].queues.values():
            if queue.neighbor == "B2":
                queue.link.true_rate = Normal(2e7, 1.0)
        system.publish("P1", {"A1": 1.0})
        system.sim.run(until=60_000.0)
        assert system.metrics.deliveries_valid == 1  # via the slow branch


class TestUninstall:
    def test_uninstall_removes_all_paths(self):
        system = diamond_system(RoutingMode.multi_path(k=2))
        table = system.brokers["B1"].table
        assert len(table) == 2
        table.uninstall("S1")
        assert len(table) == 0
        with pytest.raises(KeyError):
            table.uninstall("S1")
