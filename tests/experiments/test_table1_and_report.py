"""Table 1 rendering and report formatting tests."""

from __future__ import annotations

from repro.experiments.common import FigureResult
from repro.experiments.report import format_comparison, format_series_table
from repro.experiments.table1 import TABLE1_ROWS, render


class TestTable1:
    def test_contains_all_cells(self):
        text = render()
        for row in TABLE1_ROWS:
            for cell in row:
                if cell != "—":
                    assert cell in text
        assert "Overlay" in text
        assert "priority control" in text

    def test_has_header_separator(self):
        lines = render().splitlines()
        assert any(set(line.strip()) <= {"-", " "} and "-" in line for line in lines)


class TestReport:
    def _result(self) -> FigureResult:
        return FigureResult(
            figure_id="figX",
            title="Test figure",
            x_label="rate",
            y_label="value",
            x_values=[1.0, 2.0],
            series={"eb": [0.5, 0.25], "fifo": [0.4, 0.1]},
            notes=["tiny run"],
        )

    def test_table_contains_everything(self):
        text = format_series_table(self._result())
        assert "Test figure" in text
        assert "rate" in text and "eb" in text and "fifo" in text
        assert "0.5" in text and "0.25" in text
        assert "note: tiny run" in text

    def test_alignment(self):
        lines = [l for l in format_series_table(self._result()).splitlines() if l]
        header_idx = next(i for i, l in enumerate(lines) if "rate" in l)
        widths = {len(l) for l in lines[header_idx : header_idx + 4]}
        assert len(widths) == 1  # all table rows padded to equal width

    def test_comparison_line(self):
        text = format_comparison("EB", 10.0, "FIFO", 2.0, "earning")
        assert "5.00x" in text

    def test_comparison_zero_divisor(self):
        text = format_comparison("EB", 10.0, "RL", 0.0, "earning")
        assert "inf" in text
