"""ASCII chart renderer tests."""

from __future__ import annotations

import pytest

from repro.experiments.asciiplot import render_ascii_chart
from repro.experiments.common import FigureResult


def fig(series, xs=None) -> FigureResult:
    xs = xs or [1.0, 2.0, 3.0]
    return FigureResult(
        figure_id="f", title="Chart", x_label="rate", y_label="y",
        x_values=xs, series=series,
    )


class TestRendering:
    def test_contains_title_axis_legend(self):
        text = render_ascii_chart(fig({"eb": [1.0, 2.0, 3.0]}))
        assert "Chart" in text
        assert "rate" in text
        assert "o eb" in text

    def test_markers_assigned_per_series(self):
        text = render_ascii_chart(fig({"eb": [1.0, 2.0, 3.0], "pc": [3.0, 2.0, 1.0]}))
        assert "o eb" in text and "x pc" in text
        grid_lines = [l for l in text.splitlines() if "|" in l]
        assert any("o" in l for l in grid_lines)  # markers actually plotted
        assert any("x" in l for l in grid_lines)

    def test_extremes_on_border_rows(self):
        text = render_ascii_chart(fig({"a": [0.0, 10.0, 5.0]}), width=20, height=6)
        lines = [l for l in text.splitlines() if "|" in l]
        assert "o" in lines[0]  # max lands on the top row
        assert "o" in lines[-1]  # min lands on the bottom row

    def test_y_labels_show_range(self):
        text = render_ascii_chart(fig({"a": [2.0, 8.0, 5.0]}))
        assert "8" in text and "2" in text

    def test_overlap_marker(self):
        text = render_ascii_chart(fig({"a": [1.0, 2.0, 3.0], "b": [1.0, 2.0, 3.0]}))
        assert "*" in text

    def test_flat_series(self):
        # Constant y must not divide by zero.
        text = render_ascii_chart(fig({"a": [5.0, 5.0, 5.0]}))
        assert "o" in text

    def test_single_x(self):
        text = render_ascii_chart(fig({"a": [1.0]}, xs=[10.0]))
        assert "o" in text


class TestValidation:
    def test_too_small(self):
        with pytest.raises(ValueError):
            render_ascii_chart(fig({"a": [1.0, 2.0, 3.0]}), width=5, height=3)

    def test_empty_x(self):
        with pytest.raises(ValueError):
            render_ascii_chart(fig({"a": []}, xs=[]))
