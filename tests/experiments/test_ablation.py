"""Ablation study harness tests (tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import STUDIES, epsilon_study, routing_study
from repro.experiments.common import ScaleSpec
from repro.experiments.report import format_series_table

TINY = ScaleSpec(scale=0.01, seed=0)


class TestRegistry:
    def test_all_studies_present(self):
        assert set(STUDIES) == {"epsilon", "slack", "measurement", "routing", "arrival"}


class TestEpsilonStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return epsilon_study(TINY)

    def test_structure(self, result):
        assert result.figure_id == "ablate-epsilon"
        assert set(result.series) == {"delivery_rate", "message_number", "pruned"}
        assert len(result.x_values) == 4
        assert any("off, expired-only" in n for n in result.notes)

    def test_pruning_saves_traffic(self, result):
        # off prunes nothing.  Note prune *counts* are not monotone in
        # aggressiveness: pruning earlier (upstream) prevents the fan-out
        # copies a laxer rule would have pruned one by one downstream.
        # The monotone quantity is carried traffic.
        pruned = result.series["pruned"]
        traffic = result.series["message_number"]
        off, expired, paper, aggressive = range(4)
        assert pruned[off] == 0.0
        assert all(p > 0 for p in pruned[1:])
        assert traffic[off] >= traffic[expired] >= traffic[paper] >= traffic[aggressive]

    def test_renders_as_table(self, result):
        text = format_series_table(result)
        assert "delivery_rate" in text and "variant" in text


class TestRoutingStudy:
    def test_multipath_carries_more_traffic(self):
        result = routing_study(TINY)
        single, multi = result.series["message_number"]
        assert multi > single
