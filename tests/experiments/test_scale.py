"""Scale-tier experiment points: spill A/B identity and accounting."""

from __future__ import annotations

import pytest

import repro.workload.scenarios as scenarios
from repro.experiments.scale import run_scale_point, scale_config
from repro.workload.scenarios import SCALE_SCENARIOS, ScaleScenarioSpec

TINY = ScaleScenarioSpec(name="tiny", subscribers=64)


@pytest.fixture(autouse=True)
def tiny_family(monkeypatch):
    monkeypatch.setitem(SCALE_SCENARIOS, "tiny", TINY)


class TestRunScalePoint:
    def test_spill_modes_agree(self):
        kw = dict(strategy="fifo", seed=3, rate_per_min=6.0, minutes=0.5,
                  chunk_rows=64)
        mem = run_scale_point("tiny", spill=False, **kw)
        disk = run_scale_point("tiny", spill=True, **kw)
        assert disk.spilled_chunks > 0
        assert mem.spilled_chunks == 0
        assert mem.series_sha256 == disk.series_sha256
        for field in ("published", "deliveries", "deliveries_valid",
                      "earning", "delivery_rate", "log_rows"):
            assert getattr(mem, field) == getattr(disk, field), field
        assert mem.peak_rss_kb > 0
        record = disk.as_dict()
        assert record["scenario"] == "scale-tiny"
        assert record["log_spill"] is True
        assert record["wall_s"] == pytest.approx(
            record["build_s"] + record["run_s"] + record["analysis_s"], abs=2e-3
        )

    def test_scale_config_plumbs_log_knobs(self):
        config = scale_config(TINY, spill=True, chunk_rows=128)
        assert config.log_spill and config.log_chunk_rows == 128
        assert config.scenario is scenarios.Scenario.SSD

    def test_unknown_member_raises(self):
        with pytest.raises(KeyError):
            run_scale_point("no-such-size")
