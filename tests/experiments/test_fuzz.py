"""The scenario fuzzer: deterministic generation, shrinking, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sentinel import InvariantViolation
from repro.des.rng import RngStreams
from repro.experiments import fuzz as fuzz_mod
from repro.experiments.fuzz import (
    FuzzReport,
    FuzzSpec,
    format_report,
    generate_script,
    run_fuzz,
    shrink_script,
)
from repro.network.topology import build_layered_mesh
from repro.workload.dynamics import (
    BrokerOutage,
    CascadeOutage,
    LinkFailure,
    LinkPartition,
    LinkRestore,
    RateBurst,
    ScenarioScript,
)
from repro.workload.registry import load_script


def _topology():
    return build_layered_mesh(RngStreams(0).get("topology"))


class TestGenerateScript:
    def test_deterministic_per_seed(self):
        topology = _topology()
        scripts_a = [
            generate_script(np.random.default_rng(9), topology, 90_000.0)
            for _ in range(1)
        ]
        scripts_b = [
            generate_script(np.random.default_rng(9), topology, 90_000.0)
            for _ in range(1)
        ]
        assert scripts_a == scripts_b

    def test_names_real_brokers_and_links(self):
        topology = _topology()
        brokers = set(topology.brokers)
        edges = {frozenset((a, b)) for a, b, _ in topology.links()}
        rng = np.random.default_rng(4)
        for _ in range(20):
            script = generate_script(rng, topology, 90_000.0)
            assert script.interventions
            for item in script.interventions:
                if isinstance(item, (LinkFailure, LinkRestore)):
                    assert frozenset((item.a, item.b)) in edges
                elif isinstance(item, (BrokerOutage, CascadeOutage)):
                    name = getattr(item, "broker", None) or item.origin
                    assert name in brokers
                elif isinstance(item, LinkPartition):
                    assert set(item.group) <= brokers

    def test_times_inside_publication_window(self):
        topology = _topology()
        rng = np.random.default_rng(1)
        duration = 90_000.0
        for _ in range(20):
            for item in generate_script(rng, topology, duration).interventions:
                at = item.start_ms if isinstance(item, RateBurst) else item.at_ms
                assert 0.0 < at < duration


class TestShrink:
    def test_shrinks_to_the_guilty_intervention(self, monkeypatch):
        topology = _topology()
        guilty = BrokerOutage(at_ms=30_000.0, broker=sorted(topology.brokers)[0])
        # A 4-intervention script whose "violation" is keyed to the guilty
        # outage alone; _probe is stubbed so no simulation runs.
        a, b = [(x, y) for x, y, _ in topology.links()][0]
        script = ScenarioScript((
            RateBurst(10_000.0, 20_000.0, 2.0),
            guilty,
            LinkFailure(at_ms=40_000.0, a=a, b=b),
            RateBurst(50_000.0, 60_000.0, 3.0),
        ))

        def fake_probe(spec, strategy, candidate, report):
            report.runs += 1
            if guilty in candidate.interventions:
                return InvariantViolation("entry-conservation", 0.0, {}, "boom"), None
            return None, None

        monkeypatch.setattr(fuzz_mod, "_probe", fake_probe)
        spec = FuzzSpec.smoke()
        report = FuzzReport(spec=spec)
        shrunk = shrink_script(spec, "eb", script, report)
        assert shrunk.interventions == (guilty,)
        assert report.runs > 0

    def test_non_shrinkable_script_returned_intact(self, monkeypatch):
        def fake_probe(spec, strategy, candidate, report):
            report.runs += 1
            return InvariantViolation("x", 0.0, {}, "boom"), None

        monkeypatch.setattr(fuzz_mod, "_probe", fake_probe)
        script = ScenarioScript((RateBurst(1_000.0, 2_000.0, 2.0),))
        shrunk = shrink_script(FuzzSpec.smoke(), "eb", script, FuzzReport(spec=FuzzSpec.smoke()))
        assert shrunk == script


class TestCampaign:
    def test_smoke_campaign_holds_all_invariants(self, tmp_path):
        # ACCEPTANCE: the fixed-seed smoke campaign completes with zero
        # unshrunk sentinel violations (CI runs this same spec).
        spec = FuzzSpec.smoke(out_dir=str(tmp_path / "findings"))
        report = run_fuzz(spec)
        assert report.ok, format_report(report)
        assert report.scripts_tried == spec.budget
        # 2 baseline runs + 2 per script unless a violation cut one short.
        assert report.runs >= 2 + spec.budget

    def test_violation_writes_replayable_counterexample(self, tmp_path, monkeypatch):
        spec = FuzzSpec(
            seed=1, budget=1, duration_ms=30_000.0, rate_per_min=5.0,
            out_dir=str(tmp_path / "findings"),
        )
        real_probe = fuzz_mod._probe

        def failing_probe(s, strategy, candidate, report):
            if candidate.interventions:  # empty baselines must pass
                report.runs += 1
                return InvariantViolation("pair-conservation", 1.0, {}, "planted"), None
            return real_probe(s, strategy, candidate, report)

        monkeypatch.setattr(fuzz_mod, "_probe", failing_probe)
        report = run_fuzz(spec)
        assert not report.ok and len(report.violations) == 1
        v = report.violations[0]
        assert v.replay_path is not None
        replayed = load_script(v.replay_path)
        assert replayed == v.shrunk
        assert "VIOLATION" in format_report(report)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FuzzSpec(budget=0)
        with pytest.raises(ValueError):
            FuzzSpec(pair=("eb", "eb"))
        with pytest.raises(ValueError):
            FuzzSpec(duration_ms=0.0)

    def test_report_format_mentions_inversions(self):
        spec = FuzzSpec.smoke()
        report = FuzzReport(spec=spec)
        text = format_report(report)
        assert "ranking inversions: 0" in text
        assert "all invariants held" in text


class TestShardDifferential:
    def test_clean_campaign_counts_identical_probes(self, tmp_path):
        spec = FuzzSpec(
            seed=2, budget=2, duration_ms=45_000.0, rate_per_min=10.0,
            out_dir=str(tmp_path / "findings"), shards=2,
        )
        report = run_fuzz(spec)
        assert report.ok, format_report(report)
        assert report.shard_probes_identical == spec.budget
        assert not report.divergences
        assert "byte-identical at 2 shards" in format_report(report)

    def test_shards_zero_disables_probe(self, tmp_path):
        spec = FuzzSpec(
            seed=2, budget=1, duration_ms=30_000.0, rate_per_min=5.0,
            out_dir=str(tmp_path / "findings"), shards=0,
        )
        report = run_fuzz(spec)
        assert report.shard_probes_identical == 0
        assert "shard differential" not in format_report(report)

    def test_planted_divergence_is_shrunk_and_saved(self, tmp_path, monkeypatch):
        spec = FuzzSpec(
            seed=3, budget=1, duration_ms=30_000.0, rate_per_min=5.0,
            out_dir=str(tmp_path / "findings"), shards=2,
        )

        def fake_shard_probe(s, strategy, candidate, report):
            report.runs += 1
            # Divergence iff the script still carries any intervention:
            # the shrinker must bottom out at a single-item script.
            return "planted divergence" if candidate.interventions else None

        monkeypatch.setattr(fuzz_mod, "_shard_probe", fake_shard_probe)
        report = run_fuzz(spec)
        assert not report.ok and len(report.divergences) == 1
        d = report.divergences[0]
        assert len(d.shrunk.interventions) == 1
        assert d.replay_path is not None
        assert load_script(d.replay_path) == d.shrunk
        assert "DIVERGENCE" in format_report(report)

    def test_spec_rejects_negative_shards(self):
        with pytest.raises(ValueError):
            FuzzSpec(shards=-1)
