"""EXPERIMENTS.md generator tests."""

from __future__ import annotations

import pytest

from repro.experiments.common import FigureResult, ScaleSpec
from repro.experiments.record import (
    PAPER_QUOTES,
    RecordBundle,
    comparison_rows,
    render_markdown,
    run_everything,
)


def synthetic_bundle() -> RecordBundle:
    def fig(fid, series):
        return FigureResult(
            figure_id=fid, title=fid, x_label="x", y_label="y",
            x_values=[3.0, 15.0], series=series,
        )

    return RecordBundle(
        scale=ScaleSpec(scale=0.1),
        fig4a=fig("fig4a", {"ebpc": [1.0, 2.0], "eb": [2.0, 2.0], "pc": [1.5, 1.5]}),
        fig4b=fig("fig4b", {"ebpc": [0.5, 0.6], "eb": [0.6, 0.6], "pc": [0.55, 0.55]}),
        fig5a=fig("fig5a", {"eb": [50.0, 150.0], "pc": [45.0, 130.0],
                            "fifo": [40.0, 30.0], "rl": [35.0, 15.0]}),
        fig5b=fig("fig5b", {"eb": [30.0, 123.0], "pc": [30.0, 120.0],
                            "fifo": [28.0, 100.0], "rl": [25.0, 75.0]}),
        fig6a=fig("fig6a", {"eb": [0.8, 0.4], "pc": [0.8, 0.39],
                            "fifo": [0.7, 0.22], "rl": [0.6, 0.12]}),
        fig6b=fig("fig6b", {"eb": [30.0, 117.0], "pc": [30.0, 115.0],
                            "fifo": [28.0, 100.0], "rl": [25.0, 73.0]}),
        elapsed_s=12.3,
    )


class TestComparisonRows:
    def test_all_quotes_covered(self):
        rows = comparison_rows(synthetic_bundle())
        assert len(rows) == len(PAPER_QUOTES)

    def test_ratios_computed_at_top_rate(self):
        rows = {label: (paper, ours) for label, paper, ours in comparison_rows(synthetic_bundle())}
        paper, ours = rows["SSD earning, EB / FIFO"]
        assert paper == 5.0
        assert ours == pytest.approx(150.0 / 30.0)


class TestMarkdown:
    def test_structure(self):
        text = render_markdown(synthetic_bundle())
        assert text.startswith("# EXPERIMENTS")
        for section in ("## Headline numbers", "## Claim checks", "## fig4a",
                        "## fig5b", "## fig6b", "## Table 1"):
            assert section in text
        assert "claims hold" in text

    def test_paper_values_quoted(self):
        text = render_markdown(synthetic_bundle())
        assert "0.401" in text  # the paper's EB delivery rate at rate 15

    def test_synthetic_paper_shape_passes_all_claims(self):
        text = render_markdown(synthetic_bundle())
        assert "[FAIL]" not in text


class TestEndToEnd:
    def test_tiny_run(self):
        bundle = run_everything(ScaleSpec(scale=0.01))
        text = render_markdown(bundle)
        assert "fig6a" in text
        assert bundle.elapsed_s > 0
