"""Figure harness smoke tests (tiny scale — structure, not statistics)."""

from __future__ import annotations

import pytest

from repro.experiments import figure4, figure5, figure6
from repro.experiments.common import (
    FIGURE4_R_VALUES,
    FIGURE56_RATES,
    FigureResult,
    ScaleSpec,
    paper_base_config,
)
from repro.workload.scenarios import Scenario

TINY = ScaleSpec(scale=0.01, seed=0)  # 72 simulated seconds


class TestScaleSpec:
    def test_duration(self):
        assert ScaleSpec(scale=0.5).duration_ms == 3_600_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleSpec(scale=0.0)
        with pytest.raises(ValueError):
            ScaleSpec(scale=1.5)

    def test_paper_base_config(self):
        cfg = paper_base_config(Scenario.SSD, ScaleSpec(scale=0.25, seed=9))
        assert cfg.scenario is Scenario.SSD
        assert cfg.seed == 9
        assert cfg.duration_ms == 1_800_000.0
        assert cfg.publishing_rate_per_min == 10.0


class TestFigure4:
    def test_panel_a_structure(self):
        result = figure4.run_panel_a(TINY, r_values=[0.0, 1.0])
        assert result.figure_id == "fig4a"
        assert set(result.series) == {"ebpc", "eb", "pc"}
        assert result.x_values == [0.0, 1.0]
        # r endpoints coincide with the reference strategies.
        assert result.series["ebpc"][1] == result.series["eb"][1]
        assert result.series["ebpc"][0] == result.series["pc"][0]

    def test_panel_b_metric_is_rate(self):
        result = figure4.run_panel_b(TINY, r_values=[0.5])
        for values in result.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_default_r_grid(self):
        assert FIGURE4_R_VALUES == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class TestFigure5:
    def test_both_panels_share_sweep(self):
        a, b = figure5.run_both_panels(TINY, rates=[2.0, 10.0])
        assert a.figure_id == "fig5a" and b.figure_id == "fig5b"
        assert set(a.series) == set(b.series) == {"eb", "pc", "fifo", "rl"}
        assert a.x_values == b.x_values == [2.0, 10.0]

    def test_traffic_counts_positive(self):
        _, b = figure5.run_both_panels(TINY, rates=[5.0])
        assert all(v[0] > 0 for v in b.series.values())

    def test_default_rates(self):
        assert FIGURE56_RATES == (1.0, 3.0, 6.0, 9.0, 12.0, 15.0)


class TestFigure6:
    def test_panels(self):
        a, b = figure6.run_both_panels(TINY, rates=[2.0])
        assert a.figure_id == "fig6a" and b.figure_id == "fig6b"
        for values in a.series.values():
            assert all(0.0 <= v <= 1.0 for v in values)


class TestFigureResult:
    def test_winner_at(self):
        result = FigureResult(
            figure_id="x", title="t", x_label="x", y_label="y",
            x_values=[1.0, 2.0],
            series={"a": [1.0, 5.0], "b": [2.0, 3.0]},
        )
        assert result.winner_at(1.0) == "b"
        assert result.winner_at(2.0) == "a"
