"""Claim-checker unit tests on synthetic figure data."""

from __future__ import annotations

from repro.experiments.claims import (
    ClaimResult,
    check_psd_claims,
    check_ssd_claims,
    format_report,
)
from repro.experiments.common import FigureResult


def fig(series, y="y", fid="f") -> FigureResult:
    n = len(next(iter(series.values())))
    return FigureResult(
        figure_id=fid, title="t", x_label="rate", y_label=y,
        x_values=[float(i + 1) for i in range(n)], series=series,
    )


def paper_like_ssd() -> tuple[FigureResult, FigureResult]:
    earning = fig({
        "eb": [20.0, 60.0, 120.0, 180.0],
        "pc": [20.0, 55.0, 100.0, 150.0],
        "fifo": [20.0, 50.0, 45.0, 36.0],
        "rl": [18.0, 40.0, 30.0, 18.0],
    })
    traffic = fig({
        "eb": [10.0, 30.0, 60.0, 123.0],
        "pc": [10.0, 30.0, 60.0, 120.0],
        "fifo": [10.0, 28.0, 55.0, 100.0],
        "rl": [10.0, 25.0, 50.0, 75.0],
    })
    return earning, traffic


def paper_like_psd() -> tuple[FigureResult, FigureResult]:
    rate = fig({
        "eb": [0.9, 0.7, 0.55, 0.401],
        "pc": [0.9, 0.7, 0.54, 0.39],
        "fifo": [0.88, 0.6, 0.35, 0.225],
        "rl": [0.88, 0.5, 0.2, 0.116],
    })
    traffic = fig({
        "eb": [10.0, 30.0, 60.0, 117.0],
        "pc": [10.0, 30.0, 60.0, 115.0],
        "fifo": [10.0, 28.0, 55.0, 100.0],
        "rl": [10.0, 25.0, 50.0, 73.0],
    })
    return rate, traffic


class TestSsdClaims:
    def test_paper_shape_passes(self):
        claims = check_ssd_claims(*paper_like_ssd())
        assert all(c.passed for c in claims), [c for c in claims if not c.passed]

    def test_detects_wrong_ordering(self):
        earning, traffic = paper_like_ssd()
        earning.series["rl"], earning.series["eb"] = (
            earning.series["eb"],
            earning.series["rl"],
        )
        claims = check_ssd_claims(earning, traffic)
        assert not all(c.passed for c in claims)

    def test_detects_traffic_blowup(self):
        earning, traffic = paper_like_ssd()
        traffic.series["eb"] = [v * 5 for v in traffic.series["eb"]]
        claims = {c.claim_id: c for c in check_ssd_claims(earning, traffic)}
        assert not claims["ssd-traffic-modest"].passed


class TestPsdClaims:
    def test_paper_shape_passes(self):
        claims = check_psd_claims(*paper_like_psd())
        assert all(c.passed for c in claims), [c for c in claims if not c.passed]

    def test_detects_nonmonotone_delivery(self):
        rate, traffic = paper_like_psd()
        rate.series["eb"] = [0.2, 0.9, 0.1, 0.9]
        claims = {c.claim_id: c for c in check_psd_claims(rate, traffic)}
        assert not claims["psd-eb-decreasing"].passed


class TestFormatting:
    def test_report_lists_all(self):
        claims = [
            ClaimResult("a", "first", True, "ok"),
            ClaimResult("b", "second", False, "bad"),
        ]
        text = format_report(claims)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 claims hold" in text
