"""Runtime regression tests for the two hand-enforced invariants the
analyzer audits statically (RL004/RL005 and the journal discipline).

The static rules catch violations at the AST; these tests pin the
*runtime* consequence the rules protect, so a drift that slips past the
analyzer (e.g. an action built dynamically) still fails the suite:

- every event the dynamics driver schedules must pickle by reference
  (checkpoint/restore serialises the live heap; closures would poison
  every snapshot taken while a scenario script is pending), and
- every mutating path of :class:`SubscriptionTable` must append to an
  armed journal, or shard replicas silently diverge from the
  coordinator (same-version check passes, different table contents).
"""

from __future__ import annotations

import functools
import pickle

import pytest

from repro.pubsub.shard_engine import _replay_ops
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics
from repro.workload.dynamics import (
    CascadeOutage,
    ChurnWave,
    FlashCrowd,
    RateBurst,
    ScenarioScript,
)
from repro.workload.scenarios import Scenario


def _config(script: ScenarioScript) -> SimulationConfig:
    return SimulationConfig(
        seed=11,
        scenario=Scenario.SSD,
        strategy="eb",
        publishing_rate_per_min=6.0,
        duration_ms=60_000.0,
        dynamics=script,
    )


FULL_SCRIPT = ScenarioScript((
    RateBurst(0.0, 30_000.0, 2.0),
    ChurnWave(at_ms=10_000.0, leave=2, join=2),
    FlashCrowd(at_ms=20_000.0, count=4),
    CascadeOutage(at_ms=30_000.0, origin="B1", spread_prob=0.5,
                  recover_after_ms=5_000.0),
))


class TestEventActionPicklability:
    def test_scheduled_actions_are_partials_of_named_callables(self):
        # The RL004 contract, checked on the live heap: no action may be
        # a lambda or a function nested inside another function.
        system = build_system(_config(FULL_SCRIPT))
        assert schedule_dynamics(system, _config(FULL_SCRIPT)) is not None
        actions = [ev.action for ev in system.sim._heap if not ev.cancelled]
        assert actions, "script scheduled no events"
        for action in actions:
            fn = action.func if isinstance(action, functools.partial) else action
            name = getattr(fn, "__qualname__", getattr(fn, "__name__", ""))
            assert "<lambda>" not in name, name
            assert "<locals>" not in name, name

    def test_scheduled_actions_pickle_and_restore(self):
        config = _config(FULL_SCRIPT)
        system = build_system(config)
        schedule_dynamics(system, config)
        for ev in system.sim._heap:
            if ev.cancelled:
                continue
            restored = pickle.loads(pickle.dumps(ev.action))
            assert callable(restored)

    def test_cascade_continuation_events_stay_picklable(self):
        # The cascade reschedules itself from *inside* an event action —
        # the follow-up waves must obey the same discipline as the
        # initial script events.
        config = _config(ScenarioScript((
            CascadeOutage(at_ms=1_000.0, origin="B1", spread_prob=1.0,
                          step_ms=500.0, max_depth=3,
                          recover_after_ms=60_000.0),
        )))
        system = build_system(config)
        schedule_dynamics(system, config)
        system.sim.run(until=1_600.0)  # first wave has fired and rescheduled
        pending = [ev.action for ev in system.sim._heap if not ev.cancelled]
        assert pending, "cascade scheduled no continuation"
        for action in pending:
            pickle.loads(pickle.dumps(action))


def _table_pair():
    config = _config(ScenarioScript())
    system = build_system(config)
    name = sorted(system.brokers)[0]
    return system, system.brokers[name].table


class TestJournalCompleteness:
    def test_every_mutation_kind_journals(self):
        system, table = _table_pair()
        table.journal = []
        victim = sorted(table._ids_of_subscriber)[0]
        rows = [table._rows_by_id[i] for i in table._ids_of_subscriber[victim]]
        table.uninstall(victim)
        assert table.journal == [("u", victim)]
        table.install(rows[0])
        assert table.journal[-1] == ("i", rows[0])
        if rows[1:]:
            table.install_many([(r, None) for r in rows[1:]])
            assert table.journal[2:] == [("i", r) for r in rows[1:]]
        assert len(table.journal) == 1 + len(rows)

    def test_replayed_replica_matches_coordinator_exactly(self):
        # The property the sharded engine relies on: replaying the
        # journal slice leaves a replica at the same version with the
        # same interned ids, so matching decisions are byte-identical.
        system, table = _table_pair()
        replica = pickle.loads(pickle.dumps(table))
        replica.journal = None
        table.journal = []

        victims = sorted(table._ids_of_subscriber)[:2]
        stashed = {
            v: [table._rows_by_id[i] for i in table._ids_of_subscriber[v]]
            for v in victims
        }
        for v in victims:
            table.uninstall(v)
        table.install_many([(r, None) for r in stashed[victims[0]]])

        _replay_ops(replica, table.journal)
        assert replica.version == table.version
        assert replica._id_of_key == table._id_of_key
        assert replica._sub_id_of == table._sub_id_of
        assert replica._hop_id_of == table._hop_id_of
        assert sorted(replica._free_ids) == sorted(table._free_ids)

    def test_stale_replica_version_detectable(self):
        # A mutation that bypassed the journal would leave versions
        # equal with different contents; the version counter is the
        # coordinator's staleness check, so it must advance per op.
        _, table = _table_pair()
        table.journal = []
        v0 = table.version
        victim = sorted(table._ids_of_subscriber)[0]
        table.uninstall(victim)
        assert table.version == v0 + 1
        assert len(table.journal) == 1


@pytest.mark.parametrize("method", ["install", "install_many", "uninstall"])
def test_mutators_exist(method):
    # Guard against a rename silently orphaning the journal tests above.
    from repro.pubsub.subscription import SubscriptionTable

    assert callable(getattr(SubscriptionTable, method))
