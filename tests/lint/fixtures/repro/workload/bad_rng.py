# RL002 fixture: global draws flagged, seeded constructors allowed.
import random

import numpy as np


def draws():
    a = random.random()  # RL002: positive (stdlib global RNG)
    b = np.random.rand(3)  # RL002: positive (numpy global RNG)
    c = random.randint(0, 9)  # repro-lint: ignore[RL002] -- fixture: deliberate
    return a, b, c


def streams(seed):
    gen = np.random.default_rng(seed)  # negative: seeded constructor
    ss = np.random.SeedSequence(entropy=seed)  # negative: seeded constructor
    return gen, ss
