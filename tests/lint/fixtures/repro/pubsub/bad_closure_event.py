# RL004 fixture: closure actions flagged, partials/bound methods allowed.
from functools import partial


def schedule_all(sim, broker, msg):
    sim.schedule(5.0, lambda: broker.process(msg))  # RL004: positive

    def helper():
        broker.process(msg)

    sim.schedule_at(9.0, helper)  # RL004: positive (nested def)
    sim.schedule(1.0, partial(broker.process, msg))  # negative: partial
    sim.schedule(2.0, broker.flush)  # negative: bound method
    sim.schedule(3.0, action=lambda: None)  # repro-lint: ignore[RL004] -- fixture
