# RL003 fixture: hash-order iteration flagged, sorted()/dict allowed.


def hash_order(table, names):
    pending = {"b1", "b2"}
    for name in pending:  # RL003: positive (set literal via local)
        table.install(name)
    snapshot = list(pending | {"b3"})  # RL003: positive (set materialised)
    return snapshot


def disciplined(table):
    pending = set(["b1", "b2"])
    for name in sorted(pending):  # negative: sorted
        table.install(name)
    counts = {"b1": 1}
    for name in counts:  # negative: dict (insertion order, default mode)
        table.install(name)
    if "b1" in pending:  # negative: membership, not iteration
        return True
    return False


def annotated(callbacks):
    # repro-lint: ignore[RL003] -- fixture: order provably cannot reach scheduling
    for cb in {c for c in callbacks}:
        cb()
