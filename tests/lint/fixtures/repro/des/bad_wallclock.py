# RL001 fixture: positives, a profiling-guarded negative, a suppression.
import time
from datetime import datetime
from time import perf_counter as pc

from repro.core import profiling


def decisions(sim):
    t = time.time()  # RL001: positive (aliased module)
    u = pc()  # RL001: positive (from-import alias)
    stamp = datetime.now()  # RL001: positive (datetime)
    return t, u, stamp


def guarded():
    prof = profiling.ACTIVE
    t0 = pc() if prof is not None else 0.0  # negative: profiling-guarded
    if prof is not None:
        prof.add("stage", pc() - t0)  # negative: feeds prof.add under guard
    return t0


def annotated():
    return time.monotonic()  # repro-lint: ignore[RL001] -- fixture: deliberate
