# RL006 fixture: order-sensitive float sums flagged, exact forms allowed.
import numpy as np

from repro.core.folds import fold_sum


def totals(prices, arr, flags):
    a = sum(prices)  # RL006: positive (builtin sum in metrics path)
    b = np.sum(arr)  # RL006: positive (pairwise reduction)
    c = arr.sum()  # RL006: positive (pairwise reduction)
    d = int(arr.sum())  # negative: int-wrapped exact tally
    e = (arr > 0.0).sum()  # negative: boolean counting
    f = fold_sum(prices)  # negative: the documented left fold
    g = sum(flags)  # repro-lint: ignore[RL006] -- fixture: exact integer tally
    return a, b, c, d, e, f, g
