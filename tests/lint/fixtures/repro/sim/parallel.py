# RL005 fixture (path mirrors the real fork-boundary module).


def _run_point(point):
    return point


class Pool:
    def go(self, pool, ctx, point):
        pool.submit(lambda: point)  # RL005: positive (lambda over pipe)
        self.on_done = lambda r: r  # RL005: positive (state must pickle)
        pool.submit(_run_point, point)  # negative: module-level function
        proc = ctx.Process(target=_run_point, args=(point,))  # negative
        # repro-lint: ignore[RL005] -- fixture: deliberate
        pool.submit(lambda: 1)
        return proc
