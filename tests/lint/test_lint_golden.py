"""Golden-report test: the fixture tree's JSON report is pinned
byte-for-byte (modulo parsing) so any behaviour drift in rules,
suppressions or reporters shows up as a reviewable diff to
``tests/lint/data/golden_report.json``.

Regenerate with::

    PYTHONPATH=src python -m repro lint --format json tests/lint/fixtures \
        > tests/lint/data/golden_report.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.report import format_report

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "data" / "golden_report.json"


def test_fixture_tree_matches_golden_report():
    report = lint_paths([FIXTURES])
    got = json.loads(format_report(report, "json"))
    want = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert got == want


def test_golden_exercises_every_rule():
    want = json.loads(GOLDEN.read_text(encoding="utf-8"))
    rules_hit = {f["rule"] for f in want["findings"]}
    assert rules_hit == {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006"}
    assert want["errors"] == []
    assert want["checked_files"] == 6
    # every fixture carries at least one deliberate suppression
    assert want["suppressed"] == 6


def test_fixture_paths_normalize_to_package_paths():
    want = json.loads(GOLDEN.read_text(encoding="utf-8"))
    for finding in want["findings"]:
        assert finding["path"].startswith("repro/"), finding
