"""Meta-test: the shipped ``repro`` package must lint clean.

This is the in-suite mirror of the CI gate — the analyzer's invariants
(no wall-clock in decisions, no global RNG, no hash-order iteration, no
closure events, fork-safe boundaries, left-fold float sums) hold over
the whole tree, with every deliberate exception carrying a suppression
comment or a DEFAULT_CONFIG scope.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import lint_paths
from repro.lint.report import format_report

PACKAGE_ROOT = Path(repro.__file__).parent


def test_shipped_tree_is_violation_free():
    report = lint_paths([PACKAGE_ROOT])
    assert report.checked_files > 50  # the walker actually found the tree
    assert report.ok, "\n" + format_report(report, "text")


def test_deliberate_exceptions_are_annotated_not_invisible():
    # The tree is clean *because* exceptions are explicit: the run must
    # see the suppression comments, not an empty rule set.
    report = lint_paths([PACKAGE_ROOT])
    assert report.suppressed > 0
