"""CLI contract: exit codes and output shape for ``repro lint`` both as
a standalone entry point and through the ``python -m repro`` dispatcher."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

FIXTURES = str(Path(__file__).parent / "fixtures")


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def f(x):\n    return x\n")
    assert lint_main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_findings_exit_one_with_file_line_rule(capsys):
    assert lint_main([FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "repro/des/bad_wallclock.py:10:" in out
    assert "RL001" in out


def test_json_format(capsys):
    assert lint_main(["--format", "json", FIXTURES]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["checked_files"] == 6


def test_rules_filter(capsys):
    assert lint_main(["--rules", "RL002", FIXTURES]) == 1
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if ": RL" in l]
    assert lines and all(": RL002" in l for l in lines)


def test_unknown_rule_exits_two(capsys):
    assert lint_main(["--rules", "RL999", FIXTURES]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_syntax_error_exits_two(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    assert lint_main([str(tmp_path)]) == 2
    assert "syntax error" in capsys.readouterr().out


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule_id in out


def test_repro_dispatcher_routes_lint(capsys):
    assert repro_main(["lint", FIXTURES]) == 1
    out = capsys.readouterr().out
    assert "finding(s)" in out


def test_github_format_annotations(capsys):
    assert lint_main(["--format", "github", FIXTURES]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
