"""Per-rule unit tests: positive, negative and suppressed snippets.

Each case feeds a synthetic module to :func:`lint_source` under a path
chosen to hit (or miss) the rule's default scope, and asserts the exact
rule ids and lines that fire — the analyzer's behaviour is part of the
repo's correctness contract, so it is pinned at the same granularity as
the engine differentials.
"""

from __future__ import annotations

import textwrap

from repro.lint import DEFAULT_CONFIG, all_rules
from repro.lint.engine import lint_source


def run(source: str, path: str = "repro/pubsub/module.py", config=DEFAULT_CONFIG):
    return lint_source(textwrap.dedent(source), path, config)


def fired(source: str, path: str = "repro/pubsub/module.py"):
    findings, _ = run(source, path)
    return [(f.rule, f.line) for f in findings]


def test_registry_ships_all_six_rules():
    assert [r.rule_id for r in all_rules()] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
    ]


# --------------------------------------------------------------------- #
# RL001 no-wallclock
# --------------------------------------------------------------------- #
class TestWallclock:
    def test_positive_direct_and_aliased(self):
        src = """
        import time
        from time import perf_counter as pc

        def f():
            return time.time() + pc()
        """
        assert fired(src) == [("RL001", 6), ("RL001", 6)]

    def test_positive_datetime(self):
        src = """
        from datetime import datetime

        def f():
            return datetime.now()
        """
        assert fired(src) == [("RL001", 5)]

    def test_negative_profiling_guarded(self):
        src = """
        from time import perf_counter
        from repro.core import profiling

        def f():
            prof = profiling.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            if prof is not None:
                prof.add("stage", perf_counter() - t0)
            return t0
        """
        assert fired(src) == []

    def test_negative_sim_clock(self):
        src = """
        def f(sim):
            return sim.now
        """
        assert fired(src) == []

    def test_suppressed(self):
        src = """
        import time

        def f():
            return time.time()  # repro-lint: ignore[RL001] -- footer
        """
        findings, silenced = run(src)
        assert findings == [] and silenced == 1

    def test_config_exempts_profiling_module(self):
        src = """
        from time import perf_counter

        def f():
            return perf_counter()
        """
        assert fired(src, path="repro/core/profiling.py") == []
        assert fired(src, path="repro/core/other.py") == [("RL001", 5)]


# --------------------------------------------------------------------- #
# RL002 no-global-rng
# --------------------------------------------------------------------- #
class TestGlobalRng:
    def test_positive_stdlib_and_numpy(self):
        src = """
        import random
        import numpy as np

        def f():
            return random.random() + np.random.rand()
        """
        assert fired(src) == [("RL002", 6), ("RL002", 6)]

    def test_positive_from_import(self):
        src = """
        from random import randint

        def f():
            return randint(0, 9)
        """
        assert fired(src) == [("RL002", 5)]

    def test_negative_seeded_constructors(self):
        src = """
        import numpy as np

        def f(seed):
            ss = np.random.SeedSequence(entropy=seed)
            return np.random.default_rng(ss)
        """
        assert fired(src) == []

    def test_negative_named_stream_draw(self):
        src = """
        def f(streams):
            return streams.get("noise").normal()
        """
        assert fired(src) == []

    def test_config_exempts_rng_module(self):
        src = """
        import numpy as np

        def f():
            return np.random.rand()
        """
        assert fired(src, path="repro/des/rng.py") == []

    def test_suppressed(self):
        src = """
        import random

        def f():
            return random.random()  # repro-lint: ignore[RL002] -- fixture
        """
        findings, silenced = run(src)
        assert findings == [] and silenced == 1


# --------------------------------------------------------------------- #
# RL003 ordered-iteration
# --------------------------------------------------------------------- #
class TestOrderedIteration:
    def test_positive_local_set(self):
        src = """
        def f(table):
            pending = {"a", "b"}
            for name in pending:
                table.install(name)
        """
        assert fired(src) == [("RL003", 4)]

    def test_positive_set_call_and_materialisers(self):
        src = """
        def f(names):
            s = set(names)
            return list(s), tuple(s)
        """
        assert fired(src) == [("RL003", 4), ("RL003", 4)]

    def test_positive_self_attribute_set(self):
        src = """
        class Table:
            def __init__(self):
                self._dirty = set()

            def flush(self):
                return [x for x in self._dirty]
        """
        assert fired(src) == [("RL003", 7)]

    def test_positive_set_binop(self):
        src = """
        def f(a):
            for x in a | {"k"}:
                pass
        """
        assert fired(src) == [("RL003", 3)]

    def test_negative_sorted_and_membership(self):
        src = """
        def f(table):
            pending = {"a", "b"}
            for name in sorted(pending):
                table.install(name)
            return "a" in pending
        """
        assert fired(src) == []

    def test_negative_dicts_by_default(self):
        src = """
        def f(d=None):
            counts = {"a": 1}
            for k in counts:
                pass
            for k, v in counts.items():
                pass
        """
        assert fired(src) == []

    def test_dict_mode_option_flags_dicts(self):
        from repro.lint import LintConfig, RuleScope

        config = LintConfig(scopes=(
            RuleScope(
                pattern="repro/pubsub/*",
                options={"RL003": {"dicts": True}},
            ),
        ))
        src = """
        def f():
            counts = {"a": 1}
            for k in counts:
                pass
        """
        findings, _ = run(src, config=config)
        assert [(f.rule, f.line) for f in findings] == [("RL003", 4)]

    def test_poisoned_name_stays_silent(self):
        src = """
        def f(rows):
            items = {"a"}
            items = rows  # reassigned to unknown: kind poisoned
            for x in items:
                pass
        """
        assert fired(src) == []

    def test_out_of_scope_path_not_checked(self):
        src = """
        def f():
            for x in {"a", "b"}:
                pass
        """
        assert fired(src, path="repro/experiments/report.py") == []

    def test_suppressed(self):
        src = """
        def f():
            # repro-lint: ignore[RL003] -- order cannot reach scheduling
            for x in {"a", "b"}:
                pass
        """
        findings, silenced = run(src)
        assert findings == [] and silenced == 1


# --------------------------------------------------------------------- #
# RL004 no-closure-events
# --------------------------------------------------------------------- #
class TestClosureEvents:
    def test_positive_lambda_and_nested_def(self):
        src = """
        def f(sim, broker, msg):
            sim.schedule(5.0, lambda: broker.process(msg))

            def helper():
                broker.process(msg)

            sim.schedule_at(9.0, helper)
        """
        assert fired(src) == [("RL004", 3), ("RL004", 8)]

    def test_positive_action_keyword(self):
        src = """
        def f(sim):
            sim.schedule(1.0, action=lambda: None)
        """
        assert fired(src) == [("RL004", 3)]

    def test_negative_partial_bound_and_module_level(self):
        src = """
        from functools import partial

        def tick():
            pass

        def f(sim, broker, msg):
            sim.schedule(1.0, partial(broker.process, msg))
            sim.schedule(2.0, broker.flush)
            sim.schedule(3.0, tick)  # module-level: pickles by reference
        """
        assert fired(src) == []

    def test_suppressed(self):
        src = """
        def f(sim):
            sim.schedule(1.0, lambda: None)  # repro-lint: ignore[RL004] -- test-only sim
        """
        findings, silenced = run(src)
        assert findings == [] and silenced == 1


# --------------------------------------------------------------------- #
# RL005 fork-safety
# --------------------------------------------------------------------- #
class TestForkSafety:
    PATH = "repro/sim/parallel.py"

    def test_positive_lambda_submit_and_state(self):
        src = """
        class Pool:
            def go(self, pool, point):
                pool.submit(lambda: point)
                self.on_done = lambda r: r
        """
        assert fired(src, path=self.PATH) == [("RL005", 4), ("RL005", 5)]

    def test_positive_process_target_keyword(self):
        src = """
        def go(ctx, point):
            def local():
                return point
            return ctx.Process(target=local)
        """
        assert fired(src, path=self.PATH) == [("RL005", 5)]

    def test_negative_module_level_function(self):
        src = """
        def _run(point):
            return point

        def go(pool, point):
            pool.submit(_run, point)
        """
        assert fired(src, path=self.PATH) == []

    def test_out_of_scope_path_not_checked(self):
        src = """
        def go(pool, point):
            pool.submit(lambda: point)
        """
        assert fired(src, path="repro/sim/sweep.py") == []

    def test_suppressed(self):
        src = """
        def go(pool, point):
            pool.submit(lambda: point)  # repro-lint: ignore[RL005] -- inline backend only
        """
        findings, silenced = run(src, path=self.PATH)
        assert findings == [] and silenced == 1


# --------------------------------------------------------------------- #
# RL006 float-fold
# --------------------------------------------------------------------- #
class TestFloatFold:
    PATH = "repro/analysis/module.py"

    def test_positive_builtin_np_and_method(self):
        src = """
        import numpy as np

        def f(prices, arr):
            return sum(prices), np.sum(arr), arr.sum()
        """
        assert fired(src, path=self.PATH) == [
            ("RL006", 5), ("RL006", 5), ("RL006", 5),
        ]

    def test_negative_exact_forms(self):
        src = """
        from repro.core.folds import fold_sum

        def f(prices, arr):
            a = int(arr.sum())  # exact integer tally
            b = (arr > 0.0).sum()  # boolean counting
            c = fold_sum(prices)  # the documented left fold
            return a, b, c
        """
        assert fired(src, path=self.PATH) == []

    def test_out_of_scope_path_not_checked(self):
        src = """
        def f(xs):
            return sum(xs)
        """
        assert fired(src, path="repro/core/queueing.py") == []

    def test_suppressed(self):
        src = """
        def f(counts):
            return sum(counts)  # repro-lint: ignore[RL006] -- exact integer tally
        """
        findings, silenced = run(src, path=self.PATH)
        assert findings == [] and silenced == 1
