"""Engine plumbing: path normalization, scoping, suppressions,
reporters and the directory walker."""

from __future__ import annotations

import json
import textwrap

from repro.lint import DEFAULT_CONFIG, LintConfig, RuleScope
from repro.lint.config import normalize_path, path_matches
from repro.lint.diagnostics import Finding
from repro.lint.engine import LintReport, iter_python_files, lint_paths, lint_source
from repro.lint.report import FORMATS, format_report
from repro.lint.suppress import ALL_RULES, is_suppressed, suppressions


class TestNormalizePath:
    def test_slices_from_repro_segment(self):
        assert normalize_path("/root/repo/src/repro/des/event.py") == "repro/des/event.py"
        assert normalize_path("src/repro/core/clock.py") == "repro/core/clock.py"

    def test_fixture_trees_mirror_package_paths(self):
        got = normalize_path("tests/lint/fixtures/repro/sim/parallel.py")
        assert got == "repro/sim/parallel.py"

    def test_non_package_path_passes_through(self):
        assert normalize_path("scratch/demo.py") == "scratch/demo.py"

    def test_windows_separators(self):
        assert normalize_path("src\\repro\\des\\rng.py") == "repro/des/rng.py"

    def test_bare_repro_file_not_treated_as_root(self):
        # A file literally named repro (no children after the segment)
        # cannot anchor a package-relative path.
        assert normalize_path("repro") == "repro"


class TestPathMatches:
    def test_exact_and_glob(self):
        assert path_matches("repro/des/rng.py", ("repro/des/rng.py",))
        assert path_matches("repro/des/rng.py", ("repro/des/*",))
        assert not path_matches("repro/core/clock.py", ("repro/des/*",))

    def test_trailing_star_crosses_directories(self):
        assert path_matches("repro/des/sub/deep.py", ("repro/des/*",))


class TestConfig:
    def test_scope_disable_and_enable(self):
        from repro.lint.registry import RULES

        rule = RULES["RL003"]
        config = LintConfig(scopes=(
            RuleScope(pattern="repro/pubsub/hot.py", disable=frozenset({"RL003"})),
            RuleScope(pattern="repro/experiments/*", enable=frozenset({"RL003"})),
        ))
        assert not config.rule_applies(rule, "repro/pubsub/hot.py")
        assert config.rule_applies(rule, "repro/pubsub/other.py")
        # enable widens beyond the rule's default paths
        assert config.rule_applies(rule, "repro/experiments/report.py")
        assert not DEFAULT_CONFIG.rule_applies(rule, "repro/experiments/report.py")

    def test_later_scope_wins(self):
        from repro.lint.registry import RULES

        rule = RULES["RL001"]
        config = LintConfig(scopes=(
            RuleScope(pattern="repro/core/*", disable=frozenset({"RL001"})),
            RuleScope(pattern="repro/core/clock.py", enable=frozenset({"RL001"})),
        ))
        assert not config.rule_applies(rule, "repro/core/other.py")
        assert config.rule_applies(rule, "repro/core/clock.py")

    def test_select_restricts(self):
        from repro.lint.registry import RULES

        config = DEFAULT_CONFIG.with_select(frozenset({"RL002"}))
        assert config.rule_applies(RULES["RL002"], "repro/workload/traffic.py")
        assert not config.rule_applies(RULES["RL001"], "repro/workload/traffic.py")

    def test_options_merge_in_scope_order(self):
        config = LintConfig(scopes=(
            RuleScope(pattern="repro/pubsub/*", options={"RL003": {"dicts": False}}),
            RuleScope(pattern="repro/pubsub/table.py", options={"RL003": {"dicts": True}}),
        ))
        assert config.options_for("RL003", "repro/pubsub/table.py") == {"dicts": True}
        assert config.options_for("RL003", "repro/pubsub/other.py") == {"dicts": False}
        assert config.options_for("RL003", "repro/des/event.py") == {}


class TestSuppressions:
    def test_trailing_comment_covers_own_line(self):
        table = suppressions("x = 1  # repro-lint: ignore[RL001]\ny = 2\n")
        assert is_suppressed(table, 1, "RL001")
        assert not is_suppressed(table, 1, "RL002")
        assert not is_suppressed(table, 2, "RL001")

    def test_own_line_comment_covers_next_line(self):
        src = "# repro-lint: ignore[RL003] -- reason\nfor x in s:\n    pass\n"
        table = suppressions(src)
        assert is_suppressed(table, 1, "RL003")
        assert is_suppressed(table, 2, "RL003")
        assert not is_suppressed(table, 3, "RL003")

    def test_bare_ignore_silences_all_rules(self):
        table = suppressions("x = 1  # repro-lint: ignore\n")
        assert table[1] == frozenset({ALL_RULES})
        assert is_suppressed(table, 1, "RL001")
        assert is_suppressed(table, 1, "RL006")

    def test_multiple_ids(self):
        table = suppressions("x = 1  # repro-lint: ignore[RL001, RL002]\n")
        assert is_suppressed(table, 1, "RL001")
        assert is_suppressed(table, 1, "RL002")
        assert not is_suppressed(table, 1, "RL003")

    def test_marker_inside_string_never_suppresses(self):
        table = suppressions('x = "# repro-lint: ignore[RL001]"\n')
        assert table == {}

    def test_suppressed_counted_not_reported(self):
        src = textwrap.dedent("""
        import time

        def f():
            return time.time()  # repro-lint: ignore[RL001]
        """)
        findings, silenced = lint_source(src, "repro/des/clock.py")
        assert findings == [] and silenced == 1

    def test_wrong_id_does_not_suppress(self):
        src = textwrap.dedent("""
        import time

        def f():
            return time.time()  # repro-lint: ignore[RL002]
        """)
        findings, _ = lint_source(src, "repro/des/clock.py")
        assert [f.rule for f in findings] == ["RL001"]


def _report() -> LintReport:
    report = LintReport()
    report.checked_files = 2
    report.suppressed = 1
    report.findings = [
        Finding(path="repro/des/a.py", line=3, col=4, rule="RL001",
                message="wall-clock read"),
    ]
    return report


class TestReporters:
    def test_text(self):
        out = format_report(_report(), "text")
        assert "repro/des/a.py:3:4: RL001" in out
        assert out.splitlines()[-1] == "1 finding(s), 1 suppressed, 2 file(s) checked"

    def test_json_round_trips(self):
        payload = json.loads(format_report(_report(), "json"))
        assert payload["version"] == 1
        assert payload["checked_files"] == 2
        assert payload["findings"][0]["rule"] == "RL001"
        assert payload["findings"][0]["line"] == 3

    def test_github_annotations(self):
        out = format_report(_report(), "github")
        assert out.startswith("::error file=repro/des/a.py,line=3,col=4")
        assert "RL001" in out

    def test_formats_tuple_is_the_cli_contract(self):
        assert FORMATS == ("text", "json", "github")


class TestWalker:
    def test_sorted_and_deduplicated(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "b.py").write_text("x = 1\n")
        (pkg / "a.py").write_text("y = 2\n")
        (pkg / "notes.txt").write_text("not python\n")
        files = iter_python_files([tmp_path, pkg / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([tmp_path])
        assert not report.ok
        assert report.checked_files == 0
        assert len(report.errors) == 1 and "syntax error" in report.errors[0]

    def test_findings_sorted_across_files(self, tmp_path):
        tree = tmp_path / "repro" / "des"
        tree.mkdir(parents=True)
        (tree / "zz.py").write_text("import time\nt = time.time()\n")
        (tree / "aa.py").write_text("import time\nt = time.time()\n")
        report = lint_paths([tmp_path])
        assert [f.path for f in report.findings] == [
            "repro/des/aa.py", "repro/des/zz.py",
        ]
