"""Bench regression guard: scenario-key mismatches degrade to notes.

Satellite regression for the CI tooling: a baseline or current file
containing points from a new scenario family (different record shape,
missing ``strategy``/``subscriptions``/``wall_s``) must be *reported*,
never crash the guard with a ``KeyError`` — the guard's job is wall-time
regressions on matching points only.

The checker is a script, not a package module, so it is exercised the
way CI runs it: as a subprocess.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

CHECKER = Path(__file__).parent.parent / "benchmarks" / "check_bench_regression.py"

META = {"mode": "smoke", "minutes": 0.5, "rate_per_min_per_publisher": 20.0, "seed": 1}


def _point(strategy="eb", subs=1008, wall=0.1, **extra):
    return {
        "strategy": strategy, "subscriptions": subs, "wall_s": wall,
        "scenario": "ssd", "matcher_backend": "vector",
        "metrics_backend": "ledger", **extra,
    }


def run_checker(tmp_path: Path, baseline: dict, current: dict):
    (tmp_path / "base.json").write_text(json.dumps(baseline))
    (tmp_path / "cur.json").write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(CHECKER),
         "--baseline", str(tmp_path / "base.json"),
         "--current", str(tmp_path / "cur.json")],
        capture_output=True, text=True,
    )


class TestGuard:
    def test_matching_points_pass(self, tmp_path):
        base = {"meta": META, "points": [_point(wall=0.1)]}
        cur = {"meta": META, "points": [_point(wall=0.11)]}
        proc = run_checker(tmp_path, base, cur)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "within" in proc.stdout

    def test_regression_fails(self, tmp_path):
        base = {"meta": META, "points": [_point(wall=0.1)]}
        cur = {"meta": META, "points": [_point(wall=1.0)]}
        proc = run_checker(tmp_path, base, cur)
        assert proc.returncode == 1
        assert "REGRESSED" in proc.stdout

    def test_new_scenario_points_are_notes_not_keyerrors(self, tmp_path):
        """A current file containing scale-family records (no strategy /
        subscriptions / wall_s shape) must not crash the guard."""
        base = {"meta": META, "points": [_point(wall=0.1)]}
        cur = {
            "meta": META,
            "points": [
                _point(wall=0.1),
                {"scenario": "scale-smoke", "peak_rss_kb": 123456},  # no key fields
                _point(strategy="eb", subs=8000, scenario="scale-smoke"),  # new key
            ],
        }
        proc = run_checker(tmp_path, base, cur)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "KeyError" not in proc.stderr
        assert "not guarded" in proc.stdout
        assert "new scenario" in proc.stdout

    def test_malformed_baseline_points_are_skipped(self, tmp_path):
        base = {
            "meta": META,
            "points": [_point(wall=0.1), {"scenario": "scale"}, "not-a-dict"],
        }
        cur = {"meta": META, "points": [_point(wall=0.1)]}
        proc = run_checker(tmp_path, base, cur)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "not guarded" in proc.stdout

    def test_no_comparable_points_is_an_error(self, tmp_path):
        base = {"meta": META, "points": [{"scenario": "scale"}]}
        cur = {"meta": META, "points": [_point()]}
        proc = run_checker(tmp_path, base, cur)
        assert proc.returncode == 2
        assert "no comparable points" in proc.stdout
