"""Trace recorder tests."""

from __future__ import annotations

from repro.des.trace import TraceRecorder


class TestRecording:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", "B1", msg=1)
        tr.record(2.0, "receive", "B2", msg=1)
        assert len(tr) == 2
        records = list(tr)
        assert records[0].kind == "send"
        assert records[1].detail == {"msg": 1}

    def test_disabled_recorder_is_noop(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "send", "B1")
        assert len(tr) == 0

    def test_capacity_bound(self):
        tr = TraceRecorder(capacity=2)
        for i in range(5):
            tr.record(float(i), "k", "n")
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_filters(self):
        tr = TraceRecorder()
        tr.record(1.0, "send", "B1")
        tr.record(2.0, "send", "B2")
        tr.record(3.0, "prune", "B1")
        assert len(tr.of_kind("send")) == 2
        assert len(tr.at_node("B1")) == 2
        assert tr.kind_counts() == {"send": 2, "prune": 1}

    def test_clear(self):
        tr = TraceRecorder(capacity=1)
        tr.record(1.0, "a", "n")
        tr.record(2.0, "b", "n")
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped == 0
