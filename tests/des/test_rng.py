"""RNG stream registry tests."""

from __future__ import annotations

import numpy as np

from repro.des.rng import RngStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(1).get("workload").random(10)
        b = RngStreams(1).get("workload").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("workload").random(10)
        b = RngStreams(2).get("workload").random(10)
        assert not np.array_equal(a, b)

    def test_named_streams_independent_of_creation_order(self):
        s1 = RngStreams(5)
        _ = s1.get("a").random(100)  # consume a first
        x1 = s1.get("b").random(10)

        s2 = RngStreams(5)
        x2 = s2.get("b").random(10)  # b created without touching a
        assert np.array_equal(x1, x2)

    def test_distinct_names_distinct_streams(self):
        s = RngStreams(3)
        assert not np.array_equal(s.get("x").random(10), s.get("y").random(10))

    def test_get_returns_same_object(self):
        s = RngStreams(0)
        assert s.get("a") is s.get("a")


class TestRegistry:
    def test_contains_and_names(self):
        s = RngStreams(0)
        assert "a" not in s
        s.get("a")
        s.get("b")
        assert "a" in s
        assert s.names() == ["a", "b"]

    def test_seed_property(self):
        assert RngStreams(99).seed == 99


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngStreams(1).fork(3).get("w").random(5)
        b = RngStreams(1).fork(3).get("w").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent_and_siblings(self):
        base = RngStreams(1)
        assert not np.array_equal(
            base.fork(1).get("w").random(5), base.fork(2).get("w").random(5)
        )
        assert not np.array_equal(
            base.get("w").random(5), base.fork(1).get("w").random(5)
        )
