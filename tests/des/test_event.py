"""Event record and handle tests."""

from __future__ import annotations

from repro.des.event import Event, EventHandle


def ev(time=1.0, priority=0, seq=0, label="") -> Event:
    return Event(time=time, priority=priority, seq=seq, action=lambda: None, label=label)


class TestOrdering:
    def test_time_dominates(self):
        assert ev(time=1.0, priority=9, seq=9) < ev(time=2.0, priority=0, seq=0)

    def test_priority_breaks_time_ties(self):
        assert ev(time=1.0, priority=0, seq=9) < ev(time=1.0, priority=1, seq=0)

    def test_seq_breaks_remaining_ties(self):
        assert ev(time=1.0, priority=0, seq=0) < ev(time=1.0, priority=0, seq=1)

    def test_action_not_compared(self):
        # Identical keys with different callables must not raise.
        a = Event(time=1.0, priority=0, seq=0, action=lambda: 1)
        b = Event(time=1.0, priority=0, seq=0, action=lambda: 2)
        assert not (a < b) and not (b < a)


class TestHandle:
    def test_exposes_metadata(self):
        handle = EventHandle(ev(time=5.0, label="send"))
        assert handle.time == 5.0
        assert handle.label == "send"
        assert not handle.cancelled

    def test_cancel_once(self):
        handle = EventHandle(ev())
        assert handle.cancel()
        assert handle.cancelled
        assert not handle.cancel()
