"""Event record and handle tests."""

from __future__ import annotations

from repro.des.event import Event, EventHandle


def ev(time=1.0, priority=0, seq=0, label="") -> Event:
    return Event(time=time, priority=priority, seq=seq, action=lambda: None, label=label)


class TestOrdering:
    def test_time_dominates(self):
        assert ev(time=1.0, priority=9, seq=9) < ev(time=2.0, priority=0, seq=0)

    def test_priority_breaks_time_ties(self):
        assert ev(time=1.0, priority=0, seq=9) < ev(time=1.0, priority=1, seq=0)

    def test_seq_breaks_remaining_ties(self):
        assert ev(time=1.0, priority=0, seq=0) < ev(time=1.0, priority=0, seq=1)

    def test_action_not_compared(self):
        # Identical keys with different callables must not raise.
        a = Event(time=1.0, priority=0, seq=0, action=lambda: 1)
        b = Event(time=1.0, priority=0, seq=0, action=lambda: 2)
        assert not (a < b) and not (b < a)


class TestHandle:
    def test_exposes_metadata(self):
        handle = EventHandle(ev(time=5.0, label="send"))
        assert handle.time == 5.0
        assert handle.label == "send"
        assert not handle.cancelled

    def test_cancel_once(self):
        handle = EventHandle(ev())
        assert handle.cancel()
        assert handle.cancelled
        assert not handle.cancel()

    def test_cancel_after_execution_returns_false(self):
        """Satellite regression: a stale handle must not claim it prevented
        an action that already ran, and must leave the event untouched."""
        event = ev()
        event.done = True  # what the kernel sets after running the action
        handle = EventHandle(event)
        assert handle.done
        assert handle.cancel() is False
        assert not event.cancelled  # event left untouched
        assert not handle.cancelled

    def test_cancel_after_execution_keeps_live_counter_exact(self):
        """End-to-end through the kernel: cancelling an executed event
        neither lies about it nor corrupts the live-event accounting."""
        from repro.des.simulator import Simulator

        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(True))
        sim.run()
        assert ran == [True]
        assert sim.live_events == 0
        assert handle.cancel() is False
        assert sim.live_events == 0  # no double decrement
        assert not handle.cancelled
