"""DES kernel tests: ordering, determinism, cancellation, run semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        log = []
        sim.schedule(30.0, lambda: log.append("c"))
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(20.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, sim):
        log = []
        for name in "abcde":
            sim.schedule(5.0, lambda n=name: log.append(n))
        sim.run()
        assert log == list("abcde")

    def test_priority_breaks_ties(self, sim):
        log = []
        sim.schedule(5.0, lambda: log.append("low"), priority=1)
        sim.schedule(5.0, lambda: log.append("high"), priority=0)
        sim.run()
        assert log == ["high", "low"]

    def test_clock_advances(self, sim):
        times = []
        sim.schedule(10.0, lambda: times.append(sim.now))
        sim.schedule(25.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [10.0, 25.0]
        assert sim.now == 25.0

    def test_schedule_at_absolute(self, sim):
        hits = []
        sim.schedule_at(42.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [42.0]

    def test_nested_scheduling(self, sim):
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(5.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert log == [("outer", 10.0), ("inner", 15.0)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        log = []
        handle = sim.schedule(10.0, lambda: log.append("x"))
        sim.schedule(5.0, lambda: log.append("keep"))
        assert handle.cancel()
        sim.run()
        assert log == ["keep"]

    def test_double_cancel_returns_false(self, sim):
        handle = sim.schedule(10.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()
        assert handle.cancelled

    def test_cancel_from_event(self, sim):
        log = []
        later = sim.schedule(20.0, lambda: log.append("later"))
        sim.schedule(10.0, lambda: later.cancel())
        sim.run()
        assert log == []

    def test_executed_count_excludes_cancelled(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        sim.run()
        assert sim.executed_events == 1


class TestRunSemantics:
    def test_until_is_inclusive(self, sim):
        log = []
        sim.schedule(10.0, lambda: log.append("at"))
        sim.schedule(10.0001, lambda: log.append("after"))
        sim.run(until=10.0)
        assert log == ["at"]
        assert sim.pending_events == 1

    def test_until_advances_clock_when_drained(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_run_returns_executed_count(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run() == 5

    def test_max_events(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.now == 3.0

    def test_resume_after_until(self, sim):
        log = []
        sim.schedule(10.0, lambda: log.append(1))
        sim.schedule(20.0, lambda: log.append(2))
        sim.run(until=15.0)
        assert log == [1]
        sim.run()
        assert log == [1, 2]

    def test_step(self, sim):
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        assert sim.step()
        assert log == ["a"]
        assert not sim.step()

    def test_not_reentrant(self, sim):
        def bad():
            sim.run()

        sim.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_until_advances_clock_when_only_cancelled_remain(self, sim):
        h = sim.schedule(50.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        h.cancel()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_live_events_counter(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        h2 = sim.schedule(2.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        assert sim.live_events == 3
        h1.cancel()
        assert sim.live_events == 2
        sim.step()  # runs the h2 event, skipping the cancelled h1
        assert sim.live_events == 1
        h2.cancel()  # already executed: must not decrement again
        assert sim.live_events == 1
        sim.run()
        assert sim.live_events == 0

    @given(delays=st.lists(st.floats(0, 1000), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_property_execution_order_sorted(self, delays):
        sim = Simulator()
        executed = []
        for d in delays:
            sim.schedule(d, lambda d=d: executed.append(sim.now))
        sim.run()
        assert executed == sorted(executed)
        assert len(executed) == len(delays)

    @given(delays=st.lists(st.floats(0, 100), min_size=1, max_size=50), seed=st.integers(0, 10))
    @settings(max_examples=50)
    def test_property_deterministic(self, delays, seed):
        def trace():
            sim = Simulator()
            log = []
            for i, d in enumerate(delays):
                sim.schedule(d, lambda i=i: log.append((sim.now, i)))
            sim.run()
            return log

        assert trace() == trace()
