"""Capacity analysis tests."""

from __future__ import annotations

import math

import pytest

from repro.analysis.capacity import (
    bottleneck,
    saturation_rate_per_publisher,
    utilisation_report,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_workload
from repro.workload.scenarios import Scenario

CFG = SimulationConfig(
    seed=4,
    scenario=Scenario.PSD,
    strategy="eb",
    publishing_rate_per_min=10.0,
    duration_ms=120_000.0,
)


@pytest.fixture(scope="module")
def finished_system():
    system = build_system(CFG)
    schedule_workload(system, CFG)
    system.sim.run(until=CFG.horizon_ms)
    return system


class TestUtilisationReport:
    def test_sorted_and_bounded(self, finished_system):
        report = utilisation_report(finished_system, CFG.horizon_ms)
        assert report, "a loaded run must use some links"
        utils = [r.utilisation for r in report]
        assert utils == sorted(utils, reverse=True)
        assert all(0.0 <= u <= 1.0 for u in utils)

    def test_idle_links_excluded(self, finished_system):
        report = utilisation_report(finished_system, CFG.horizon_ms)
        assert all(r.transmissions > 0 for r in report)
        # The paper's mesh has 128 directions; a 2-minute run uses a subset.
        assert len(report) <= 128

    def test_bottleneck_is_first(self, finished_system):
        top = bottleneck(finished_system, CFG.horizon_ms)
        report = utilisation_report(finished_system, CFG.horizon_ms)
        assert top == report[0]

    def test_invalid_elapsed(self, finished_system):
        with pytest.raises(ValueError):
            utilisation_report(finished_system, 0.0)

    def test_untouched_system_has_empty_report(self):
        system = build_system(CFG)
        assert utilisation_report(system, 1000.0) == []
        assert bottleneck(system, 1000.0) is None


class TestSaturationEstimate:
    def test_predicts_figures_knee_region(self, finished_system):
        """The analytic knee must land inside Figures 5/6's sweep range —
        the paper's curves bend somewhere between rates 3 and 15."""
        rate = saturation_rate_per_publisher(finished_system)
        assert 2.0 <= rate <= 20.0

    def test_no_subscribers_never_saturates(self):
        from repro.core.strategies import EbStrategy
        from repro.des.rng import RngStreams
        from repro.des.simulator import Simulator
        from repro.network.topology import build_layered_mesh
        from repro.pubsub.system import PubSubSystem
        import numpy as np

        topo = build_layered_mesh(np.random.default_rng(0))
        empty = PubSubSystem(topo, EbStrategy(), Simulator(), RngStreams(0))
        assert math.isinf(saturation_rate_per_publisher(empty))

    def test_invalid_selectivity(self, finished_system):
        with pytest.raises(ValueError):
            saturation_rate_per_publisher(finished_system, selectivity=0.0)

    def test_higher_selectivity_saturates_earlier(self, finished_system):
        sparse = saturation_rate_per_publisher(finished_system, selectivity=0.1)
        dense = saturation_rate_per_publisher(finished_system, selectivity=0.9)
        assert dense < sparse
