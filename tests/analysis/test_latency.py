"""Latency analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    LatencyStats,
    _quantile,
    deadline_margins,
    latency_by_subscriber,
    latency_stats,
)
from repro.pubsub.client import SubscriberHandle


def handle(name: str, latencies: list[float], valid: bool = True) -> SubscriberHandle:
    h = SubscriberHandle(name)
    for i, lat in enumerate(latencies):
        h.record(msg_id=i, time=lat, latency_ms=lat, valid=valid)
    return h


class TestQuantile:
    def test_exact_positions(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _quantile(xs, 0.0) == 1.0
        assert _quantile(xs, 0.5) == 3.0
        assert _quantile(xs, 1.0) == 5.0

    def test_interpolation(self):
        assert _quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        assert _quantile([7.0], 0.9) == 7.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            _quantile([1.0], 1.5)


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([100.0, 200.0, 300.0, 400.0])
        assert stats.count == 4
        assert stats.mean == 250.0
        assert stats.p50 == pytest.approx(250.0)
        assert stats.maximum == 400.0
        assert stats.p90 <= stats.p99 <= stats.maximum

    def test_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_pooled_over_handles(self):
        stats = latency_stats([handle("S1", [100.0]), handle("S2", [300.0])])
        assert stats.count == 2
        assert stats.mean == 200.0

    def test_valid_only_filter(self):
        h = handle("S1", [100.0])
        h.record(msg_id=99, time=0.0, latency_ms=9_000.0, valid=False)
        assert latency_stats([h]).count == 1
        assert latency_stats([h], valid_only=False).count == 2

    def test_by_subscriber_includes_empty(self):
        out = latency_by_subscriber([handle("S1", [50.0]), handle("S2", [])])
        assert out["S1"].count == 1
        assert out["S2"].count == 0


class TestDeadlineMargins:
    def test_margins(self):
        margins = deadline_margins([handle("S1", [100.0, 900.0])], deadline_ms=1_000.0)
        assert margins == [900.0, 100.0]

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            deadline_margins([], deadline_ms=0.0)
