"""Feasibility prediction and calibration tests."""

from __future__ import annotations

import pytest

from repro.analysis.feasibility import CalibrationReport, calibrate, predict_success
from repro.core.strategies import EbStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem
from repro.stats.normal import Normal
from tests.conftest import make_line_topology

MATCH_ALL = Predicate("A1", "<", 1e9)


def line_system(link_mean=10.0) -> PubSubSystem:
    topo = make_line_topology(
        n=3, rate=Normal(link_mean, 4.0),
        publishers={"P1": "B1"}, subscribers={"S1": "B3"},
    )
    system = PubSubSystem(topo, EbStrategy(), Simulator(), RngStreams(3))
    system.subscribe(Subscription("S1", MATCH_ALL, deadline_ms=5_000.0, price=1.0))
    return system


class TestPredictSuccess:
    def test_easy_deadline_near_one(self):
        system = line_system(link_mean=10.0)  # ~1 s propagation vs 5 s bound
        message = system.publish("P1", {"A1": 1.0})
        assert predict_success(system, message, "S1") > 0.99

    def test_impossible_deadline_near_zero(self):
        system = line_system(link_mean=500.0)  # ~50 s propagation vs 5 s bound
        message = system.publish("P1", {"A1": 1.0})
        assert predict_success(system, message, "S1") < 1e-6

    def test_unknown_subscriber(self):
        system = line_system()
        message = system.publish("P1", {"A1": 1.0})
        with pytest.raises(KeyError):
            predict_success(system, message, "nobody")


class TestCalibration:
    def test_uncongested_prediction_matches_outcome(self):
        system = line_system(link_mean=10.0)
        messages = [
            system.publish("P1", {"A1": 1.0}) for _ in range(5)
        ]
        system.sim.run()
        report = calibrate(system, messages)
        assert report.pairs == 5
        assert report.predicted_mean > 0.99
        assert report.achieved_rate == 1.0
        assert report.queueing_erosion == 0.0

    def test_erosion_under_congestion(self):
        # Publish a burst far beyond the line's capacity: predictions stay
        # optimistic (they ignore queueing) but achieved collapses.  Each
        # hop takes ~2 s for 50 KB, so one message meets the 5 s bound
        # comfortably — but thirty at once serialise to ~60 s of queue.
        system = line_system(link_mean=40.0)
        messages = [system.publish("P1", {"A1": 1.0}) for _ in range(30)]
        system.sim.run()
        report = calibrate(system, messages)
        assert report.pairs == 30
        assert report.achieved_rate < report.predicted_mean
        assert report.queueing_erosion > 0.3

    def test_empty_run(self):
        system = line_system()
        report = calibrate(system, [])
        assert report == CalibrationReport(pairs=0, predicted_mean=0.0, achieved_rate=0.0)
        assert report.queueing_erosion == 0.0
