"""Windowed time-series reductions: folds must equal the aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeseries import QueueDepthSampler, windowed_metrics
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics, schedule_workload
from repro.workload.dynamics import ChurnWave, FlashCrowd, RateBurst, ScenarioScript
from repro.workload.scenarios import Scenario


def _run(config: SimulationConfig, window_ms: float, sample: bool = False):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    sampler = (
        QueueDepthSampler(system, every_ms=window_ms / 4.0, horizon_ms=config.horizon_ms)
        if sample
        else None
    )
    system.sim.run(until=config.horizon_ms)
    ts = windowed_metrics(system, window_ms, config.horizon_ms, queue_sampler=sampler)
    return system, ts


def _assert_folds(system, ts):
    m = system.metrics
    t = ts.totals()
    assert t["published"] == m.published
    assert t["total_interested"] == m.total_interested
    assert t["deliveries_valid"] == m.deliveries_valid
    assert t["deliveries_late"] == m.deliveries_late
    assert t["earning"] == m.earning
    assert t["delivery_rate"] == m.delivery_rate
    assert float(ts.latency_sum_ms.sum()) == pytest.approx(m.latency_sum_ms, rel=1e-12)


class TestFolds:
    @pytest.mark.parametrize("strategy", ["fifo", "rl", "eb", "pc", "ebpc"])
    @pytest.mark.parametrize("scenario", [Scenario.PSD, Scenario.SSD])
    def test_frozen_world_folds_to_aggregates(self, strategy, scenario):
        config = SimulationConfig(
            seed=11, scenario=scenario, strategy=strategy,
            publishing_rate_per_min=6.0, duration_ms=90_000.0,
        )
        system, ts = _run(config, window_ms=20_000.0)
        _assert_folds(system, ts)

    @pytest.mark.parametrize("backend", ["ledger", "scalar"])
    def test_folds_match_both_metrics_backends(self, backend):
        config = SimulationConfig(
            seed=11, scenario=Scenario.SSD, strategy="eb",
            publishing_rate_per_min=6.0, duration_ms=90_000.0,
            metrics_backend=backend,
        )
        system, ts = _run(config, window_ms=20_000.0)
        _assert_folds(system, ts)

    def test_folds_under_churn_and_bursts(self):
        script = ScenarioScript((
            RateBurst(20_000.0, 60_000.0, 3.0),
            ChurnWave(at_ms=25_000.0, leave=10, join=10),
            FlashCrowd(at_ms=40_000.0, count=12),
        ))
        config = SimulationConfig(
            seed=11, scenario=Scenario.SSD, strategy="ebpc",
            publishing_rate_per_min=6.0, duration_ms=90_000.0, dynamics=script,
        )
        system, ts = _run(config, window_ms=20_000.0)
        _assert_folds(system, ts)
        system.metrics.check_invariants()

    def test_folds_under_multipath_duplicates(self):
        config = SimulationConfig(
            seed=11, scenario=Scenario.SSD, strategy="eb",
            publishing_rate_per_min=6.0, duration_ms=60_000.0, routing_paths=2,
        )
        system, ts = _run(config, window_ms=20_000.0)
        # Duplicate arrivals must be settled first-arrival-wins, exactly
        # like the metrics layer, or the fold double-counts.
        assert system.metrics.duplicate_deliveries > 0
        _assert_folds(system, ts)


class TestTruncatedHorizon:
    """Satellite regression: a horizon shorter than the run must *exclude*
    out-of-horizon events, not clip them into the last window."""

    def _reference(self, system, horizon):
        """Aggregates over events inside the horizon, computed the direct
        whole-array way (settle pairs first-arrival-wins, then mask)."""
        pub_time, interested = system.publication_columns()
        inside = pub_time <= horizon
        sub, msg, time, latency, valid = system.delivery_log.columns()
        keys = msg * np.int64(system.delivery_log.endpoint_count) + sub
        _, first = np.unique(keys, return_index=True)
        t, v = time[first], valid[first]
        in_h = t <= horizon
        return {
            "published": int(inside.sum()),
            "total_interested": int(interested[inside].sum()),
            "deliveries_valid": int((v & in_h).sum()),
            "deliveries_late": int((~v & in_h).sum()),
        }

    def test_truncated_horizon_folds_to_truncated_aggregates(self):
        config = SimulationConfig(
            seed=11, scenario=Scenario.SSD, strategy="eb",
            publishing_rate_per_min=8.0, duration_ms=90_000.0,
        )
        system, _ = _run(config, window_ms=20_000.0)
        horizon = 45_000.0  # half the publication window, far short of the run
        ts = windowed_metrics(system, 20_000.0, horizon_ms=horizon)
        totals = ts.totals()
        ref = self._reference(system, horizon)
        # There must be something beyond the horizon or this is vacuous.
        assert system.metrics.published > ref["published"]
        assert system.metrics.deliveries_valid + system.metrics.deliveries_late > (
            ref["deliveries_valid"] + ref["deliveries_late"]
        )
        for key, want in ref.items():
            assert totals[key] == want, key

    def test_last_window_not_corrupted_by_out_of_horizon_events(self):
        """The pre-fix behavior dumped every later event into the final
        window via np.clip; the final window must now hold only its own."""
        config = SimulationConfig(
            seed=11, scenario=Scenario.SSD, strategy="fifo",
            publishing_rate_per_min=8.0, duration_ms=90_000.0,
        )
        system, _ = _run(config, window_ms=20_000.0)
        horizon = 40_000.0
        ts = windowed_metrics(system, 20_000.0, horizon_ms=horizon)
        pub_time, _ = system.publication_columns()
        in_last = ((pub_time > 20_000.0) & (pub_time <= horizon)).sum()
        assert ts.published[-1] == in_last

    def test_truncated_horizon_with_queue_sampler(self):
        config = SimulationConfig(
            seed=2, scenario=Scenario.SSD, strategy="eb",
            publishing_rate_per_min=10.0, duration_ms=60_000.0,
        )
        system = build_system(config)  # not run: probes injected directly
        sampler = QueueDepthSampler(system, every_ms=5_000.0, horizon_ms=config.horizon_ms)
        sampler.times = [0.0, 10_000.0, 30_000.0, 70_000.0]
        sampler.depths = [1, 2, 3, 99]
        mean, mx = sampler.bucketed(20_000.0, 2, horizon_ms=40_000.0)
        # The 70 s probe is beyond the 40 s horizon: excluded, not clipped.
        assert mx[-1] == 3.0
        assert mean[0] == 1.5


class TestSeriesShape:
    def test_windows_cover_horizon(self):
        config = SimulationConfig(
            seed=2, strategy="fifo", publishing_rate_per_min=4.0, duration_ms=50_000.0,
        )
        system, ts = _run(config, window_ms=15_000.0)
        assert ts.windows == int(np.ceil(config.horizon_ms / 15_000.0))
        assert ts.edges[0] == 0.0
        assert ts.edges[-1] == config.horizon_ms
        assert ts.centers_ms.shape == (ts.windows,)
        # Windowed rates are >= 0 but may exceed 1 transiently (deliveries
        # bucket by arrival, interested by publish); the *fold* is in [0, 1].
        assert (ts.delivery_rate >= 0.0).all()
        assert 0.0 <= ts.totals()["delivery_rate"] <= 1.0

    def test_burst_shows_up_in_published_series(self):
        script = ScenarioScript((RateBurst(30_000.0, 60_000.0, 8.0),))
        config = SimulationConfig(
            seed=4, strategy="fifo", publishing_rate_per_min=6.0,
            duration_ms=90_000.0, dynamics=script,
        )
        _, ts = _run(config, window_ms=30_000.0)
        # Windows: [0,30) base, [30,60) 8x burst, [60,90) base, grace...
        assert ts.published[1] > 3 * ts.published[0]
        assert ts.published[1] > 3 * ts.published[2]

    def test_queue_sampler_buckets(self):
        config = SimulationConfig(
            seed=2, strategy="eb", publishing_rate_per_min=10.0, duration_ms=60_000.0,
        )
        system, ts = _run(config, window_ms=20_000.0, sample=True)
        assert ts.queue_depth_mean is not None
        assert ts.queue_depth_max is not None
        assert ts.queue_depth_mean.shape == (ts.windows,)
        assert (ts.queue_depth_max >= ts.queue_depth_mean).all()
        # Traffic flowed, so something was queued at some probe.
        assert ts.queue_depth_max.max() > 0

    def test_sampler_does_not_change_decisions(self):
        config = SimulationConfig(
            seed=7, strategy="ebpc", publishing_rate_per_min=8.0, duration_ms=60_000.0,
        )
        bare, ts_bare = _run(config, window_ms=20_000.0, sample=False)
        probed, ts_probed = _run(config, window_ms=20_000.0, sample=True)
        assert bare.metrics.deliveries_valid == probed.metrics.deliveries_valid
        assert bare.metrics.earning == probed.metrics.earning
        np.testing.assert_array_equal(ts_bare.deliveries_valid, ts_probed.deliveries_valid)
        np.testing.assert_array_equal(ts_bare.earning, ts_probed.earning)

    def test_validation(self):
        config = SimulationConfig(
            seed=2, strategy="fifo", publishing_rate_per_min=4.0, duration_ms=30_000.0,
        )
        system = build_system(config)
        with pytest.raises(ValueError):
            windowed_metrics(system, 0.0, 1000.0)
        with pytest.raises(ValueError):
            windowed_metrics(system, 100.0)  # clock still at 0
        with pytest.raises(ValueError):
            QueueDepthSampler(system, every_ms=0.0, horizon_ms=1000.0)
