"""The invariant sentinel: detects manufactured corruption, stays silent
on healthy runs, and — the acceptance bar — changes nothing it watches."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.analysis.sentinel import InvariantSentinel, InvariantViolation
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    build_system,
    run_simulation,
    schedule_dynamics,
    schedule_workload,
)
from repro.workload.dynamics import BrokerOutage, LinkFailure, ScenarioScript
from repro.workload.scenarios import Scenario

BASE = dict(
    seed=3,
    scenario=Scenario.SSD,
    publishing_rate_per_min=12.0,
    duration_ms=60_000.0,
)


def _run_system(config: SimulationConfig, until: float | None = None):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    system.run(until=until if until is not None else config.horizon_ms)
    return system


def _log_sha(system) -> str:
    h = hashlib.sha256()
    for col in system.delivery_log.columns():
        h.update(np.ascontiguousarray(col).tobytes())
    return h.hexdigest()


class TestHealthyRuns:
    def test_final_passes_on_clean_run(self):
        config = SimulationConfig(**BASE)
        system = _run_system(config)
        sentinel = InvariantSentinel(system, deep=True)
        sentinel.final()
        assert sentinel.checks_run == 1

    def test_final_passes_on_faulted_run(self):
        system = build_system(SimulationConfig(**BASE))
        a, b = sorted(system.monitors)[0]
        script = ScenarioScript((
            LinkFailure(at_ms=5_000.0, a=a, b=b),
            BrokerOutage(at_ms=10_000.0, broker=b),
        ))
        config = SimulationConfig(**BASE).replace(dynamics=script)
        system = _run_system(config)
        InvariantSentinel(system, deep=True).final()
        assert not system.faults.clean

    def test_boundary_checks_accumulate(self):
        config = SimulationConfig(**BASE)
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        sentinel = InvariantSentinel(system)
        for target in (10_000.0, 20_000.0, config.horizon_ms):
            system.run(until=target)
            sentinel.check()
        sentinel.final()
        assert sentinel.checks_run == 4


class TestDetection:
    """Each manufactured corruption trips its named check."""

    def _armed(self):
        config = SimulationConfig(**BASE)
        system = _run_system(config, until=30_000.0)
        sentinel = InvariantSentinel(system)
        sentinel.check()  # establish baselines
        return system, sentinel

    def test_counter_regression_detected(self):
        system, sentinel = self._armed()
        system.faults.retries += 5
        sentinel.check()  # growth is fine
        system.faults.retries -= 3
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        assert exc.value.check == "counter-monotonic"
        assert exc.value.context["counter"] == "retries"

    def test_clock_regression_detected(self):
        system, sentinel = self._armed()
        system.sim._now -= 1.0
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        assert exc.value.check == "clock-monotonic"

    def test_entry_leak_detected(self):
        system, sentinel = self._armed()
        system.faults.enqueued_entries += 1  # a phantom entry nothing settles
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        assert exc.value.check == "entry-conservation"

    def test_pair_leak_detected(self):
        system, sentinel = self._armed()
        sentinel.deep = True
        system.faults.dead_pairs += 7
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        assert exc.value.check in ("pair-conservation", "counter-monotonic")

    def test_poisoned_monitor_rate_detected(self):
        system, sentinel = self._armed()
        (src, dst), monitor = sorted(system.monitors.items())[0]

        class _Poison:
            mean = float("nan")
            variance = 1.0

        monitor.rate = lambda: _Poison()
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        assert exc.value.check == "monitor-rate"
        assert exc.value.context["link"] == f"{src}->{dst}"

    def test_violation_carries_context(self):
        system, sentinel = self._armed()
        system.sim._now -= 1.0
        with pytest.raises(InvariantViolation) as exc:
            sentinel.check()
        err = exc.value
        assert err.time_ms == system.sim.now
        assert "now" in err.context and "last" in err.context
        assert "[sentinel:clock-monotonic]" in str(err)


class TestDecisionNeutrality:
    """ACCEPTANCE: with an empty fault script, a sentinel-on run is
    byte-identical to a sentinel-off run — fingerprints and metrics."""

    @pytest.mark.parametrize("strategy", ("fifo", "ebpc"))
    def test_sentinel_on_off_identical(self, strategy):
        config = SimulationConfig(**BASE).replace(strategy=strategy)
        off = run_simulation(config.replace(sentinel=False))
        on = run_simulation(config.replace(sentinel=True, sentinel_deep=True))
        assert on == off

    def test_delivery_log_bytes_identical(self):
        config = SimulationConfig(**BASE)
        plain = _run_system(config)

        watched = build_system(config)
        schedule_workload(watched, config)
        schedule_dynamics(watched, config)
        sentinel = InvariantSentinel(watched, deep=True)
        for target in np.arange(10_000.0, config.horizon_ms + 1.0, 10_000.0):
            watched.run(until=float(target))
            sentinel.check()
        watched.run(until=config.horizon_ms)
        sentinel.final()

        assert _log_sha(watched) == _log_sha(plain)
        assert watched.sim.executed_events == plain.sim.executed_events
        assert watched.metrics.earning == plain.metrics.earning
