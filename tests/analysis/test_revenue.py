"""Per-tier revenue analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis.revenue import TierRevenue, premium_share, revenue_by_tier
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_workload
from repro.workload.scenarios import Scenario

CFG = SimulationConfig(
    seed=6,
    scenario=Scenario.SSD,
    strategy="eb",
    publishing_rate_per_min=12.0,
    duration_ms=180_000.0,
)


@pytest.fixture(scope="module")
def finished():
    system = build_system(CFG)
    schedule_workload(system, CFG)
    system.sim.run(until=CFG.horizon_ms)
    return system


class TestRevenueByTier:
    def test_three_ssd_tiers(self, finished):
        tiers = revenue_by_tier(finished)
        assert [t.price for t in tiers] == [3.0, 2.0, 1.0]
        assert [t.deadline_ms for t in tiers] == [10_000.0, 30_000.0, 60_000.0]

    def test_population_total(self, finished):
        tiers = revenue_by_tier(finished)
        assert sum(t.subscribers for t in tiers) == 160

    def test_revenue_reconciles_with_metrics(self, finished):
        tiers = revenue_by_tier(finished)
        assert sum(t.revenue for t in tiers) == pytest.approx(finished.metrics.earning)
        assert sum(t.valid_deliveries for t in tiers) == finished.metrics.deliveries_valid

    def test_revenue_is_price_times_deliveries(self, finished):
        for tier in revenue_by_tier(finished):
            assert tier.revenue == pytest.approx(tier.price * tier.valid_deliveries)

    def test_per_subscriber_rate(self):
        tier = TierRevenue(price=3.0, deadline_ms=10_000.0, subscribers=10,
                           valid_deliveries=20, revenue=60.0)
        assert tier.revenue_per_subscriber == 6.0
        empty = TierRevenue(price=3.0, deadline_ms=None, subscribers=0,
                            valid_deliveries=0, revenue=0.0)
        assert empty.revenue_per_subscriber == 0.0


class TestPremiumShare:
    def test_share_computation(self):
        tiers = [
            TierRevenue(3.0, 10_000.0, 50, 30, 90.0),
            TierRevenue(1.0, 60_000.0, 50, 10, 10.0),
        ]
        assert premium_share(tiers) == pytest.approx(0.9)

    def test_empty(self):
        assert premium_share([]) == 0.0

    def test_real_run_share_bounded(self, finished):
        share = premium_share(revenue_by_tier(finished))
        assert 0.0 < share < 1.0

    def test_psd_single_tier(self):
        cfg = CFG.replace(scenario=Scenario.PSD, duration_ms=60_000.0)
        system = build_system(cfg)
        schedule_workload(system, cfg)
        system.sim.run(until=cfg.horizon_ms)
        tiers = revenue_by_tier(system)
        assert len(tiers) == 1
        assert tiers[0].price == 1.0
        assert premium_share(tiers) in (0.0, 1.0)
