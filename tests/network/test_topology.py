"""Topology construction and builder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import (
    LayeredMeshSpec,
    Topology,
    TopologyError,
    build_acyclic_tree,
    build_from_edges,
    build_layered_mesh,
    build_random_mesh,
)
from repro.stats.normal import Normal

RATE = Normal(10.0, 4.0)


class TestTopologyBasics:
    def test_add_and_query(self):
        t = Topology()
        t.add_broker("A")
        t.add_broker("B")
        t.add_link("A", "B", RATE)
        assert t.brokers == ["A", "B"]
        assert t.link_count == 1
        assert t.has_link("A", "B") and t.has_link("B", "A")
        assert t.link_rate("B", "A") is RATE
        assert t.neighbors("A") == ["B"]

    def test_duplicate_broker_rejected(self):
        t = Topology()
        t.add_broker("A")
        with pytest.raises(TopologyError):
            t.add_broker("A")

    def test_self_link_rejected(self):
        t = Topology()
        t.add_broker("A")
        with pytest.raises(TopologyError):
            t.add_link("A", "A", RATE)

    def test_duplicate_link_rejected(self):
        t = Topology()
        t.add_broker("A")
        t.add_broker("B")
        t.add_link("A", "B", RATE)
        with pytest.raises(TopologyError):
            t.add_link("B", "A", RATE)

    def test_unknown_broker_link_rejected(self):
        t = Topology()
        t.add_broker("A")
        with pytest.raises(TopologyError):
            t.add_link("A", "Z", RATE)

    def test_unknown_link_rate_raises(self):
        t = Topology()
        t.add_broker("A")
        t.add_broker("B")
        with pytest.raises(TopologyError):
            t.link_rate("A", "B")

    def test_set_link_rate(self):
        t = Topology()
        t.add_broker("A")
        t.add_broker("B")
        t.add_link("A", "B", RATE)
        t.set_link_rate("A", "B", Normal(99.0, 1.0))
        assert t.link_rate("A", "B").mean == 99.0

    def test_attachments(self):
        t = Topology()
        t.add_broker("A")
        t.attach_publisher("P1", "A")
        t.attach_subscriber("S1", "A")
        assert t.publishers_of("A") == ["P1"]
        assert t.subscribers_of("A") == ["S1"]
        with pytest.raises(TopologyError):
            t.attach_publisher("P1", "A")
        with pytest.raises(TopologyError):
            t.attach_subscriber("S2", "nowhere")

    def test_connectivity(self):
        t = Topology()
        t.add_broker("A")
        t.add_broker("B")
        assert not t.is_connected()
        t.add_link("A", "B", RATE)
        assert t.is_connected()

    def test_links_sorted_canonical(self):
        t = build_from_edges([("B2", "B1", RATE), ("B3", "B1", RATE)])
        links = t.links()
        assert [(a, b) for a, b, _ in links] == [("B1", "B2"), ("B1", "B3")]


class TestLayeredMesh:
    def test_paper_spec_counts(self, rng):
        topo = build_layered_mesh(rng)
        assert topo.broker_count == 32
        # Links: L2 to all 4 L1 (16) + 8 L3 x 2 (16) + 16 L4 x 2 (32) = 64.
        assert topo.link_count == 64
        assert len(topo.publisher_brokers) == 4
        assert len(topo.subscriber_brokers) == 160
        assert topo.is_connected()

    def test_publishers_on_first_layer(self, rng):
        topo = build_layered_mesh(rng)
        assert set(topo.publisher_brokers.values()) == {"B1", "B2", "B3", "B4"}

    def test_subscribers_on_last_layer_even(self, rng):
        topo = build_layered_mesh(rng)
        per_broker = {}
        for sub, broker in topo.subscriber_brokers.items():
            per_broker[broker] = per_broker.get(broker, 0) + 1
        assert all(v == 10 for v in per_broker.values())
        assert len(per_broker) == 16

    def test_link_rates_in_range(self, rng):
        topo = build_layered_mesh(rng)
        for _, _, rate in topo.links():
            assert 50.0 <= rate.mean <= 100.0
            assert rate.std == pytest.approx(20.0)

    def test_deterministic_for_seed(self):
        a = build_layered_mesh(np.random.default_rng(3))
        b = build_layered_mesh(np.random.default_rng(3))
        assert [(x, y, r.mean) for x, y, r in a.links()] == [
            (x, y, r.mean) for x, y, r in b.links()
        ]

    def test_custom_spec(self, rng):
        spec = LayeredMeshSpec(
            layer_sizes=(2, 2, 4),
            uplinks_per_layer=(0, 2, 2),
            publishers_per_edge_broker=2,
            subscribers_per_edge_broker=3,
        )
        topo = build_layered_mesh(rng, spec)
        assert topo.broker_count == 8
        assert len(topo.publisher_brokers) == 4
        assert len(topo.subscriber_brokers) == 12

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LayeredMeshSpec(layer_sizes=(4,), uplinks_per_layer=(0,))
        with pytest.raises(ValueError):
            LayeredMeshSpec(layer_sizes=(4, 0), uplinks_per_layer=(0, 2))
        with pytest.raises(ValueError):
            LayeredMeshSpec(rate_mean_range=(100.0, 50.0))


class TestOtherBuilders:
    def test_acyclic_tree_is_tree(self, rng):
        topo = build_acyclic_tree(rng, broker_count=12, publishers=3, subscribers=9)
        assert topo.broker_count == 12
        assert topo.link_count == 11  # tree
        assert topo.is_connected()
        assert len(topo.publisher_brokers) == 3
        assert len(topo.subscriber_brokers) == 9

    def test_random_mesh_has_chords(self, rng):
        topo = build_random_mesh(rng, broker_count=10, extra_links=5)
        assert topo.broker_count == 10
        assert topo.link_count == 9 + 5
        assert topo.is_connected()
        assert topo.metadata["chords_requested"] == 5
        assert topo.metadata["chords_added"] == 5

    def test_random_mesh_caps_extra_links_and_warns(self, rng):
        with pytest.warns(RuntimeWarning, match="added 3 of 100 requested"):
            topo = build_random_mesh(rng, broker_count=4, extra_links=100)
        # Complete graph on 4 nodes has 6 edges.
        assert topo.link_count == 6
        assert topo.metadata["chords_requested"] == 100
        assert topo.metadata["chords_added"] == 3

    def test_random_mesh_full_build_is_silent(self, rng):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            build_random_mesh(rng, broker_count=10, extra_links=5)

    def test_from_edges_with_attachments(self):
        topo = build_from_edges(
            [("A", "B", RATE)], publishers={"P": "A"}, subscribers={"S": "B"}
        )
        assert topo.publisher_brokers == {"P": "A"}
        assert topo.subscriber_brokers == {"S": "B"}

    def test_builder_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            build_acyclic_tree(rng, broker_count=0)
        with pytest.raises(ValueError):
            build_random_mesh(rng, broker_count=1)
