"""Link measurement tests: oracle vs estimated modes."""

from __future__ import annotations

import pytest

from repro.network.link import DirectedLink
from repro.network.measurement import DEFAULT_PRIOR, LinkMonitor, MeasurementMode
from repro.stats.estimators import EwmaEstimator
from repro.stats.normal import Normal

TRUE = Normal(60.0, 400.0)


def make_link(rng) -> DirectedLink:
    return DirectedLink("A", "B", TRUE, rng)


class TestOracleMode:
    def test_exposes_true_distribution(self, rng):
        monitor = LinkMonitor(make_link(rng), mode=MeasurementMode.ORACLE)
        assert monitor.rate() is TRUE

    def test_ignores_transmissions(self, rng):
        link = make_link(rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ORACLE)
        link.draw_transmission_time(1.0)
        assert monitor.samples == 0
        assert monitor.estimation_error() == 0.0


class TestEstimatedMode:
    def test_prior_before_min_samples(self, rng):
        link = make_link(rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED, min_samples=3)
        assert monitor.rate() == DEFAULT_PRIOR
        link.draw_transmission_time(1.0)
        link.draw_transmission_time(1.0)
        assert monitor.rate() == DEFAULT_PRIOR  # still below threshold
        link.draw_transmission_time(1.0)
        assert monitor.rate() != DEFAULT_PRIOR

    def test_converges_to_truth(self, rng):
        link = make_link(rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED)
        for _ in range(5000):
            link.draw_transmission_time(1.0)
        est = monitor.rate()
        # Truncation at zero slightly lifts the mean; tolerance covers it.
        assert est.mean == pytest.approx(60.0, rel=0.05)
        assert est.std == pytest.approx(20.0, rel=0.15)
        assert monitor.estimation_error() < 3.0

    def test_per_kb_normalisation(self, rng):
        # Samples from variable message sizes must normalise to per-KB rate.
        link = DirectedLink("A", "B", Normal(60.0, 0.0), rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED, min_samples=1)
        link.draw_transmission_time(10.0)  # duration 600, rate 60
        link.draw_transmission_time(2.0)  # duration 120, rate 60
        assert monitor.rate().mean == pytest.approx(60.0)

    def test_custom_estimator_factory(self, rng):
        link = make_link(rng)
        monitor = LinkMonitor(
            link,
            mode=MeasurementMode.ESTIMATED,
            estimator_factory=lambda: EwmaEstimator(alpha=0.5),
            min_samples=1,
        )
        link.draw_transmission_time(1.0)
        assert monitor.samples == 1

    def test_invalid_min_samples(self, rng):
        with pytest.raises(ValueError):
            LinkMonitor(make_link(rng), min_samples=0)


class TestRuntimeRateChanges:
    """Mid-run ``set_true_rate`` (the dynamics scripts' failure injection)."""

    def test_oracle_pinned_cache_invalidates(self, rng):
        link = make_link(rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ORACLE)
        assert monitor.rate() is TRUE  # pinned
        degraded = Normal(240.0, 6400.0)
        link.set_true_rate(degraded)
        assert monitor.rate() is degraded  # repinned, not stale
        assert monitor.estimation_error() == 0.0
        link.set_true_rate(TRUE)
        assert monitor.rate() is TRUE

    def test_channel_samples_new_rate(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 0.0), rng)
        assert link.draw_transmission_time(1.0) == pytest.approx(10.0)
        link.set_true_rate(Normal(40.0, 0.0))
        assert link.draw_transmission_time(1.0) == pytest.approx(40.0)

    def test_estimated_window_converges_to_new_rate(self, rng):
        from repro.stats.estimators import SlidingWindowEstimator

        link = DirectedLink("A", "B", Normal(50.0, 4.0), rng)
        monitor = LinkMonitor(
            link,
            mode=MeasurementMode.ESTIMATED,
            estimator_factory=lambda: SlidingWindowEstimator(window=64),
        )
        for _ in range(200):
            link.draw_transmission_time(1.0)
        assert monitor.rate().mean == pytest.approx(50.0, rel=0.05)
        link.set_true_rate(Normal(150.0, 4.0))
        for _ in range(200):
            link.draw_transmission_time(1.0)
        # The window slid fully past the old regime: the estimate tracks
        # the *new* rate, not the old/new mixture.
        assert monitor.rate().mean == pytest.approx(150.0, rel=0.05)

    def test_estimated_cache_tracks_observation_count(self, rng):
        link = DirectedLink("A", "B", Normal(50.0, 4.0), rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED, min_samples=2)
        for _ in range(5):
            link.draw_transmission_time(1.0)
        before = monitor.rate()
        assert monitor.rate() is before  # count unchanged -> cached object
        link.set_true_rate(Normal(500.0, 4.0))
        # No new observation yet: the estimate (by design) can't know.
        assert monitor.rate() is before
        link.draw_transmission_time(1.0)
        after = monitor.rate()
        assert after is not before  # count moved -> cache refreshed
        assert after.mean > before.mean  # and toward the new rate

    def test_estimated_welford_drifts_toward_new_rate(self, rng):
        link = DirectedLink("A", "B", Normal(50.0, 4.0), rng)
        monitor = LinkMonitor(link, mode=MeasurementMode.ESTIMATED)
        for _ in range(50):
            link.draw_transmission_time(1.0)
        before = monitor.rate().mean
        link.set_true_rate(Normal(200.0, 4.0))
        for _ in range(500):
            link.draw_transmission_time(1.0)
        after = monitor.rate().mean
        assert after > before + 50.0  # full-history mean moves, slowly
