"""Path algebra tests."""

from __future__ import annotations

import pytest

from repro.network.paths import (
    best_path_exhaustive,
    enumerate_simple_paths,
    path_distribution,
    path_mean,
    remaining_hops,
)
from repro.network.topology import TopologyError, build_from_edges
from repro.stats.normal import Normal
from tests.conftest import make_diamond_topology, make_line_topology


class TestPathDistribution:
    def test_line_sums_links(self):
        topo = make_line_topology(n=4, rate=Normal(10.0, 4.0))
        dist = path_distribution(topo, ["B1", "B2", "B3", "B4"])
        assert dist.mean == 30.0
        assert dist.variance == 12.0

    def test_single_node_path_degenerate(self):
        topo = make_line_topology(n=2)
        dist = path_distribution(topo, ["B1"])
        assert dist.mean == 0.0 and dist.variance == 0.0

    def test_unlinked_consecutive_nodes_raise(self):
        topo = make_line_topology(n=3)
        with pytest.raises(TopologyError):
            path_distribution(topo, ["B1", "B3"])

    def test_path_mean(self):
        topo = make_diamond_topology(fast=Normal(5.0, 1.0), slow=Normal(50.0, 4.0))
        assert path_mean(topo, ["B1", "B2", "B4"]) == 10.0
        assert path_mean(topo, ["B1", "B3", "B4"]) == 100.0


class TestRemainingHops:
    def test_values(self):
        assert remaining_hops([]) == 0
        assert remaining_hops(["B1"]) == 0
        assert remaining_hops(["B1", "B2"]) == 1
        assert remaining_hops(["B1", "B2", "B3", "B4"]) == 3


class TestEnumeration:
    def test_diamond_has_two_paths(self):
        topo = make_diamond_topology()
        paths = sorted(enumerate_simple_paths(topo, "B1", "B4"))
        assert paths == [["B1", "B2", "B4"], ["B1", "B3", "B4"]]

    def test_src_equals_dst(self):
        topo = make_line_topology(n=2)
        assert list(enumerate_simple_paths(topo, "B1", "B1")) == [["B1"]]

    def test_unknown_node_raises(self):
        topo = make_line_topology(n=2)
        with pytest.raises(TopologyError):
            list(enumerate_simple_paths(topo, "B1", "ZZ"))

    def test_cutoff_limits_length(self):
        # Square with diagonal: A-B-D and A-C-D and A-B-C-D etc.
        topo = build_from_edges(
            [
                ("A", "B", Normal(1.0, 0.0)),
                ("B", "D", Normal(1.0, 0.0)),
                ("A", "C", Normal(1.0, 0.0)),
                ("C", "D", Normal(1.0, 0.0)),
                ("B", "C", Normal(1.0, 0.0)),
            ]
        )
        short = list(enumerate_simple_paths(topo, "A", "D", cutoff=2))
        assert all(len(p) <= 3 for p in short)


class TestBestPathExhaustive:
    def test_picks_fast_branch(self):
        topo = make_diamond_topology()
        assert best_path_exhaustive(topo, "B1", "B4") == ["B1", "B2", "B4"]

    def test_tie_breaks_deterministic(self):
        topo = build_from_edges(
            [
                ("A", "B", Normal(10.0, 0.0)),
                ("B", "D", Normal(10.0, 0.0)),
                ("A", "C", Normal(10.0, 0.0)),
                ("C", "D", Normal(10.0, 0.0)),
            ]
        )
        # Equal means: lexicographically smaller path wins.
        assert best_path_exhaustive(topo, "A", "D") == ["A", "B", "D"]

    def test_no_path_raises(self):
        topo = build_from_edges([("A", "B", Normal(1.0, 0.0))])
        topo.add_broker("Z")
        with pytest.raises(TopologyError):
            best_path_exhaustive(topo, "A", "Z")
