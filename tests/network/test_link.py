"""Directed link channel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.link import DirectedLink, LinkStats
from repro.stats.normal import Normal


@pytest.fixture
def link(rng) -> DirectedLink:
    return DirectedLink("A", "B", Normal(10.0, 4.0), rng)


class TestTransmission:
    def test_duration_scales_with_size(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 0.0), rng)  # deterministic
        assert link.draw_transmission_time(5.0) == pytest.approx(50.0)
        assert link.draw_transmission_time(1.0) == pytest.approx(10.0)

    def test_durations_positive(self, link):
        for _ in range(1000):
            assert link.draw_transmission_time(1.0) > 0.0

    def test_mean_duration_matches_rate(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 4.0), rng)
        xs = [link.draw_transmission_time(2.0) for _ in range(20_000)]
        assert np.mean(xs) == pytest.approx(20.0, rel=0.02)

    def test_invalid_size(self, link):
        with pytest.raises(ValueError):
            link.draw_transmission_time(0.0)

    def test_stats_accumulate(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 0.0), rng)
        link.draw_transmission_time(3.0)
        link.draw_transmission_time(2.0)
        assert link.stats.transmissions == 2
        assert link.stats.kilobytes == 5.0
        assert link.stats.busy_time == pytest.approx(50.0)

    def test_observer_called(self, rng):
        link = DirectedLink("A", "B", Normal(10.0, 0.0), rng)
        seen = []
        link.add_observer(lambda size, dur: seen.append((size, dur)))
        link.draw_transmission_time(4.0)
        assert seen == [(4.0, pytest.approx(40.0))]


class TestBusyState:
    def test_acquire_release(self, link):
        link.acquire()
        assert link.busy
        link.release()
        assert not link.busy

    def test_double_acquire_raises(self, link):
        link.acquire()
        with pytest.raises(RuntimeError):
            link.acquire()

    def test_release_idle_raises(self, link):
        with pytest.raises(RuntimeError):
            link.release()

    def test_name(self, link):
        assert link.name == "A->B"


class TestLinkStats:
    def test_utilisation(self):
        stats = LinkStats(transmissions=2, kilobytes=10.0, busy_time=30.0)
        assert stats.utilisation(60.0) == pytest.approx(0.5)
        assert stats.utilisation(0.0) == 0.0
        assert stats.utilisation(10.0) == 1.0  # clamped
