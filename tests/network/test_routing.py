"""Routing tests: sink trees vs the exhaustive oracle, consistency, k-paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.paths import best_path_exhaustive, path_distribution, path_mean
from repro.network.routing import compute_sink_tree, k_shortest_paths, shortest_path
from repro.network.topology import TopologyError, build_random_mesh
from repro.stats.normal import Normal
from tests.conftest import make_diamond_topology, make_line_topology


class TestSinkTree:
    def test_line_routes_toward_sink(self):
        topo = make_line_topology(n=4, rate=Normal(10.0, 4.0))
        tree = compute_sink_tree(topo, "B4")
        assert tree.entry("B4").is_sink
        assert tree.entry("B1").next_hop == "B2"
        assert tree.entry("B3").next_hop == "B4"

    def test_remaining_path_parameters(self):
        topo = make_line_topology(n=4, rate=Normal(10.0, 4.0))
        tree = compute_sink_tree(topo, "B4")
        e1 = tree.entry("B1")
        assert e1.nn == 3
        assert e1.rate.mean == 30.0
        assert e1.rate.variance == 12.0
        e4 = tree.entry("B4")
        assert e4.nn == 0
        assert e4.rate.mean == 0.0

    def test_diamond_prefers_fast_branch(self):
        topo = make_diamond_topology()
        tree = compute_sink_tree(topo, "B4")
        assert tree.path_from("B1") == ["B1", "B2", "B4"]

    def test_unknown_sink_raises(self):
        topo = make_line_topology(n=2)
        with pytest.raises(TopologyError):
            compute_sink_tree(topo, "nope")

    def test_path_entry_consistency(self):
        """A tree entry's (nn, rate) must equal the algebra over its path."""
        topo = build_random_mesh(np.random.default_rng(11), broker_count=12, extra_links=8)
        tree = compute_sink_tree(topo, topo.brokers[0])
        for broker in tree.brokers:
            path = tree.path_from(broker)
            entry = tree.entry(broker)
            assert entry.nn == len(path) - 1
            dist = path_distribution(topo, path)
            assert entry.rate.mean == pytest.approx(dist.mean)
            assert entry.rate.variance == pytest.approx(dist.variance)

    def test_suffix_property(self):
        """The next hop's route is the suffix of this broker's route."""
        topo = build_random_mesh(np.random.default_rng(5), broker_count=10, extra_links=6)
        tree = compute_sink_tree(topo, topo.brokers[-1])
        for broker in tree.brokers:
            entry = tree.entry(broker)
            if entry.next_hop is None:
                continue
            assert tree.path_from(broker)[1:] == tree.path_from(entry.next_hop)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_optimality_vs_exhaustive(self, seed):
        """Dijkstra's path mean equals the brute-force optimum."""
        rng = np.random.default_rng(seed)
        topo = build_random_mesh(rng, broker_count=7, extra_links=4)
        brokers = topo.brokers
        sink = brokers[0]
        tree = compute_sink_tree(topo, sink)
        for src in brokers[1:4]:
            best = best_path_exhaustive(topo, src, sink)
            assert path_mean(topo, tree.path_from(src)) == pytest.approx(
                path_mean(topo, best)
            )


class TestShortestPath:
    def test_matches_oracle_on_diamond(self):
        topo = make_diamond_topology()
        assert shortest_path(topo, "B1", "B4") == ["B1", "B2", "B4"]

    def test_src_is_dst(self):
        topo = make_line_topology(n=2)
        assert shortest_path(topo, "B1", "B1") == ["B1"]


class TestKShortestPaths:
    def test_diamond_both_paths_ordered(self):
        topo = make_diamond_topology()
        paths = k_shortest_paths(topo, "B1", "B4", k=2)
        assert paths == [["B1", "B2", "B4"], ["B1", "B3", "B4"]]

    def test_k_larger_than_available(self):
        topo = make_diamond_topology()
        assert len(k_shortest_paths(topo, "B1", "B4", k=10)) == 2

    def test_invalid_k(self):
        topo = make_diamond_topology()
        with pytest.raises(ValueError):
            k_shortest_paths(topo, "B1", "B4", k=0)

    def test_disconnected_raises(self):
        topo = make_line_topology(n=2)
        topo.add_broker("Z")
        with pytest.raises(TopologyError):
            k_shortest_paths(topo, "B1", "Z", k=1)
