"""Builders shared by the core-layer tests."""

from __future__ import annotations

from repro.core.context import SchedulingContext
from repro.core.strategies import QueueEntry
from repro.pubsub.filters import Predicate
from repro.pubsub.message import Message
from repro.pubsub.subscription import Subscription, TableRow
from repro.stats.normal import Normal

MATCH_ALL = Predicate("A1", "<", 1e9)


def make_message(
    msg_id: int = 1,
    publish_time: float = 0.0,
    size_kb: float = 50.0,
    deadline_ms: float | None = None,
) -> Message:
    return Message(
        msg_id=msg_id,
        publisher="P1",
        source_broker="B1",
        attributes={"A1": 1.0, "A2": 1.0},
        size_kb=size_kb,
        publish_time=publish_time,
        deadline_ms=deadline_ms,
    )


def make_row(
    subscriber: str = "S1",
    deadline_ms: float | None = 30_000.0,
    price: float | None = 1.0,
    nn: int = 2,
    mean: float = 100.0,
    variance: float = 400.0,
) -> TableRow:
    return TableRow(
        subscription=Subscription(
            subscriber=subscriber, filter=MATCH_ALL, deadline_ms=deadline_ms, price=price
        ),
        next_hop="B2",
        nn=nn,
        rate=Normal(mean, variance),
        sources=frozenset({"B1"}),
    )


def make_entry(
    message: Message | None = None,
    rows: list[TableRow] | None = None,
    enqueue_time: float = 0.0,
    seq: int = 0,
) -> QueueEntry:
    return QueueEntry(
        message=message or make_message(),
        rows=rows or [make_row()],
        enqueue_time=enqueue_time,
        seq=seq,
    )


def make_ctx(
    now: float = 0.0,
    pd: float = 2.0,
    ft: float = 3750.0,
    link_rate: Normal = Normal(75.0, 400.0),
) -> SchedulingContext:
    return SchedulingContext(now=now, processing_delay_ms=pd, ft_ms=ft, link_rate=link_rate)
