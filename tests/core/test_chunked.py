"""ChunkedColumnStore: sealing, spill round-trips, streaming reads."""

from __future__ import annotations

import gc
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import chunked
from repro.core.chunked import ChunkedColumnStore, SpillError

SCHEMA = (("a", np.int64), ("b", np.float64), ("flag", np.bool_))


def fill_reference(store: ChunkedColumnStore, n: int, seed: int = 0):
    """Append n rows through a mix of row/batch appends; return the
    reference columns."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1000, n)
    b = rng.uniform(0, 1, n)
    flag = rng.integers(0, 2, n).astype(bool)
    i = 0
    while i < n:
        if i % 3 == 0:
            store.append_row(a[i], b[i], flag[i])
            i += 1
        else:
            k = min(int(rng.integers(1, 40)), n - i)
            store.append_batch(k, a[i : i + k], b[i : i + k], flag[i : i + k])
            i += k
    return a, b, flag


class TestAppendAndGather:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 64, 1000])
    def test_gather_reproduces_append_order(self, chunk_rows):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=chunk_rows)
        a, b, flag = fill_reference(store, 333)
        ga, gb, gflag = store.gather()
        np.testing.assert_array_equal(ga, a)
        np.testing.assert_array_equal(gb, b)
        np.testing.assert_array_equal(gflag, flag)
        assert len(store) == 333

    def test_iter_chunks_concatenates_to_gather(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=50)
        fill_reference(store, 333)
        parts = list(store.iter_chunks())
        assert store.sealed_chunks == 6
        assert len(parts) == 7  # 6 sealed + active prefix
        for i, whole in enumerate(store.gather()):
            np.testing.assert_array_equal(
                np.concatenate([p[i] for p in parts]), whole
            )

    def test_scalar_broadcast_batches(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8)
        store.append_batch(20, np.arange(20), 2.5, True)
        a, b, flag = store.gather()
        np.testing.assert_array_equal(a, np.arange(20))
        np.testing.assert_array_equal(b, np.full(20, 2.5))
        assert flag.all()

    def test_column_subset_reads(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=16)
        a, _, flag = fill_reference(store, 100)
        got_a, got_flag = store.gather(("a", "flag"))
        np.testing.assert_array_equal(got_a, a)
        np.testing.assert_array_equal(got_flag, flag)
        for part in store.iter_chunks(("flag",)):
            assert len(part) == 1

    def test_empty_store(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4)
        assert len(store) == 0
        assert list(store.iter_chunks()) == []
        a, b, flag = store.gather()
        assert a.shape == b.shape == flag.shape == (0,)
        assert a.dtype == np.int64 and flag.dtype == np.bool_

    def test_sealed_chunks_are_immutable(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4)
        fill_reference(store, 12)
        first = next(iter(store.iter_chunks()))
        with pytest.raises(ValueError):
            first[0][0] = 99

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedColumnStore(SCHEMA, chunk_rows=0)
        with pytest.raises(ValueError):
            ChunkedColumnStore(())


class TestSpill:
    def test_spill_round_trip_is_byte_identical(self):
        mem = ChunkedColumnStore(SCHEMA, chunk_rows=32)
        disk = ChunkedColumnStore(SCHEMA, chunk_rows=32, spill=True)
        fill_reference(mem, 300, seed=7)
        fill_reference(disk, 300, seed=7)
        assert disk.spilled_chunks == disk.sealed_chunks > 0
        assert mem.spilled_chunks == 0
        for m, d in zip(mem.gather(), disk.gather()):
            assert m.tobytes() == d.tobytes()

    def test_spill_ring_files_exist_and_close_removes_them(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        fill_reference(store, 50)
        ring = store._spill_dir
        assert ring is not None and ring.is_dir()
        files = sorted(ring.glob("chunk-*.npz"))
        assert len(files) == store.sealed_chunks
        store.close()
        assert not ring.exists()
        # close() is idempotent and the store remains usable afterwards —
        # including appends past a *seal*, which must recreate the ring.
        store.close()
        assert len(store) == 0
        store.append_batch(20, np.arange(20), 1.0, True)
        assert store.spilled_chunks == 2
        np.testing.assert_array_equal(store.gather(("a",))[0], np.arange(20))
        store.close()

    def test_spill_ring_removed_on_gc(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        fill_reference(store, 50)
        ring = Path(store._spill_dir)
        del store
        gc.collect()
        assert not ring.exists()

    def test_streaming_read_interleaved_with_appends(self):
        """Chunks sealed so far stream correctly while the store grows."""
        store = ChunkedColumnStore(SCHEMA, chunk_rows=10, spill=True)
        store.append_batch(25, np.arange(25), 0.5, False)
        seen = [p[0].copy() for p in store.iter_chunks(("a",))]
        store.append_batch(25, np.arange(25, 50), 0.5, False)
        np.testing.assert_array_equal(np.concatenate(seen), np.arange(25))
        np.testing.assert_array_equal(store.gather(("a",))[0], np.arange(50))


class TestSpillFaults:
    """Injected failing-filesystem shims: bounded retry, typed errors."""

    @pytest.fixture(autouse=True)
    def _fast_backoff(self, monkeypatch):
        monkeypatch.setattr(chunked, "_SPILL_BACKOFF_S", 0.0)

    def test_persistent_write_failure_is_typed_after_retries(self, monkeypatch):
        calls = []

        def enospc(path, **arrays):
            calls.append(path)
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(chunked, "_SAVEZ", enospc)
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4, spill=True)
        with pytest.raises(SpillError) as info:
            store.append_batch(8, np.arange(8), 0.0, False)
        assert len(calls) == chunked._SPILL_ATTEMPTS
        assert info.value.chunk_id == 0
        assert info.value.path.name == "chunk-000000.npz"
        assert "No space left" in str(info.value)

    def test_transient_write_failure_heals_within_retry_budget(self, monkeypatch):
        real = np.savez
        failures = iter([True, True])  # first two attempts fail

        def flaky(path, **arrays):
            if next(failures, False):
                raise OSError(4, "Interrupted system call")
            real(path, **arrays)

        monkeypatch.setattr(chunked, "_SAVEZ", flaky)
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4, spill=True)
        store.append_batch(8, np.arange(8), 0.5, True)
        assert store.spilled_chunks == 2
        np.testing.assert_array_equal(store.gather(("a",))[0], np.arange(8))

    def test_corrupt_chunk_read_fails_immediately(self, monkeypatch):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4, spill=True)
        store.append_batch(8, np.arange(8), 0.5, True)
        calls = []

        def corrupt(path, **kwargs):
            calls.append(path)
            raise zipfile.BadZipFile("truncated central directory")

        monkeypatch.setattr(chunked, "_LOAD", corrupt)
        with pytest.raises(SpillError, match="corrupt") as info:
            store.gather()
        assert len(calls) == 1  # corruption never retries
        assert info.value.chunk_id == 0

    def test_truncated_chunk_file_names_the_file(self):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4, spill=True)
        store.append_batch(8, np.arange(8), 0.5, True)
        victim = sorted(store._spill_dir.glob("chunk-*.npz"))[1]
        victim.write_bytes(b"\x00" * 16)
        with pytest.raises(SpillError) as info:
            store.gather()
        assert info.value.path == victim
        assert info.value.chunk_id == 1

    def test_transient_read_failure_heals(self, monkeypatch):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=4, spill=True)
        store.append_batch(8, np.arange(8), 0.5, True)
        real = np.load
        failures = iter([True])

        def flaky(path, **kwargs):
            if next(failures, False):
                raise OSError(4, "Interrupted system call")
            return real(path, **kwargs)

        monkeypatch.setattr(chunked, "_LOAD", flaky)
        np.testing.assert_array_equal(store.gather(("a",))[0], np.arange(8))
