"""ScheduledQueue differential tests: every decision vs the legacy oracle.

The legacy behaviour is ``Strategy.select`` (full rescore, max score,
FIFO tie-break) plus ``should_prune`` (full scan) — both still present as
the scan backend / the exact predicate.  These tests drive randomised
queue churn (pushes, time advances, prunes, selections) through a
:class:`ScheduledQueue` and assert the incremental backends make
*identical* decisions, entry for entry, for all five strategies.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import (
    DEFAULT_EPSILON,
    PruningPolicy,
    prune_horizon,
    should_prune,
)
from repro.core.queueing import QueueDivergence, ScheduledQueue
from repro.core.registry import STRATEGY_NAMES, make_strategy
from repro.core.strategies import QueueEntry, Strategy
from tests.core.helpers import make_ctx, make_message, make_row

ALL_STRATEGIES = [
    ("fifo", {}),
    ("rl", {}),
    ("rl", {"aggregation": "min"}),
    ("eb", {}),
    ("pc", {}),
    ("ebpc", {"r": 0.0}),
    ("ebpc", {"r": 0.5}),
    ("ebpc", {"r": 1.0}),
]

STRATEGY_IDS = [f"{n}{p or ''}" for n, p in ALL_STRATEGIES]


# ---------------------------------------------------------------------- #
# Entry generation.
# ---------------------------------------------------------------------- #
def entry_strategy():
    """Hypothesis strategy for one queue entry's ingredients."""
    row = st.builds(
        dict,
        deadline_ms=st.one_of(st.none(), st.floats(1_000.0, 90_000.0)),
        price=st.one_of(st.none(), st.floats(0.0, 5.0)),
        nn=st.integers(1, 4),
        mean=st.floats(5.0, 300.0),
        variance=st.floats(0.0, 2_000.0),
    )
    return st.builds(
        dict,
        publish_time=st.floats(-30_000.0, 0.0),
        size_kb=st.floats(1.0, 120.0),
        msg_deadline=st.one_of(st.none(), st.floats(5_000.0, 60_000.0)),
        rows=st.lists(row, min_size=1, max_size=4),
    )


def build_entry(spec: dict, seq: int) -> QueueEntry:
    message = make_message(
        msg_id=seq,
        publish_time=spec["publish_time"],
        size_kb=spec["size_kb"],
        deadline_ms=spec["msg_deadline"],
    )
    rows = [
        make_row(f"S{seq}_{j}", **row_spec) for j, row_spec in enumerate(spec["rows"])
    ]
    return QueueEntry(message, rows, enqueue_time=0.0, seq=seq)


class LegacyQueue:
    """The pre-refactor servicing logic: full rescans over a plain list."""

    def __init__(self, strategy: Strategy, pruning: PruningPolicy, pd: float) -> None:
        self.strategy = strategy
        self.pruning = pruning
        self.pd = pd
        self.entries: list[QueueEntry] = []

    def push(self, entry: QueueEntry) -> None:
        self.entries.append(entry)

    def prune(self, now: float) -> list[QueueEntry]:
        pruned = [
            e
            for e in self.entries
            if should_prune(e, now, self.pd, self.pruning, DEFAULT_EPSILON)
        ]
        dead = {e.seq for e in pruned}
        self.entries = [e for e in self.entries if e.seq not in dead]
        return pruned

    def pop_best(self, ctx) -> QueueEntry:
        return self.entries.pop(self.strategy.select(self.entries, ctx))


def run_churn(name, params, batches, advances, pruning=None):
    """Feed identical churn to a ScheduledQueue and the legacy oracle.

    Each step advances time, pushes one batch of entries, prunes, then
    services one entry if any remain; every decision is compared.
    """
    strategy = make_strategy(name, **params)
    oracle_strategy = make_strategy(name, **params)
    policy = (
        pruning
        if pruning is not None
        else PruningPolicy.for_strategy(strategy.probabilistic_pruning)
    )
    queue = ScheduledQueue(strategy, policy, DEFAULT_EPSILON, planning_delay_ms=2.0)
    legacy = LegacyQueue(oracle_strategy, policy, 2.0)
    now, seq = 0.0, 0
    for batch, advance in zip(batches, advances):
        now += advance
        for spec in batch:
            entry = build_entry(spec, seq)
            queue.push(entry)
            legacy.push(entry)
            seq += 1
        ctx = make_ctx(now=now)
        pruned_new = queue.prune(now)
        pruned_old = legacy.prune(now)
        assert [e.seq for e in pruned_new] == [e.seq for e in pruned_old], (
            f"prune divergence at t={now}"
        )
        assert [e.seq for e in queue.entries()] == [e.seq for e in legacy.entries]
        if legacy.entries:
            assert queue.pop_best(ctx) is legacy.pop_best(ctx), (
                f"selection divergence at t={now}"
            )
    # Drain whatever is left without further pushes.
    while legacy.entries or len(queue):
        now += 1_000.0
        ctx = make_ctx(now=now)
        assert [e.seq for e in queue.prune(now)] == [e.seq for e in legacy.prune(now)]
        if not legacy.entries:
            assert not len(queue)
            break
        assert queue.pop_best(ctx) is legacy.pop_best(ctx)


@pytest.mark.parametrize(("name", "params"), ALL_STRATEGIES, ids=STRATEGY_IDS)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_differential_churn(name, params, data):
    n_steps = data.draw(st.integers(1, 6), label="steps")
    batches = [
        data.draw(st.lists(entry_strategy(), min_size=0, max_size=5), label=f"batch{i}")
        for i in range(n_steps)
    ]
    advances = [
        data.draw(st.floats(0.0, 20_000.0), label=f"advance{i}") for i in range(n_steps)
    ]
    run_churn(name, params, batches, advances)


@pytest.mark.parametrize(
    "policy", [PruningPolicy.NONE, PruningPolicy.EXPIRED, PruningPolicy.PROBABILISTIC]
)
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_differential_churn_pruning_overrides(policy, data):
    batches = [data.draw(st.lists(entry_strategy(), min_size=1, max_size=4))]
    batches += [data.draw(st.lists(entry_strategy(), min_size=0, max_size=4))]
    advances = [data.draw(st.floats(0.0, 40_000.0)) for _ in range(2)]
    run_churn("eb", {}, batches, advances, pruning=policy)


# ---------------------------------------------------------------------- #
# Capability contracts.
# ---------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(spec_a=entry_strategy(), spec_b=entry_strategy(), now=st.floats(0.0, 60_000.0))
def test_static_key_orders_like_rl_score(spec_a, spec_b, now):
    strategy = make_strategy("rl")
    a, b = build_entry(spec_a, 0), build_entry(spec_b, 1)
    ctx = make_ctx(now=now)
    score_order = strategy.score(a, ctx) - strategy.score(b, ctx)
    key_order = strategy.static_key(a) - strategy.static_key(b)
    if math.isnan(score_order):  # both unbounded: -inf scores on each side
        assert math.isnan(key_order)
    elif score_order != 0.0:
        assert key_order == pytest.approx(score_order, abs=1e-6)


@pytest.mark.parametrize("name", ["eb", "pc", "ebpc"])
@settings(max_examples=40, deadline=None)
@given(
    spec=entry_strategy(),
    now=st.floats(0.0, 30_000.0),
    later=st.floats(0.0, 60_000.0),
    ft_later=st.floats(0.0, 10_000.0),
)
def test_score_bound_holds_for_future_contexts(name, spec, now, later, ft_later):
    """The bound from score_and_bound dominates every future score."""
    strategy = make_strategy(name)
    entry = build_entry(spec, 0)
    _, bound = strategy.score_and_bound(entry, make_ctx(now=now))
    future = make_ctx(now=now + later, ft=ft_later)
    assert strategy.score(entry, future) <= bound + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    spec=entry_strategy(),
    now=st.floats(0.0, 200_000.0),
    policy=st.sampled_from([PruningPolicy.EXPIRED, PruningPolicy.PROBABILISTIC]),
)
def test_prune_horizon_is_conservative(spec, now, policy):
    """An entry is never prunable before its analytic horizon."""
    entry = build_entry(spec, 0)
    horizon = prune_horizon(entry, 2.0, policy, DEFAULT_EPSILON)
    if should_prune(entry, now, 2.0, policy, DEFAULT_EPSILON):
        assert now >= horizon - 1e-6


def test_rl_keyed_heap_survives_exact_key_tie_with_ulp_score_gap():
    """Regression: static keys that tie exactly while legacy scores differ
    by an ulp must not flip the selection to the heap's seq tie-break.

    These values make ``publish_time + deadline`` identical as floats for
    both entries, yet the legacy score (computed as ``-(adl - hdl)``)
    differs in the last ulp — the oracle picks the higher score, a naive
    keyed heap would pick the lower seq.
    """
    spec = {"size_kb": 10.0, "msg_deadline": None}
    a = build_entry(
        {**spec, "publish_time": 60979.055688185814,
         "rows": [{"deadline_ms": 2780.596673231448, "price": 1.0, "nn": 1,
                   "mean": 50.0, "variance": 100.0}]},
        seq=0,
    )
    b = build_entry(
        {**spec, "publish_time": 35991.30179913361,
         "rows": [{"deadline_ms": 27768.350562283653, "price": 1.0, "nn": 1,
                   "mean": 50.0, "variance": 100.0}]},
        seq=1,
    )
    strategy = make_strategy("rl")
    assert strategy.static_key(a) == strategy.static_key(b)  # exact float tie
    queue = ScheduledQueue(
        strategy, PruningPolicy.NONE, DEFAULT_EPSILON, planning_delay_ms=2.0,
        validate=True,  # raises QueueDivergence if the heap disagrees
    )
    queue.push(a)
    queue.push(b)
    ctx = make_ctx(now=139217.14245634925)
    entries = [a, b]
    oracle = entries[strategy.select(entries, ctx)]
    assert queue.pop_best(ctx) is oracle


# ---------------------------------------------------------------------- #
# Structure and API.
# ---------------------------------------------------------------------- #
class TestScheduledQueue:
    def make(self, name="eb", **kw):
        strategy = make_strategy(name)
        return ScheduledQueue(
            strategy,
            PruningPolicy.for_strategy(strategy.probabilistic_pruning),
            DEFAULT_EPSILON,
            planning_delay_ms=2.0,
            **kw,
        )

    def test_backend_selection_matches_score_kind(self):
        assert self.make("fifo").backend_name == "heap"
        assert self.make("rl").backend_name == "heap"
        assert self.make("eb").backend_name == "heap"
        assert self.make("pc").backend_name == "heap"
        assert self.make("ebpc").backend_name == "heap"
        assert self.make("eb", backend="scan").backend_name == "scan"

    def test_unknown_dynamic_strategy_falls_back_to_scan(self):
        class Opaque(Strategy):
            name = "opaque"

            def score(self, entry, ctx):
                return entry.message.size_kb * math.sin(ctx.now)

        queue = ScheduledQueue(Opaque(), PruningPolicy.EXPIRED)
        assert queue.backend_name == "scan"
        with pytest.raises(ValueError):
            ScheduledQueue(Opaque(), PruningPolicy.EXPIRED, backend="heap")

    def test_rejects_bad_backend_and_duplicate_seq(self):
        with pytest.raises(ValueError):
            self.make(backend="quantum")
        queue = self.make()
        entry = build_entry(
            {"publish_time": 0.0, "size_kb": 10.0, "msg_deadline": None,
             "rows": [{"deadline_ms": 30_000.0, "price": 1.0, "nn": 1,
                       "mean": 50.0, "variance": 100.0}]},
            seq=7,
        )
        queue.push(entry)
        with pytest.raises(ValueError):
            queue.push(entry)

    def test_pop_from_empty_raises(self):
        for backend in ("auto", "scan"):
            with pytest.raises(IndexError):
                self.make(backend=backend).pop_best(make_ctx())

    def test_validate_mode_passes_on_honest_backend(self):
        queue = self.make(validate=True)
        for seq in range(10):
            queue.push(
                build_entry(
                    {"publish_time": -100.0 * seq, "size_kb": 20.0,
                     "msg_deadline": None,
                     "rows": [{"deadline_ms": 30_000.0, "price": 1.0, "nn": 1,
                               "mean": 50.0, "variance": 400.0}]},
                    seq=seq,
                )
            )
        queue.prune(1_000.0)
        while queue:
            queue.pop_best(make_ctx(now=5_000.0))

    def test_validate_mode_catches_a_lying_backend(self):
        queue = self.make(validate=True)
        for seq in range(4):
            queue.push(
                build_entry(
                    {"publish_time": -1_000.0 * seq, "size_kb": 20.0,
                     "msg_deadline": None,
                     "rows": [{"deadline_ms": 30_000.0, "price": 1.0, "nn": 1,
                               "mean": 50.0, "variance": 400.0}]},
                    seq=seq,
                )
            )

        class WrongBackend:
            name = "wrong"

            def __init__(self, live):
                self._live = live

            def pop_best(self, ctx):
                seq = max(self._live)  # deliberately not the oracle's pick
                return self._live.pop(seq)

        queue._backend = WrongBackend(queue._live)
        with pytest.raises(QueueDivergence):
            queue.pop_best(make_ctx(now=20_000.0))

    def test_heap_compaction_bounds_stale_records(self):
        """Mass pruning must not leave dead heap records for the queue's life."""
        queue = self.make("eb")
        for seq in range(400):
            queue.push(
                build_entry(
                    {"publish_time": -40_000.0, "size_kb": 20.0,
                     "msg_deadline": None,
                     "rows": [{"deadline_ms": 30_000.0, "price": 1.0, "nn": 1,
                               "mean": 50.0, "variance": 400.0}]},
                    seq=seq,
                )
            )
        # Every entry is decades past hopeless at t = 1e6.
        pruned = queue.prune(1_000_000.0)
        assert len(pruned) == 400
        assert len(queue) == 0
        assert len(queue._backend._heap) <= 16  # compacted, not 400 stale records

    def test_entries_snapshot_in_seq_order(self):
        queue = self.make("fifo")
        for seq in (1, 5, 9):
            queue.push(
                build_entry(
                    {"publish_time": 0.0, "size_kb": 10.0, "msg_deadline": None,
                     "rows": [{"deadline_ms": None, "price": None, "nn": 1,
                               "mean": 10.0, "variance": 0.0}]},
                    seq=seq,
                )
            )
        assert [e.seq for e in queue.entries()] == [1, 5, 9]
        assert len(queue) == 3


# ---------------------------------------------------------------------- #
# End-to-end: full simulations, every backend, identical results.
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_simulation_backends_equivalent(name):
    from repro.sim.config import SimulationConfig
    from repro.sim.runner import run_simulation
    from repro.workload.scenarios import Scenario

    params = {"r": 0.5} if name == "ebpc" else {}
    base = SimulationConfig(
        seed=3,
        scenario=Scenario.SSD,
        strategy=name,
        strategy_params=params,
        publishing_rate_per_min=15.0,  # congested: queues actually deepen
        duration_ms=30_000.0,
    )
    incremental = run_simulation(base)
    oracle = run_simulation(base.replace(queue_backend="scan"))
    assert incremental == oracle
    # Validate mode re-runs with per-decision cross-checking and must not
    # raise QueueDivergence anywhere in the run.
    validated = run_simulation(base.replace(queue_validate=True))
    assert validated == incremental
