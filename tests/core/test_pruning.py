"""Invalid-message detection tests (Eq. 11)."""

from __future__ import annotations

import math

import pytest

from repro.core.pruning import (
    DEFAULT_EPSILON,
    PruningPolicy,
    entry_is_expired,
    entry_is_hopeless,
    prune_horizon,
    should_prune,
)
from tests.core.helpers import make_entry, make_message, make_row


class TestExpiry:
    def test_live_entry_not_expired(self):
        entry = make_entry(rows=[make_row(deadline_ms=30_000.0)])
        assert not entry_is_expired(entry, now=10_000.0)

    def test_all_deadlines_passed(self):
        entry = make_entry(
            rows=[make_row("S1", deadline_ms=10_000.0), make_row("S2", deadline_ms=20_000.0)]
        )
        assert not entry_is_expired(entry, now=15_000.0)  # S2 still alive
        assert entry_is_expired(entry, now=25_000.0)

    def test_boundary_is_alive(self):
        entry = make_entry(rows=[make_row(deadline_ms=10_000.0)])
        assert not entry_is_expired(entry, now=10_000.0)

    def test_unbounded_never_expires(self):
        entry = make_entry(
            make_message(deadline_ms=None), rows=[make_row(deadline_ms=None)]
        )
        assert not entry_is_expired(entry, now=1e12)


class TestHopeless:
    def test_fresh_entry_not_hopeless(self):
        entry = make_entry(rows=[make_row(deadline_ms=30_000.0, nn=1, mean=100.0)])
        assert not entry_is_hopeless(entry, 0.0, 2.0)

    def test_infeasible_deadline_is_hopeless_before_expiry(self):
        # Deadline 4 s, but the remaining path needs ~15 s: hopeless at t=0,
        # long before the message actually expires.  This is the paper's
        # early-deletion win over plain expiry.
        entry = make_entry(rows=[make_row(deadline_ms=4_000.0, nn=2, mean=300.0, variance=400.0)])
        assert entry_is_hopeless(entry, 0.0, 2.0)
        assert not entry_is_expired(entry, 0.0)

    def test_one_feasible_row_saves_entry(self):
        entry = make_entry(
            rows=[
                make_row("S1", deadline_ms=4_000.0, nn=2, mean=300.0),  # hopeless
                make_row("S2", deadline_ms=60_000.0, nn=1, mean=50.0),  # fine
            ]
        )
        assert not entry_is_hopeless(entry, 0.0, 2.0)

    def test_epsilon_subsumes_expiry(self):
        entry = make_entry(rows=[make_row(deadline_ms=10_000.0)])
        assert entry_is_expired(entry, now=60_000.0)
        assert entry_is_hopeless(entry, 60_000.0, 2.0)

    def test_invalid_epsilon(self):
        entry = make_entry()
        with pytest.raises(ValueError):
            entry_is_hopeless(entry, 0.0, 2.0, epsilon=0.0)


class TestPolicies:
    def test_none_never_prunes(self):
        entry = make_entry(rows=[make_row(deadline_ms=1.0)])
        assert not should_prune(entry, 1e9, 2.0, PruningPolicy.NONE)

    def test_expired_policy(self):
        entry = make_entry(rows=[make_row(deadline_ms=4_000.0, nn=2, mean=300.0)])
        # Infeasible but not yet expired: EXPIRED keeps it, PROBABILISTIC kills it.
        assert not should_prune(entry, 0.0, 2.0, PruningPolicy.EXPIRED)
        assert should_prune(entry, 0.0, 2.0, PruningPolicy.PROBABILISTIC)

    def test_for_strategy_mapping(self):
        assert PruningPolicy.for_strategy(True) is PruningPolicy.PROBABILISTIC
        assert PruningPolicy.for_strategy(False) is PruningPolicy.EXPIRED

    def test_default_epsilon_is_papers(self):
        assert DEFAULT_EPSILON == 5e-4


class TestPruneHorizon:
    def test_unbounded_row_never_reaches_horizon(self):
        entry = make_entry(rows=[make_row(deadline_ms=None)])
        assert prune_horizon(entry, 2.0, PruningPolicy.PROBABILISTIC) == math.inf
        assert prune_horizon(entry, 2.0, PruningPolicy.EXPIRED) == math.inf

    def test_epsilon_at_least_one_prunable_from_start(self):
        # ε ≥ 1 means every probability is < ε; the guard must win even
        # when a row is unbounded (success exactly 1 is still < 1.5).
        entry = make_entry(rows=[make_row(deadline_ms=None)])
        assert prune_horizon(entry, 2.0, PruningPolicy.PROBABILISTIC, epsilon=1.5) == -math.inf
        assert should_prune(entry, 0.0, 2.0, PruningPolicy.PROBABILISTIC, 1.5)

    def test_invalid_epsilon_rejected_before_row_inspection(self):
        entry = make_entry(rows=[make_row(deadline_ms=None)])
        with pytest.raises(ValueError):
            prune_horizon(entry, 2.0, PruningPolicy.PROBABILISTIC, epsilon=0.0)

    def test_none_policy_is_never(self):
        assert prune_horizon(make_entry(), 2.0, PruningPolicy.NONE) == math.inf
