"""core.checkpoint: atomic directory snapshots, manifests, refusal rules."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.core import checkpoint as ck
from repro.core.chunked import ChunkedColumnStore, SpillError
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointMismatch,
    checkpoint_size_bytes,
    code_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
    timed_save,
)

SCHEMA = (("a", np.int64), ("b", np.float64))


def fill(store: ChunkedColumnStore, n: int) -> np.ndarray:
    values = np.arange(n, dtype=np.int64)
    store.append_batch(n, values, values * 0.5)
    return values


class TestSaveLoadRoundTrip:
    def test_plain_state_round_trips(self, tmp_path):
        state = {"answer": 42, "arr": np.arange(5), "nested": [1, {"k": "v"}]}
        path = save_checkpoint(
            state, tmp_path / "ckpt-000000000001",
            fingerprints={"config": "abc"}, meta={"note": "hello"},
        )
        assert path == tmp_path / "ckpt-000000000001"
        loaded, manifest = load_checkpoint(path, fingerprints={"config": "abc"})
        assert loaded["answer"] == 42
        np.testing.assert_array_equal(loaded["arr"], state["arr"])
        assert loaded["nested"] == state["nested"]
        assert manifest["version"] == CHECKPOINT_VERSION
        assert manifest["code"] == code_fingerprint()
        assert manifest["fingerprints"] == {"config": "abc"}
        assert manifest["meta"] == {"note": "hello"}
        assert manifest["chunks"] == []

    def test_layout_on_disk(self, tmp_path):
        path = save_checkpoint({"x": 1}, tmp_path / "ckpt-a")
        assert (path / "MANIFEST.json").is_file()
        assert (path / "state.pkl").is_file()
        assert (path / "chunks").is_dir()
        # No temp residue anywhere in the parent.
        assert not list(tmp_path.glob(".*"))

    def test_refuses_overwrite_unless_asked(self, tmp_path):
        target = tmp_path / "ckpt-a"
        save_checkpoint({"v": 1}, target)
        with pytest.raises(CheckpointError):
            save_checkpoint({"v": 2}, target)
        save_checkpoint({"v": 2}, target, overwrite=True)
        state, _ = load_checkpoint(target)
        assert state == {"v": 2}
        assert not list(tmp_path.glob(".*"))  # old snapshot fully reaped

    def test_failed_save_leaves_no_residue(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            save_checkpoint({"bad": Unpicklable()}, tmp_path / "ckpt-a")
        assert not list(tmp_path.iterdir())

    def test_stale_tmp_from_crashed_writer_is_swept(self, tmp_path):
        stale = tmp_path / ".ckpt-a.tmp-99999"
        stale.mkdir()
        (stale / "state.pkl").write_bytes(b"junk")
        save_checkpoint({"v": 1}, tmp_path / "ckpt-a")
        assert not stale.exists()

    def test_timed_save_accounting(self, tmp_path):
        path, seconds, size = timed_save({"v": 1}, tmp_path / "ckpt-a")
        assert path.is_dir()
        assert seconds >= 0.0
        assert size == checkpoint_size_bytes(path) > 0


class TestRefusalRules:
    def test_version_mismatch_refused(self, tmp_path):
        path = save_checkpoint({"v": 1}, tmp_path / "ckpt-a")
        manifest = json.loads((path / "MANIFEST.json").read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        (path / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointMismatch, match="no cross-version"):
            load_checkpoint(path)

    def test_code_mismatch_refused_unless_overridden(self, tmp_path):
        path = save_checkpoint({"v": 1}, tmp_path / "ckpt-a")
        manifest = json.loads((path / "MANIFEST.json").read_text())
        manifest["code"] = "f" * 64
        (path / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointMismatch, match="different code tree"):
            load_checkpoint(path)
        state, _ = load_checkpoint(path, allow_code_mismatch=True)
        assert state == {"v": 1}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = save_checkpoint(
            {"v": 1}, tmp_path / "ckpt-a", fingerprints={"config": "abc"}
        )
        with pytest.raises(CheckpointMismatch, match="config"):
            load_checkpoint(path, fingerprints={"config": "xyz"})
        # A key absent from the snapshot is also a mismatch, not a pass.
        with pytest.raises(CheckpointMismatch):
            load_checkpoint(path, fingerprints={"other": "abc"})

    def test_not_a_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_manifest(tmp_path)
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing")

    def test_corrupt_manifest(self, tmp_path):
        path = save_checkpoint({"v": 1}, tmp_path / "ckpt-a")
        (path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            read_manifest(path)
        (path / "MANIFEST.json").write_text('["a", "list"]')
        with pytest.raises(CheckpointError, match="malformed"):
            read_manifest(path)


class TestLatestCheckpoint:
    def test_none_for_missing_or_empty(self, tmp_path):
        assert latest_checkpoint(tmp_path / "absent") is None
        assert latest_checkpoint(tmp_path) is None

    def test_picks_newest_by_name(self, tmp_path):
        save_checkpoint({"v": 1}, tmp_path / "ckpt-000000000100")
        save_checkpoint({"v": 2}, tmp_path / "ckpt-000000000200")
        assert latest_checkpoint(tmp_path) == tmp_path / "ckpt-000000000200"

    def test_skips_invalid_snapshots(self, tmp_path):
        save_checkpoint({"v": 1}, tmp_path / "ckpt-000000000100")
        broken = tmp_path / "ckpt-000000000900"
        broken.mkdir()  # no manifest: must not be trusted
        assert latest_checkpoint(tmp_path) == tmp_path / "ckpt-000000000100"


class TestSpilledStoreTransfer:
    """Spilled chunks ride as files in chunks/, not inlined pickle bytes."""

    def test_spilled_store_round_trips_through_checkpoint(self, tmp_path):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        values = fill(store, 50)
        assert store.spilled_chunks > 0
        path = save_checkpoint({"store": store}, tmp_path / "ckpt-a")
        manifest = read_manifest(path)
        assert len(manifest["chunks"]) == store.spilled_chunks
        assert all(ref.endswith(".npz") for ref in manifest["chunks"])
        loaded, _ = load_checkpoint(path)
        restored = loaded["store"]
        assert restored.spilled_chunks == store.spilled_chunks
        np.testing.assert_array_equal(restored.gather(("a",))[0], values)

    def test_restored_store_is_independent_of_checkpoint_dir(self, tmp_path):
        import shutil

        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        values = fill(store, 40)
        path = save_checkpoint({"store": store}, tmp_path / "ckpt-a")
        restored, _ = load_checkpoint(path)
        shutil.rmtree(path)  # the snapshot must not be a live dependency
        np.testing.assert_array_equal(restored["store"].gather(("a",))[0], values)

    def test_memory_store_pickles_without_transfer(self, tmp_path):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8)
        values = fill(store, 40)
        clone = pickle.loads(pickle.dumps(store))
        np.testing.assert_array_equal(clone.gather(("a",))[0], values)

    def test_spilled_store_refuses_plain_pickle_restore_without_ring(self):
        # Outside a checkpoint, spilled chunks are inlined into the pickle
        # ("mem" encoding) so a plain pickle round trip still works.
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        values = fill(store, 40)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.spilled_chunks == store.spilled_chunks
        np.testing.assert_array_equal(clone.gather(("a",))[0], values)

    def test_ref_restore_outside_transfer_is_a_typed_error(self, tmp_path):
        store = ChunkedColumnStore(SCHEMA, chunk_rows=8, spill=True)
        fill(store, 40)
        path = save_checkpoint({"store": store}, tmp_path / "ckpt-a")
        # Unpickling state.pkl directly (no spill_transfer context) must
        # fail with the typed SpillError, not a random FileNotFoundError.
        with pytest.raises(SpillError):
            with open(path / "state.pkl", "rb") as fh:
                pickle.load(fh)


class TestCodeFingerprint:
    def test_stable_and_memoized(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_covers_source_tree(self, monkeypatch):
        # Clearing the memo and recomputing yields the same digest: the
        # fingerprint is a pure function of the on-disk tree.
        first = code_fingerprint()
        monkeypatch.setattr(ck, "_CODE_FINGERPRINT", None)
        assert code_fingerprint() == first
