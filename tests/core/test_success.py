"""success(s, m) / fdl / effective-deadline tests (Eqs. 4–5)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.success import (
    effective_deadline,
    fdl_distribution,
    remaining_lifetime,
    success_probability,
)
from repro.stats.normal import normal_cdf
from tests.core.helpers import make_message, make_row


class TestEffectiveDeadline:
    def test_subscriber_only(self):
        row = make_row(deadline_ms=30_000.0)
        msg = make_message(deadline_ms=None)
        assert effective_deadline(row, msg) == 30_000.0

    def test_message_only(self):
        row = make_row(deadline_ms=None)
        msg = make_message(deadline_ms=20_000.0)
        assert effective_deadline(row, msg) == 20_000.0

    def test_both_takes_min(self):
        row = make_row(deadline_ms=30_000.0)
        msg = make_message(deadline_ms=20_000.0)
        assert effective_deadline(row, msg) == 20_000.0

    def test_neither_is_inf(self):
        row = make_row(deadline_ms=None)
        msg = make_message(deadline_ms=None)
        assert math.isinf(effective_deadline(row, msg))


class TestFdlDistribution:
    def test_formula(self):
        # fdl = NN*PD + size*TR_p, TR_p ~ N(100, 400), size=50, NN=2, PD=2.
        row = make_row(nn=2, mean=100.0, variance=400.0)
        dist = fdl_distribution(row, size_kb=50.0, processing_delay_ms=2.0)
        assert dist.mean == pytest.approx(2 * 2.0 + 50.0 * 100.0)
        assert dist.variance == pytest.approx(50.0**2 * 400.0)

    def test_local_row_is_degenerate(self):
        row = make_row(nn=0, mean=0.0, variance=0.0)
        dist = fdl_distribution(row, size_kb=50.0, processing_delay_ms=2.0)
        assert dist.mean == 0.0 and dist.variance == 0.0


class TestSuccessProbability:
    def test_matches_hand_formula(self):
        row = make_row(deadline_ms=30_000.0, nn=2, mean=100.0, variance=400.0)
        msg = make_message(publish_time=0.0, size_kb=50.0)
        now = 5_000.0
        # P(hdl + NN*PD + size*TR <= adl) = Phi(((adl-hdl-NN*PD)/size - mu)/sigma)
        budget = (30_000.0 - 5_000.0 - 2 * 2.0) / 50.0
        expected = normal_cdf(budget, 100.0, 20.0)
        assert success_probability(row, msg, now, 2.0) == pytest.approx(expected)

    def test_extra_delay_lowers_success(self):
        # Deadline near the feasibility edge so the CDF is on its ramp.
        row = make_row(deadline_ms=16_000.0, nn=2, mean=100.0, variance=400.0)
        msg = make_message()
        base = success_probability(row, msg, 10_000.0, 2.0)
        postponed = success_probability(row, msg, 10_000.0, 2.0, extra_delay_ms=5_000.0)
        assert 0.0 < postponed < base < 1.0

    def test_unbounded_pair_always_succeeds(self):
        row = make_row(deadline_ms=None)
        msg = make_message(deadline_ms=None)
        assert success_probability(row, msg, 1e12, 2.0) == 1.0

    def test_expired_message_near_zero(self):
        row = make_row(deadline_ms=10_000.0)
        msg = make_message(publish_time=0.0)
        assert success_probability(row, msg, now=60_000.0, processing_delay_ms=2.0) < 1e-6

    def test_local_subscriber_step_function(self):
        row = make_row(deadline_ms=10_000.0, nn=0, mean=0.0, variance=0.0)
        msg = make_message()
        assert success_probability(row, msg, now=5_000.0, processing_delay_ms=2.0) == 1.0
        assert success_probability(row, msg, now=15_000.0, processing_delay_ms=2.0) == 0.0

    @given(
        now=st.floats(0, 120_000),
        deadline=st.floats(1_000, 90_000),
        nn=st.integers(0, 6),
        mean=st.floats(10, 500),
        var=st.floats(0, 10_000),
        size=st.floats(1, 200),
    )
    @settings(max_examples=200)
    def test_probability_bounds_property(self, now, deadline, nn, mean, var, size):
        row = make_row(deadline_ms=deadline, nn=nn, mean=mean, variance=var)
        msg = make_message(size_kb=size)
        p = success_probability(row, msg, now, 2.0)
        assert 0.0 <= p <= 1.0

    @given(
        deadline=st.floats(1_000, 90_000),
        t1=st.floats(0, 100_000),
        t2=st.floats(0, 100_000),
    )
    @settings(max_examples=200)
    def test_success_decreases_with_age(self, deadline, t1, t2):
        row = make_row(deadline_ms=deadline)
        msg = make_message()
        early, late = min(t1, t2), max(t1, t2)
        assert success_probability(row, msg, late, 2.0) <= success_probability(
            row, msg, early, 2.0
        ) + 1e-12


class TestRemainingLifetime:
    def test_value(self):
        row = make_row(deadline_ms=30_000.0)
        msg = make_message(publish_time=1_000.0)
        assert remaining_lifetime(row, msg, now=11_000.0) == 20_000.0

    def test_negative_when_expired(self):
        row = make_row(deadline_ms=10_000.0)
        msg = make_message()
        assert remaining_lifetime(row, msg, now=20_000.0) == -10_000.0

    def test_unbounded_is_inf(self):
        row = make_row(deadline_ms=None)
        msg = make_message(deadline_ms=None)
        assert math.isinf(remaining_lifetime(row, msg, now=5.0))
