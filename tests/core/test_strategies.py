"""Strategy selection behaviour."""

from __future__ import annotations

import math

import pytest

from repro.core.registry import STRATEGY_NAMES, make_strategy
from repro.core.strategies import (
    EbpcStrategy,
    EbStrategy,
    FifoStrategy,
    PcStrategy,
    QueueEntry,
    RemainingLifetimeStrategy,
)
from tests.core.helpers import make_ctx, make_entry, make_message, make_row


class TestFifo:
    def test_selects_oldest(self):
        entries = [make_entry(seq=i) for i in (3, 1, 2)]
        assert FifoStrategy().select(entries, make_ctx()) == 1

    def test_no_probabilistic_pruning(self):
        assert not FifoStrategy().probabilistic_pruning


class TestRemainingLifetime:
    def test_selects_smallest_average_lifetime(self):
        urgent = make_entry(rows=[make_row(deadline_ms=5_000.0)], seq=0)
        relaxed = make_entry(rows=[make_row(deadline_ms=50_000.0)], seq=1)
        assert RemainingLifetimeStrategy().select([relaxed, urgent], make_ctx()) == 1

    def test_averages_multiple_lifetimes(self):
        # avg(5s, 55s) = 30s beats a single 40s.
        multi = make_entry(
            rows=[make_row("S1", deadline_ms=5_000.0), make_row("S2", deadline_ms=55_000.0)],
            seq=0,
        )
        single = make_entry(rows=[make_row("S3", deadline_ms=40_000.0)], seq=1)
        assert RemainingLifetimeStrategy().select([single, multi], make_ctx()) == 1

    def test_unbounded_rows_excluded_from_average(self):
        mixed = make_entry(
            rows=[make_row("S1", deadline_ms=5_000.0), make_row("S2", deadline_ms=None)],
            seq=0,
        )
        ctx = make_ctx(now=0.0)
        assert RemainingLifetimeStrategy().score(mixed, ctx) == pytest.approx(-5_000.0)

    def test_fully_unbounded_entry_scores_lowest(self):
        unbounded = make_entry(
            make_message(deadline_ms=None), rows=[make_row(deadline_ms=None)], seq=0
        )
        assert RemainingLifetimeStrategy().score(unbounded, make_ctx()) == -math.inf

    def test_min_aggregation_variant(self):
        entry = make_entry(
            rows=[make_row("S1", deadline_ms=5_000.0), make_row("S2", deadline_ms=55_000.0)],
            seq=0,
        )
        ctx = make_ctx(now=0.0)
        assert RemainingLifetimeStrategy(aggregation="min").score(entry, ctx) == pytest.approx(
            -5_000.0
        )
        assert RemainingLifetimeStrategy(aggregation="min").name == "rl(min)"

    def test_invalid_aggregation(self):
        with pytest.raises(ValueError):
            RemainingLifetimeStrategy(aggregation="median")


class TestEb:
    def test_prefers_more_subscriptions(self):
        one = make_entry(rows=[make_row("S1")], seq=0)
        two = make_entry(rows=[make_row("S2"), make_row("S3")], seq=1)
        assert EbStrategy().select([one, two], make_ctx()) == 1

    def test_prefers_higher_price(self):
        cheap = make_entry(rows=[make_row("S1", price=1.0)], seq=0)
        dear = make_entry(rows=[make_row("S2", price=3.0)], seq=1)
        assert EbStrategy().select([cheap, dear], make_ctx()) == 1

    def test_prefers_higher_success(self):
        # Same price; the far path's expected delay (~25 s) sits on the CDF
        # ramp for a 30 s deadline, the near path's (~2.5 s) does not.
        far = make_entry(rows=[make_row("S1", nn=4, mean=500.0)], seq=0)
        near = make_entry(rows=[make_row("S2", nn=1, mean=50.0)], seq=1)
        assert EbStrategy().select([far, near], make_ctx()) == 1

    def test_probabilistic_pruning_enabled(self):
        assert EbStrategy().probabilistic_pruning


class TestPc:
    def test_prefers_urgent_over_safe(self):
        # Safe message: huge slack, postponing costs nothing.  Urgent
        # message: deadline near the feasibility edge, postponing kills it.
        safe = make_entry(rows=[make_row("S1", deadline_ms=500_000.0)], seq=0)
        urgent = make_entry(rows=[make_row("S2", deadline_ms=9_000.0, nn=1, mean=100.0)], seq=1)
        ctx = make_ctx(ft=3_750.0)
        assert PcStrategy().select([safe, urgent], ctx) == 1

    def test_eb_would_choose_differently(self):
        # The same pair under EB picks the safe one — the motivating
        # difference between the two strategies (Section 5.2).
        safe = make_entry(rows=[make_row("S1", deadline_ms=500_000.0)], seq=0)
        urgent = make_entry(rows=[make_row("S2", deadline_ms=9_000.0, nn=1, mean=100.0)], seq=1)
        ctx = make_ctx(ft=3_750.0)
        assert EbStrategy().select([safe, urgent], ctx) == 0


class TestEbpc:
    def test_r_endpoints_match_components(self):
        entries = [
            make_entry(rows=[make_row("S1", deadline_ms=500_000.0)], seq=0),
            make_entry(rows=[make_row("S2", deadline_ms=9_000.0, nn=1, mean=100.0)], seq=1),
        ]
        ctx = make_ctx(ft=3_750.0)
        for entry in entries:
            assert EbpcStrategy(r=1.0).score(entry, ctx) == pytest.approx(
                EbStrategy().score(entry, ctx)
            )
            assert EbpcStrategy(r=0.0).score(entry, ctx) == pytest.approx(
                PcStrategy().score(entry, ctx)
            )

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            EbpcStrategy(r=2.0)

    def test_name_includes_r(self):
        assert EbpcStrategy(r=0.6).name == "ebpc(r=0.6)"


class TestSelection:
    def test_tie_break_is_fifo(self):
        # Identical entries: earliest seq wins.
        entries = [make_entry(seq=5), make_entry(seq=2), make_entry(seq=7)]
        assert EbStrategy().select(entries, make_ctx()) == 1

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            FifoStrategy().select([], make_ctx())

    def test_entry_requires_rows(self):
        with pytest.raises(ValueError):
            QueueEntry(make_message(), rows=[], enqueue_time=0.0, seq=0)


class TestRegistry:
    def test_all_names_construct(self):
        for name in STRATEGY_NAMES:
            strategy = make_strategy(name)
            assert strategy.name.startswith(name)

    def test_ebpc_with_r(self):
        s = make_strategy("ebpc", r=0.7)
        assert isinstance(s, EbpcStrategy)
        assert s.r == 0.7

    def test_rl_with_aggregation(self):
        s = make_strategy("rl", aggregation="min")
        assert isinstance(s, RemainingLifetimeStrategy)
        assert s.aggregation == "min"

    def test_case_insensitive(self):
        assert isinstance(make_strategy("  EB "), EbStrategy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_strategy("edf")

    def test_stray_params_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("fifo", r=0.5)
