"""GrowableArray: growth, aliasing contract, chunk-sealing helpers.

The view-aliasing semantics pinned here are groundwork for chunk
sealing: a ``view()`` aliases the *current* buffer — in-place appends
remain visible through it, while a reallocating grow silently detaches
it (the view keeps the old buffer).  Snapshot holders must copy; the
chunked stores rely on ``detach()`` instead, which hands the buffer
over zero-copy at seal time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.growable import GrowableArray


class TestGrowth:
    def test_append_and_extend(self):
        g = GrowableArray(np.int64, capacity=2)
        g.append(1)
        g.extend(np.array([2, 3, 4], dtype=np.int64))
        assert len(g) == 4
        np.testing.assert_array_equal(g.view(), [1, 2, 3, 4])

    def test_extend_scalar_broadcasts(self):
        g = GrowableArray(np.float64, capacity=2)
        g.extend_scalar(7.5, 5)
        g.extend_scalar(1.0, 0)  # no-op
        g.extend_scalar(2.0, -3)  # no-op
        np.testing.assert_array_equal(g.view(), [7.5] * 5)

    def test_capacity_doubles(self):
        g = GrowableArray(np.int64, capacity=4)
        g.extend(np.arange(9))
        assert g.capacity >= 9
        np.testing.assert_array_equal(g.view(), np.arange(9))


class TestViewAliasing:
    """Pin the aliasing contract of ``view()`` (see the class docstring)."""

    def test_view_sees_inplace_appends(self):
        g = GrowableArray(np.int64, capacity=8)
        g.extend(np.array([1, 2, 3]))
        v = g.view()
        g.append(4)  # fits in place: no reallocation
        # The old view still aliases the live buffer: the slot it covers
        # is shared storage (its *length* is frozen at 3, though).
        assert v.base is g.view().base
        np.testing.assert_array_equal(g.view()[:3], v)

    def test_view_goes_stale_across_reallocating_grow(self):
        g = GrowableArray(np.int64, capacity=2)
        g.extend(np.array([10, 20]))
        v = g.view()
        g.extend(np.array([30, 40, 50]))  # forces reallocation
        # The snapshot kept the OLD buffer: same values as at snapshot
        # time, no longer the live storage.
        np.testing.assert_array_equal(v, [10, 20])
        assert v.base is not g.view().base
        # Mutations after the grow are invisible through the stale view.
        g.view()[0] = 99
        assert v[0] == 10

    def test_snapshot_requires_copy(self):
        g = GrowableArray(np.float64, capacity=4)
        g.extend(np.array([1.0, 2.0]))
        snap = g.view().copy()
        g.extend(np.arange(100, dtype=np.float64))
        np.testing.assert_array_equal(snap, [1.0, 2.0])


class TestDetach:
    def test_full_buffer_detaches_zero_copy(self):
        g = GrowableArray(np.int64, capacity=4)
        g.extend(np.arange(4))
        buf = g._data
        out = g.detach()
        assert out is buf  # exactly-full: ownership transfer, no copy
        assert not out.flags.writeable
        assert len(g) == 0
        np.testing.assert_array_equal(out, np.arange(4))

    def test_partial_buffer_detaches_a_copy(self):
        g = GrowableArray(np.int64, capacity=8)
        g.extend(np.arange(3))
        out = g.detach()
        assert out.shape == (3,)
        assert not out.flags.writeable
        assert len(g) == 0
        np.testing.assert_array_equal(out, np.arange(3))

    def test_detached_array_survives_reuse(self):
        g = GrowableArray(np.int64, capacity=2)
        g.extend(np.array([5, 6]))
        sealed = g.detach()
        g.extend(np.array([7, 8]))
        np.testing.assert_array_equal(sealed, [5, 6])
        np.testing.assert_array_equal(g.view(), [7, 8])

    def test_detached_is_immutable(self):
        g = GrowableArray(np.int64, capacity=2)
        g.extend(np.array([1, 2]))
        sealed = g.detach()
        with pytest.raises(ValueError):
            sealed[0] = 9
