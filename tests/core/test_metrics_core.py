"""EB / PC / EBPC metric tests (Eqs. 3–10), incl. scalar-vs-vector agreement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    ebpc_value,
    expected_benefit,
    expected_benefit_vec,
    max_success_vec,
    postponing_cost,
    postponing_cost_vec,
    success_vec,
)
from repro.core.success import success_probability
from repro.pubsub.subscription import RowArrays
from tests.core.helpers import make_message, make_row


def rows_strategy():
    return st.lists(
        st.builds(
            make_row,
            deadline_ms=st.one_of(st.none(), st.floats(1_000, 90_000)),
            price=st.one_of(st.none(), st.floats(0, 10)),
            nn=st.integers(0, 6),
            mean=st.floats(10, 400),
            variance=st.floats(0, 10_000),
        ),
        min_size=1,
        max_size=8,
    )


class TestExpectedBenefit:
    def test_sums_price_weighted_successes(self):
        rows = [
            make_row("S1", deadline_ms=30_000.0, price=3.0),
            make_row("S2", deadline_ms=60_000.0, price=1.0),
        ]
        msg = make_message()
        now = 5_000.0
        expected = 3.0 * success_probability(rows[0], msg, now, 2.0) + 1.0 * success_probability(
            rows[1], msg, now, 2.0
        )
        assert expected_benefit(rows, msg, now, 2.0) == pytest.approx(expected)

    def test_unpriced_rows_count_as_one(self):
        rows = [make_row(price=None, deadline_ms=None)]
        msg = make_message(deadline_ms=None)
        assert expected_benefit(rows, msg, 0.0, 2.0) == 1.0

    @given(rows=rows_strategy(), now=st.floats(0, 100_000))
    @settings(max_examples=150)
    def test_bounds_property(self, rows, now):
        msg = make_message()
        eb = expected_benefit(rows, msg, now, 2.0)
        total_price = sum(r.price if r.price is not None else 1.0 for r in rows)
        assert -1e-9 <= eb <= total_price + 1e-9


class TestPostponingCost:
    def test_positive_for_tight_deadline(self):
        # Deadline close to the expected path delay: postponing must cost.
        rows = [make_row(deadline_ms=6_000.0, nn=1, mean=100.0, variance=400.0)]
        msg = make_message(size_kb=50.0)  # expected propagation 5000 ms
        pc = postponing_cost(rows, msg, 0.0, 2.0, ft_ms=3_750.0)
        assert pc > 0.01

    def test_near_zero_for_slack_deadline(self):
        rows = [make_row(deadline_ms=500_000.0, nn=1, mean=100.0, variance=400.0)]
        msg = make_message()
        pc = postponing_cost(rows, msg, 0.0, 2.0, ft_ms=3_750.0)
        assert pc == pytest.approx(0.0, abs=1e-9)

    def test_near_zero_for_hopeless_message(self):
        rows = [make_row(deadline_ms=1_000.0, nn=3, mean=400.0, variance=100.0)]
        msg = make_message()
        pc = postponing_cost(rows, msg, 0.0, 2.0, ft_ms=3_750.0)
        assert pc == pytest.approx(0.0, abs=1e-6)

    @given(rows=rows_strategy(), now=st.floats(0, 100_000), ft=st.floats(0, 20_000))
    @settings(max_examples=150)
    def test_nonnegative_property(self, rows, now, ft):
        # Postponing can never *help*: success is monotone in extra delay.
        msg = make_message()
        assert postponing_cost(rows, msg, now, 2.0, ft) >= -1e-9

    def test_zero_ft_means_zero_cost(self):
        rows = [make_row()]
        msg = make_message()
        assert postponing_cost(rows, msg, 0.0, 2.0, 0.0) == pytest.approx(0.0)


class TestEbpc:
    def test_endpoints(self):
        assert ebpc_value(eb=4.0, pc=1.0, r=1.0) == 4.0
        assert ebpc_value(eb=4.0, pc=1.0, r=0.0) == 1.0

    def test_midpoint(self):
        assert ebpc_value(eb=4.0, pc=1.0, r=0.5) == 2.5

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            ebpc_value(1.0, 1.0, r=1.5)
        with pytest.raises(ValueError):
            ebpc_value(1.0, 1.0, r=-0.1)


class TestVectorisedAgreement:
    @given(
        rows=rows_strategy(),
        now=st.floats(0, 100_000),
        ft=st.floats(0, 20_000),
        msg_deadline=st.one_of(st.none(), st.floats(1_000, 60_000)),
    )
    @settings(max_examples=200)
    def test_eb_scalar_equals_vec(self, rows, now, ft, msg_deadline):
        msg = make_message(deadline_ms=msg_deadline)
        arrays = RowArrays.from_rows(rows)
        scalar = expected_benefit(rows, msg, now, 2.0, extra_delay_ms=ft)
        vec = expected_benefit_vec(arrays, msg, now, 2.0, extra_delay_ms=ft)
        assert vec == pytest.approx(scalar, rel=1e-10, abs=1e-10)

    @given(rows=rows_strategy(), now=st.floats(0, 100_000), ft=st.floats(0, 20_000))
    @settings(max_examples=150)
    def test_pc_scalar_equals_vec(self, rows, now, ft):
        msg = make_message()
        arrays = RowArrays.from_rows(rows)
        scalar = postponing_cost(rows, msg, now, 2.0, ft)
        vec = postponing_cost_vec(arrays, msg, now, 2.0, ft)
        assert vec == pytest.approx(scalar, rel=1e-10, abs=1e-10)

    @given(rows=rows_strategy(), now=st.floats(0, 100_000))
    @settings(max_examples=150)
    def test_max_success_matches_scalar_max(self, rows, now):
        msg = make_message()
        arrays = RowArrays.from_rows(rows)
        scalar_max = max(success_probability(r, msg, now, 2.0) for r in rows)
        assert max_success_vec(arrays, msg, now, 2.0) == pytest.approx(
            scalar_max, rel=1e-10, abs=1e-10
        )

    def test_success_vec_unbounded_rows_are_one(self):
        rows = [make_row(deadline_ms=None)]
        msg = make_message(deadline_ms=None)
        probs = success_vec(RowArrays.from_rows(rows), msg, 1e9, 2.0)
        assert probs.tolist() == [1.0]

    def test_max_success_empty(self):
        msg = make_message()
        assert max_success_vec(RowArrays.from_rows([]), msg, 0.0, 2.0) == 0.0
