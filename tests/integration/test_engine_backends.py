"""Whole-simulation differential tests for the execution engines.

The fused micro-batched engine (window lookahead + speculative batch
matching + memo replay) must be **byte-identical** to the per-event
oracle: identical figure data, identical delivery-record streams and
endpoint histories, identical delivery-log bytes and windowed series —
across every strategy, both metrics backends, churn dynamics, spillable
logs, and adversarial window geometries (events exactly on window
boundaries, cancellations inside a drained window, table churn that
stales a precomputed match between lookahead and execution).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import STRATEGY_NAMES
from repro.core.strategies import EbStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.engine import DEFAULT_WINDOW_MS, FusedEngine, make_engine
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    build_system,
    run_simulation,
    schedule_dynamics,
    schedule_workload,
)
from repro.workload.dynamics import ChurnWave, FlashCrowd, RateBurst, ScenarioScript
from repro.workload.scenarios import Scenario
from tests.conftest import make_line_topology

#: Same shape as the metrics-backend suite: the paper topology, a
#: congesting rate, queue pressure and pruning in play.
BASE = SimulationConfig(
    seed=3,
    scenario=Scenario.SSD,
    publishing_rate_per_min=12.0,
    duration_ms=60_000.0,
    grace_ms=30_000.0,
)

CHURNY = ScenarioScript((
    RateBurst(20_000.0, 40_000.0, 3.0),
    ChurnWave(at_ms=25_000.0, leave=6, join=6),
    FlashCrowd(at_ms=35_000.0, count=8),
))


def result_bytes(result) -> bytes:
    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


def _log_digest(system) -> str:
    h = hashlib.sha256()
    for col in system.delivery_log.columns():
        h.update(col.tobytes())
    return h.hexdigest()


def _fingerprint(system) -> tuple:
    m = system.metrics
    return (
        m.published, m.receptions, m.transmissions, m.deliveries_valid,
        m.deliveries_late, m.pruned, m.earning, m.latency_sum_ms,
        system.sim.executed_events, _log_digest(system),
    )


def _run_config(config: SimulationConfig):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    system.run(until=config.horizon_ms)
    return system


# --------------------------------------------------------------------- #
# Full-pipeline byte identity.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_fused_figure_data_byte_identical(strategy):
    """All five strategies: serialized figure data agrees byte for byte."""
    fused = run_simulation(BASE.replace(strategy=strategy, engine_backend="fused"))
    event = run_simulation(BASE.replace(strategy=strategy, engine_backend="event"))
    assert fused == event
    assert result_bytes(fused) == result_bytes(event)


@pytest.mark.parametrize("metrics_backend", ("ledger", "scalar"))
def test_fused_agrees_for_both_metrics_backends(metrics_backend):
    fused = run_simulation(
        BASE.replace(metrics_backend=metrics_backend, engine_backend="fused")
    )
    event = run_simulation(
        BASE.replace(metrics_backend=metrics_backend, engine_backend="event")
    )
    assert result_bytes(fused) == result_bytes(event)


def test_fused_agrees_with_spill_enabled():
    cfg = BASE.replace(log_spill=True, log_chunk_rows=256)
    fused = _run_config(cfg.replace(engine_backend="fused"))
    event = _run_config(cfg.replace(engine_backend="event"))
    assert fused.delivery_log.spilled_chunks > 0
    assert _fingerprint(fused) == _fingerprint(event)


def test_fused_agrees_under_churn_dynamics():
    """Churn waves rewrite the tables mid-run: precomputed matches must be
    discarded exactly when the version moved, never consumed stale."""
    cfg = BASE.replace(duration_ms=90_000.0, dynamics=CHURNY)
    fused = _run_config(cfg.replace(engine_backend="fused"))
    event = _run_config(cfg.replace(engine_backend="event"))
    assert _fingerprint(fused) == _fingerprint(event)
    fused.metrics.check_invariants()


def test_delivery_record_streams_identical():
    """Per-delivery callback order and endpoint record columns agree —
    the engines must interleave side effects identically, not merely
    reach the same totals."""
    streams: dict[str, tuple] = {}
    for engine in ("fused", "event"):
        config = BASE.replace(strategy="ebpc", engine_backend=engine)
        system = build_system(config)
        log: list[tuple] = []
        for broker in system.brokers.values():
            broker.delivery_callbacks.append(
                lambda sub, msg, latency, valid: log.append(
                    (sub, msg.msg_id, latency, valid)
                )
            )
        schedule_workload(system, config)
        system.run(until=config.horizon_ms)
        endpoint_records = {
            name: [(r.msg_id, r.time, r.latency_ms, r.valid) for r in h.records]
            for name, h in sorted(system.subscribers.items())
        }
        streams[engine] = (log, endpoint_records)
    assert streams["fused"] == streams["event"]
    assert len(streams["fused"][0]) > 0


@settings(max_examples=10, deadline=None)
@given(
    window_ms=st.one_of(
        st.floats(0.01, 5.0), st.floats(5.0, 500.0), st.floats(1e4, 1e7)
    ),
    seed=st.integers(0, 4),
    strategy=st.sampled_from(STRATEGY_NAMES),
)
def test_window_size_never_changes_results(window_ms, seed, strategy):
    """The window is a pure batching knob: any size (sub-event-spacing
    through one-window-covers-the-run) replays the oracle exactly."""
    cfg = BASE.replace(
        seed=seed, strategy=strategy, duration_ms=30_000.0,
        engine_window_ms=window_ms,
    )
    fused = run_simulation(cfg.replace(engine_backend="fused"))
    event = run_simulation(cfg.replace(engine_backend="event"))
    assert result_bytes(fused) == result_bytes(event)


# --------------------------------------------------------------------- #
# Adversarial window geometry on a hand-built system.
# --------------------------------------------------------------------- #

MATCH_ALL = Predicate("A1", "<", 1e9)


def _line_system(engine: str, window_ms: float = DEFAULT_WINDOW_MS) -> PubSubSystem:
    topo = make_line_topology(
        n=3,
        publishers={"P1": "B1"},
        subscribers={f"S{i}": ("B2" if i % 2 else "B3") for i in range(4)},
    )
    system = PubSubSystem(
        topology=topo,
        strategy=EbStrategy(),
        sim=Simulator(),
        streams=RngStreams(5),
        config=SystemConfig(
            default_size_kb=5.0,
            engine_backend=engine,
            engine_window_ms=window_ms,
        ),
    )
    for i in range(4):
        system.subscribe(
            Subscription(f"S{i}", MATCH_ALL, deadline_ms=30_000.0, price=1.0)
        )
    return system


def _hand_fingerprint(system) -> tuple:
    m = system.metrics
    return (
        m.published, m.deliveries_valid, m.deliveries_late, m.earning,
        system.sim.executed_events, system.sim.now, _log_digest(system),
    )


def test_events_exactly_on_window_boundary():
    """Publishes landing exactly at multiples of the window must drain in
    the window whose closed end they sit on, identically to the oracle."""
    outcomes = {}
    for engine in ("fused", "event"):
        system = _line_system(engine, window_ms=100.0)
        for k in range(8):
            system.sim.schedule_at(
                100.0 * k, lambda a=float(k): system.publish("P1", {"A1": a})
            )
        system.run(until=2_000.0)
        outcomes[engine] = _hand_fingerprint(system)
    assert outcomes["fused"] == outcomes["event"]


def test_cancelled_event_inside_drained_window():
    """A handle cancelled before the run starts sits inside the first
    window; both engines must skip it without counting it executed."""
    outcomes = {}
    for engine in ("fused", "event"):
        system = _line_system(engine, window_ms=10_000.0)
        handle = system.sim.schedule_at(
            50.0, lambda: system.publish("P1", {"A1": 1.0})
        )
        system.sim.schedule_at(60.0, lambda: system.publish("P1", {"A1": 2.0}))
        handle.cancel()
        system.run(until=30_000.0)
        outcomes[engine] = _hand_fingerprint(system)
    assert outcomes["fused"] == outcomes["event"]
    assert outcomes["fused"][0] == 1  # only the uncancelled publish ran


def test_unsubscribe_between_lookahead_and_process_discards_memo():
    """Publish, then unsubscribe before the message's process event fires
    — all inside one window.  The lookahead may have matched against the
    pre-churn table; the version bump must force a rematch."""
    outcomes = {}
    for engine in ("fused", "event"):
        system = _line_system(engine, window_ms=60_000.0)
        system.sim.schedule_at(10.0, lambda: system.publish("P1", {"A1": 1.0}))
        # The broker's process event fires at 10 + processing delay; this
        # unsubscribe lands in between, staling any precomputed match.
        system.sim.schedule_at(
            11.0, lambda: system.unsubscribe("S1")
        )
        system.sim.schedule_at(5_000.0, lambda: system.publish("P1", {"A1": 2.0}))
        system.run(until=60_000.0)
        outcomes[engine] = _hand_fingerprint(system)
    assert outcomes["fused"] == outcomes["event"]


def test_max_events_parity():
    """Stopping after k events leaves both engines in identical states
    (executed count, clock, pending events)."""
    for k in (1, 3, 7, 20):
        states = {}
        for engine in ("fused", "event"):
            system = _line_system(engine)
            for i in range(6):
                system.sim.schedule_at(
                    200.0 * i, lambda a=float(i): system.publish("P1", {"A1": a})
                )
            executed = system.run(until=50_000.0, max_events=k)
            states[engine] = (
                executed, system.sim.now, system.sim.executed_events,
                system.sim.pending_events,
            )
        assert states["fused"] == states["event"], f"max_events={k}"


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_interleaved_publish_churn_engines_agree(data):
    """Random interleavings of publish and unsubscribe, with a randomized
    window, inside one window or across many: both engines settle every
    in-flight race identically (endpoint histories included)."""
    n_steps = data.draw(st.integers(2, 10), label="steps")
    window_ms = data.draw(
        st.sampled_from([1.0, 50.0, 400.0, 1e6]), label="window"
    )
    plan = []
    alive = [f"S{i}" for i in range(4)]
    for step in range(n_steps):
        if alive and data.draw(st.booleans(), label=f"unsub@{step}"):
            victim = data.draw(st.sampled_from(sorted(alive)), label=f"who@{step}")
            alive.remove(victim)
            plan.append(("unsubscribe", victim))
        plan.append(("publish", data.draw(st.floats(0.0, 9.0), label=f"attr@{step}")))

    outcomes = {}
    for engine in ("fused", "event"):
        system = _line_system(engine, window_ms=window_ms)
        removed = {}
        t = 0.0
        for op in plan:
            t += 400.0
            if op[0] == "publish":
                system.sim.schedule_at(
                    t, lambda a=op[1]: system.publish("P1", {"A1": a})
                )
            else:
                system.sim.schedule_at(
                    t, lambda s=op[1]: removed.update({s: system.unsubscribe(s)})
                )
        system.run()
        m = system.metrics
        m.check_invariants()
        handles = dict(system.subscribers)
        handles.update(removed)
        outcomes[engine] = (
            _hand_fingerprint(system),
            m.duplicate_deliveries, m.per_subscriber_valid,
            {
                name: [(r.msg_id, r.time, r.latency_ms, r.valid) for r in h.records]
                for name, h in sorted(handles.items())
            },
        )
    assert outcomes["fused"] == outcomes["event"]


# --------------------------------------------------------------------- #
# Knob plumbing.
# --------------------------------------------------------------------- #

def test_unknown_engine_backend_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(seed=1, engine_backend="typo")
    with pytest.raises(ValueError):
        SystemConfig(engine_backend="typo")


def test_nonpositive_window_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(seed=1, engine_window_ms=0.0)
    with pytest.raises(ValueError):
        SystemConfig(engine_window_ms=-1.0)


def test_event_backend_builds_no_engine():
    system = _line_system("event")
    assert system._engine is None
    system = _line_system("fused")
    assert isinstance(system._engine, FusedEngine)
    assert make_engine("event", Simulator()) is None
