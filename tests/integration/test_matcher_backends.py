"""Whole-simulation differential tests for the matcher backends.

The vectorised ingest path must be decision-for-decision identical to
the dict-based oracle: same aggregate figure data (byte for byte once
serialised) and the same per-delivery record stream.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, run_simulation, schedule_workload
from repro.workload.scenarios import Scenario

#: Small but non-trivial: the paper topology, a congesting rate, both
#: queue pressure and pruning in play.
BASE = SimulationConfig(
    seed=3,
    scenario=Scenario.SSD,
    publishing_rate_per_min=12.0,
    duration_ms=90_000.0,
    grace_ms=30_000.0,
)


def result_bytes(result) -> bytes:
    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


@pytest.mark.parametrize("strategy", ["eb", "fifo"])
def test_vector_and_oracle_figure_data_byte_identical(strategy):
    vector = run_simulation(BASE.replace(strategy=strategy, matcher_backend="vector"))
    oracle = run_simulation(BASE.replace(strategy=strategy, matcher_backend="oracle"))
    assert vector == oracle
    assert result_bytes(vector) == result_bytes(oracle)


def test_brute_backend_agrees_too():
    vector = run_simulation(BASE.replace(matcher_backend="vector"))
    brute = run_simulation(BASE.replace(matcher_backend="brute"))
    assert result_bytes(vector) == result_bytes(brute)


def test_delivery_records_identical():
    """Every local delivery (subscriber, message, latency, validity) and its
    order must match between the backends, not just the aggregates."""
    records: dict[str, list] = {}
    for backend in ("vector", "oracle"):
        config = BASE.replace(strategy="ebpc", matcher_backend=backend)
        system = build_system(config)
        log: list[tuple] = []
        for broker in system.brokers.values():
            broker.delivery_callbacks.append(
                lambda sub, msg, latency, valid: log.append(
                    (sub, msg.msg_id, latency, valid)
                )
            )
        schedule_workload(system, config)
        system.sim.run(until=config.horizon_ms)
        records[backend] = log
    assert records["vector"] == records["oracle"]
    assert len(records["vector"]) > 0


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        build_system(BASE.replace(matcher_backend="typo"))
