"""Whole-simulation differential tests for the metrics backends and the
batched delivery spine.

The columnar delivery path (batched ``Broker._process`` local delivery,
ledger accounting, array-backed endpoints) must be decision- and
byte-identical to the scalar oracle: same figure data once serialised,
same per-delivery record stream, same endpoint records — across every
strategy, and under multi-path duplicate settlement and subscription
churn.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import STRATEGY_NAMES
from repro.core.strategies import EbStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem, RoutingMode, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, run_simulation, schedule_workload
from repro.workload.scenarios import Scenario
from tests.conftest import make_diamond_topology, make_line_topology

#: Small but non-trivial: the paper topology, a congesting rate, both
#: queue pressure and pruning in play.
BASE = SimulationConfig(
    seed=3,
    scenario=Scenario.SSD,
    publishing_rate_per_min=12.0,
    duration_ms=60_000.0,
    grace_ms=30_000.0,
)


def result_bytes(result) -> bytes:
    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
def test_ledger_and_scalar_figure_data_byte_identical(strategy):
    """All five strategies: identical serialized figure data."""
    ledger = run_simulation(BASE.replace(strategy=strategy, metrics_backend="ledger"))
    scalar = run_simulation(BASE.replace(strategy=strategy, metrics_backend="scalar"))
    assert ledger == scalar
    assert result_bytes(ledger) == result_bytes(scalar)


def test_delivery_records_identical():
    """Every local delivery (subscriber, message, latency, validity), its
    order, and every endpoint's record columns must match between the
    backends — not just the aggregates."""
    streams: dict[str, tuple] = {}
    for backend in ("ledger", "scalar"):
        config = BASE.replace(strategy="ebpc", metrics_backend=backend)
        system = build_system(config)
        log: list[tuple] = []
        for broker in system.brokers.values():
            broker.delivery_callbacks.append(
                lambda sub, msg, latency, valid: log.append(
                    (sub, msg.msg_id, latency, valid)
                )
            )
        schedule_workload(system, config)
        system.sim.run(until=config.horizon_ms)
        endpoint_records = {
            name: [(r.msg_id, r.time, r.latency_ms, r.valid) for r in h.records]
            for name, h in sorted(system.subscribers.items())
        }
        streams[backend] = (log, endpoint_records)
    assert streams["ledger"] == streams["scalar"]
    assert len(streams["ledger"][0]) > 0


def test_psd_scenario_agrees_too():
    ledger = run_simulation(
        BASE.replace(scenario=Scenario.PSD, metrics_backend="ledger")
    )
    scalar = run_simulation(
        BASE.replace(scenario=Scenario.PSD, metrics_backend="scalar")
    )
    assert result_bytes(ledger) == result_bytes(scalar)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        build_system(BASE.replace(metrics_backend="typo"))


MATCH_ALL = Predicate("A1", "<", 1e9)


def _diamond_system(backend: str) -> PubSubSystem:
    topo = make_diamond_topology(
        publishers={"P1": "B1"}, subscribers={"S1": "B4", "S2": "B4"},
    )
    system = PubSubSystem(
        topology=topo,
        strategy=EbStrategy(),
        sim=Simulator(),
        streams=RngStreams(11),
        config=SystemConfig(
            routing=RoutingMode.multi_path(k=2),
            default_size_kb=5.0,
            metrics_backend=backend,
        ),
    )
    system.subscribe(Subscription("S1", MATCH_ALL, deadline_ms=60_000.0, price=2.0))
    system.subscribe(Subscription("S2", MATCH_ALL, deadline_ms=60_000.0, price=3.0))
    return system


def test_multipath_duplicate_settlement_order_identical():
    """Multi-path routing delivers the same pair twice via different
    paths; both backends must settle first-arrival-wins identically."""
    outcomes = {}
    for backend in ("ledger", "scalar"):
        system = _diamond_system(backend)
        for i in range(4):
            system.publish("P1", {"A1": float(i)})
        system.sim.run()
        m = system.metrics
        assert m.duplicate_deliveries > 0  # the diamond produced duplicates
        outcomes[backend] = (
            m.deliveries_valid, m.deliveries_late, m.duplicate_deliveries,
            m.earning, m.latency_sum_ms, m.delivered, m.per_subscriber_valid,
            {
                name: [(r.msg_id, r.time, r.latency_ms, r.valid) for r in h.records]
                for name, h in sorted(system.subscribers.items())
            },
        )
        m.check_invariants()
    assert outcomes["ledger"] == outcomes["scalar"]


# --------------------------------------------------------------------- #
# Churn: interleaved publish/unsubscribe against both backends.
# --------------------------------------------------------------------- #

def _churn_system(backend: str) -> PubSubSystem:
    topo = make_line_topology(
        n=3,
        publishers={"P1": "B1"},
        subscribers={f"S{i}": ("B2" if i % 2 else "B3") for i in range(6)},
    )
    return PubSubSystem(
        topology=topo,
        strategy=EbStrategy(),
        sim=Simulator(),
        streams=RngStreams(5),
        config=SystemConfig(default_size_kb=5.0, metrics_backend=backend),
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_churn_backends_agree(data):
    """Random interleavings of publish and unsubscribe (racing in-flight
    copies) leave both backends with identical accounting and identical
    endpoint histories — including records of unsubscribed endpoints."""
    n_steps = data.draw(st.integers(2, 10), label="steps")
    plan = []
    alive = [f"S{i}" for i in range(6)]
    for step in range(n_steps):
        if alive and data.draw(st.booleans(), label=f"unsub@{step}"):
            victim = data.draw(st.sampled_from(sorted(alive)), label=f"who@{step}")
            alive.remove(victim)
            plan.append(("unsubscribe", victim))
        plan.append(("publish", data.draw(st.floats(0.0, 9.0), label=f"attr@{step}")))

    outcomes = {}
    for backend in ("ledger", "scalar"):
        system = _churn_system(backend)
        removed = {}
        for i in range(6):
            system.subscribe(
                Subscription(f"S{i}", MATCH_ALL, deadline_ms=30_000.0, price=1.0)
            )
        t = 0.0
        for op in plan:
            t += 400.0
            if op[0] == "publish":
                system.sim.schedule_at(
                    t, lambda a=op[1]: system.publish("P1", {"A1": a})
                )
            else:
                system.sim.schedule_at(
                    t, lambda s=op[1]: removed.update({s: system.unsubscribe(s)})
                )
        system.sim.run()
        m = system.metrics
        m.check_invariants()
        handles = dict(system.subscribers)
        handles.update(removed)
        outcomes[backend] = (
            m.published, m.receptions, m.deliveries_valid, m.deliveries_late,
            m.duplicate_deliveries, m.earning, m.latency_sum_ms,
            m.delivered, m.per_subscriber_valid,
            {
                name: [(r.msg_id, r.time, r.latency_ms, r.valid) for r in h.records]
                for name, h in sorted(handles.items())
            },
        )
    assert outcomes["ledger"] == outcomes["scalar"]
