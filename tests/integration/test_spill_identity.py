"""Scale tier differential: spill is a residency knob, never a result knob.

Three identities, per the acceptance bar of the chunked-log PR:

* **spill on == spill off** at the same (small, multi-chunk) chunk size
  — full fingerprint equality: figure-level metrics, the raw delivery
  log bytes, per-endpoint record streams, windowed time series — for
  all five strategies, both metrics backends, a churn dynamics script
  and multi-path duplicate settlement;
* **spill off at default chunking == pre-PR HEAD** — the committed
  goldens in ``tests/data/golden_pre_scale_tier.json`` were captured on
  the commit *before* the chunked store existed;
* **small chunks == one big chunk** for everything integer-valued
  (counts, earnings, record streams); float window sums are compared to
  1 ulp-scale tolerance across *different* chunkings (regrouping a
  left-to-right float fold across chunk boundaries may round
  differently), and exactly within the same chunking.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.timeseries import windowed_metrics
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics, schedule_workload
from repro.workload.dynamics import ChurnWave, FlashCrowd, RateBurst, ScenarioScript
from repro.workload.scenarios import Scenario

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_pre_scale_tier.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

#: Forces many sealed chunks in 90-second runs (a few thousand rows).
SMALL_CHUNK = 256

CHURNY = ScenarioScript((
    RateBurst(20_000.0, 60_000.0, 3.0),
    ChurnWave(at_ms=25_000.0, leave=8, join=8),
    FlashCrowd(at_ms=40_000.0, count=10),
))

BASE = dict(seed=11, publishing_rate_per_min=6.0, duration_ms=90_000.0)

#: name -> config, mirroring exactly what the goldens were captured from.
CONFIGS: dict[str, SimulationConfig] = {
    **{
        f"ssd-{s}-ledger": SimulationConfig(scenario=Scenario.SSD, strategy=s, **BASE)
        for s in ("fifo", "rl", "eb", "pc", "ebpc")
    },
    "ssd-eb-scalar": SimulationConfig(
        scenario=Scenario.SSD, strategy="eb", metrics_backend="scalar", **BASE
    ),
    "psd-eb-ledger": SimulationConfig(scenario=Scenario.PSD, strategy="eb", **BASE),
    "ssd-ebpc-churn": SimulationConfig(
        scenario=Scenario.SSD, strategy="ebpc", dynamics=CHURNY, **BASE
    ),
    "ssd-eb-multipath": SimulationConfig(
        scenario=Scenario.SSD, strategy="eb", routing_paths=2,
        seed=11, publishing_rate_per_min=6.0, duration_ms=60_000.0,
    ),
}


def _run(config: SimulationConfig):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    system.sim.run(until=config.horizon_ms)
    return system


def _fingerprint(config: SimulationConfig) -> dict:
    system = _run(config)
    m = system.metrics
    log_h = hashlib.sha256()
    for col in system.delivery_log.columns():
        log_h.update(np.ascontiguousarray(col).tobytes())
    rec_h = hashlib.sha256()
    for name in sorted(system.subscribers):
        rec_h.update(name.encode())
        for col in system.subscribers[name].columns():
            rec_h.update(np.ascontiguousarray(col).tobytes())
    ts = windowed_metrics(system, 20_000.0, config.horizon_ms)
    ts_h = hashlib.sha256()
    for arr in (ts.edges, ts.published, ts.interested, ts.deliveries_valid,
                ts.deliveries_late, ts.earning, ts.latency_sum_ms):
        ts_h.update(np.ascontiguousarray(arr).tobytes())
    return {
        "published": m.published, "receptions": m.receptions,
        "transmissions": m.transmissions, "deliveries_valid": m.deliveries_valid,
        "deliveries_late": m.deliveries_late, "pruned": m.pruned,
        "earning": m.earning, "latency_sum_ms": m.latency_sum_ms,
        "delivery_rate": m.delivery_rate,
        "executed_events": system.sim.executed_events,
        "delivery_log_sha256": log_h.hexdigest(),
        "endpoint_records_sha256": rec_h.hexdigest(),
        "windowed_series_sha256": ts_h.hexdigest(),
        "_ts": ts,
        "_spilled": system.delivery_log.spilled_chunks,
    }


def _public(fp: dict) -> dict:
    return {k: v for k, v in fp.items() if not k.startswith("_")}


class TestSpillOnOffIdentity:
    """log_spill toggled, chunking held fixed: byte-identical everything."""

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_fingerprints_identical(self, name):
        config = CONFIGS[name].replace(log_chunk_rows=SMALL_CHUNK)
        hot = _fingerprint(config)
        cold = _fingerprint(config.replace(log_spill=True))
        assert cold["_spilled"] > 0, "spill never engaged — test is vacuous"
        assert hot["_spilled"] == 0
        assert _public(hot) == _public(cold)

    def test_multipath_actually_duplicates(self):
        system = _run(CONFIGS["ssd-eb-multipath"].replace(
            log_chunk_rows=SMALL_CHUNK, log_spill=True))
        assert system.metrics.duplicate_deliveries > 0


class TestPrePrHeadIdentity:
    """Default chunking, spill off: byte-identical to the pre-PR commit."""

    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_matches_golden(self, name):
        fp = _public(_fingerprint(CONFIGS[name]))
        assert fp == GOLDENS[name]


class TestChunkingInvariance:
    """Small chunks vs one big chunk: integer-valued results exact, float
    window sums within regrouping tolerance."""

    @pytest.mark.parametrize("name", ["ssd-eb-ledger", "ssd-ebpc-churn", "ssd-eb-multipath"])
    def test_chunk_size_does_not_change_results(self, name):
        big = _fingerprint(CONFIGS[name])
        small = _fingerprint(CONFIGS[name].replace(log_chunk_rows=SMALL_CHUNK))
        for key in ("published", "receptions", "transmissions", "deliveries_valid",
                    "deliveries_late", "pruned", "earning", "latency_sum_ms",
                    "delivery_rate", "executed_events", "delivery_log_sha256",
                    "endpoint_records_sha256"):
            assert big[key] == small[key], key
        ts_b, ts_s = big["_ts"], small["_ts"]
        for attr in ("published", "interested", "deliveries_valid", "deliveries_late", "earning"):
            np.testing.assert_array_equal(getattr(ts_b, attr), getattr(ts_s, attr))
        np.testing.assert_allclose(
            ts_b.latency_sum_ms, ts_s.latency_sum_ms, rtol=1e-12, atol=0.0
        )
