"""Cross-module integration tests: strategy ordering, failure injection,
delivery-uniqueness, and estimated-measurement runs at small scale."""

from __future__ import annotations

import pytest

from repro.core.pruning import PruningPolicy
from repro.core.strategies import EbStrategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.measurement import MeasurementMode
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, run_simulation, schedule_workload
from repro.stats.normal import Normal
from repro.workload.scenarios import Scenario
from tests.conftest import make_diamond_topology

MATCH_ALL = Predicate("A1", "<", 1e9)

#: ~4 simulated minutes at a congesting rate on the paper topology.
CONGESTED = SimulationConfig(
    seed=2,
    scenario=Scenario.PSD,
    publishing_rate_per_min=12.0,
    duration_ms=240_000.0,
)


class TestStrategyOrdering:
    """The paper's core result at small scale, same seed for all."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            s: run_simulation(CONGESTED.replace(strategy=s))
            for s in ("eb", "pc", "fifo", "rl")
        }

    def test_eb_beats_baselines_on_delivery(self, results):
        assert results["eb"].delivery_rate > results["fifo"].delivery_rate
        assert results["eb"].delivery_rate > results["rl"].delivery_rate

    def test_pc_beats_baselines_on_delivery(self, results):
        assert results["pc"].delivery_rate > results["fifo"].delivery_rate
        assert results["pc"].delivery_rate > results["rl"].delivery_rate

    def test_traffic_overhead_is_modest(self, results):
        assert results["eb"].message_number < 2 * results["fifo"].message_number
        assert results["eb"].message_number < 2 * results["rl"].message_number

    def test_probabilistic_pruning_happens(self, results):
        assert results["eb"].pruned > 0


class TestPruningAblation:
    def test_disabling_pruning_increases_traffic(self):
        with_pruning = run_simulation(CONGESTED)
        without = run_simulation(CONGESTED.replace(pruning_override=PruningPolicy.NONE))
        assert without.pruned == 0
        assert without.message_number >= with_pruning.message_number

    def test_epsilon_extremes(self):
        # A huge epsilon prunes aggressively, starving deliveries relative
        # to the paper's 5e-4.
        aggressive = run_simulation(CONGESTED.replace(epsilon=0.9))
        paper = run_simulation(CONGESTED)
        assert aggressive.pruned >= paper.pruned
        assert aggressive.deliveries_valid <= paper.deliveries_valid


class TestEstimatedMeasurement:
    def test_estimated_mode_runs_and_is_close_to_oracle(self):
        oracle = run_simulation(CONGESTED)
        estimated = run_simulation(
            CONGESTED.replace(measurement_mode=MeasurementMode.ESTIMATED)
        )
        assert estimated.published == oracle.published
        # Estimation noise costs something but not everything.
        assert estimated.delivery_rate > 0.5 * oracle.delivery_rate


class TestFailureInjection:
    def test_link_outage_reroutes_traffic(self):
        """Degrading the fast diamond branch must push routing to the slow
        one (routing is recomputed against the new parameters)."""
        topo = make_diamond_topology(
            publishers={"P1": "B1"}, subscribers={"S1": "B4"}
        )
        # Kill the fast branch: effectively infinite per-KB time.
        topo.set_link_rate("B1", "B2", Normal(1e6, 1.0))
        system = PubSubSystem(
            topology=topo,
            strategy=EbStrategy(),
            sim=Simulator(),
            streams=RngStreams(0),
        )
        system.subscribe(Subscription("S1", MATCH_ALL))
        assert system.routing_path("B1", "S1") == ["B1", "B3", "B4"]

    def test_zero_subscribers_runs_clean(self):
        cfg = CONGESTED.replace(duration_ms=60_000.0)
        system = build_system(cfg)
        # Strip all subscriptions by building a fresh system without them.
        empty = PubSubSystem(
            topology=system.topology,
            strategy=EbStrategy(),
            sim=Simulator(),
            streams=RngStreams(5),
        )
        empty.publish("P1", {"A1": 1.0})
        empty.sim.run()
        assert empty.metrics.deliveries_valid == 0
        assert empty.metrics.receptions == 1  # entered the source broker only
        assert empty.total_queued() == 0

    def test_expired_on_arrival_never_delivered_valid(self):
        topo = make_diamond_topology(
            publishers={"P1": "B1"}, subscribers={"S1": "B4"}
        )
        system = PubSubSystem(
            topology=topo, strategy=EbStrategy(), sim=Simulator(), streams=RngStreams(1),
        )
        handle = system.subscribe(Subscription("S1", MATCH_ALL))
        # 1 ms allowed delay: cannot possibly cross two links.
        system.publish("P1", {"A1": 1.0}, deadline_ms=1.0)
        system.sim.run()
        assert handle.valid_count == 0
        assert system.metrics.deliveries_valid == 0


class TestDeliveryUniqueness:
    def test_no_subscriber_sees_a_message_twice(self):
        cfg = CONGESTED.replace(duration_ms=60_000.0, seed=11)
        system = build_system(cfg)
        schedule_workload(system, cfg)
        system.sim.run(until=cfg.horizon_ms)
        for name, handle in system.subscribers.items():
            ids = [r.msg_id for r in handle.records]
            assert len(ids) == len(set(ids)), f"duplicate delivery at {name}"


class TestTraceIntegration:
    def test_trace_captures_causal_chain(self):
        cfg = CONGESTED.replace(duration_ms=30_000.0, enable_trace=True)
        system = build_system(cfg)
        schedule_workload(system, cfg)
        system.sim.run(until=cfg.horizon_ms)
        counts = system.trace.kind_counts()
        assert counts["receive"] == system.metrics.receptions
        assert counts["send"] == system.metrics.transmissions
        assert counts.get("deliver", 0) == (
            system.metrics.deliveries_valid + system.metrics.deliveries_late
        )
