"""Differential tests for the broker-partitioned sharded engine.

The sharded engine (:mod:`repro.pubsub.shard_engine`) distributes the
fused window lookahead's pure match phase across shard workers; the
sequential :class:`~repro.pubsub.engine.FusedEngine` and the per-event
kernel remain the oracles.  Everything observable must be **byte
identical**: serialized figure data, delivery-log bytes, windowed time
series — across shard counts (including ``--shards 1``), both shard
backends, all five strategies, both metrics backends, spill on/off,
churn and hard-fault scripts, arbitrary injected partitions, and runs
split by checkpoints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import windowed_metrics
from repro.core.registry import STRATEGY_NAMES
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import build_layered_mesh
from repro.pubsub.engine import make_engine
from repro.pubsub.shard_engine import ShardedEngine
from repro.pubsub.system import SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    CheckpointPolicy,
    build_system,
    make_sentinel,
    resume_run,
    run_simulation,
    run_to_horizon,
    schedule_dynamics,
    schedule_workload,
)
from repro.sim.shard import ShardConfigError, ShardPlan, partition_brokers
from repro.workload.dynamics import (
    BrokerOutage,
    BrokerRecover,
    ChurnWave,
    FlashCrowd,
    LinkFailure,
    RateBurst,
    ScenarioScript,
)
from repro.workload.scenarios import Scenario

BASE = SimulationConfig(
    seed=3,
    scenario=Scenario.SSD,
    publishing_rate_per_min=12.0,
    duration_ms=60_000.0,
    grace_ms=30_000.0,
)

CHURNY = ScenarioScript((
    RateBurst(20_000.0, 40_000.0, 3.0),
    ChurnWave(at_ms=25_000.0, leave=6, join=6),
    FlashCrowd(at_ms=35_000.0, count=8),
))


def _fault_script() -> ScenarioScript:
    """Hard faults against the BASE topology's real broker/link names."""
    topo = build_layered_mesh(RngStreams(BASE.seed).get("topology"))
    a, b, _rate = topo.links()[0]
    victim = topo.brokers[2]
    return ScenarioScript((
        LinkFailure(at_ms=10_000.0, a=a, b=b),
        BrokerOutage(at_ms=25_000.0, broker=victim),
        BrokerRecover(at_ms=45_000.0, broker=victim),
    ))


def result_bytes(result) -> bytes:
    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


def _log_digest(system) -> str:
    h = hashlib.sha256()
    for col in system.delivery_log.columns():
        h.update(col.tobytes())
    return h.hexdigest()


def _fingerprint(system) -> tuple:
    m = system.metrics
    return (
        m.published, m.receptions, m.transmissions, m.deliveries_valid,
        m.deliveries_late, m.pruned, m.earning, m.latency_sum_ms,
        system.sim.executed_events, _log_digest(system),
    )


def _run_config(config: SimulationConfig):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    run_to_horizon(system, config, make_sentinel(system, config))
    engine = system._engine
    if engine is not None and hasattr(engine, "close"):
        engine.close()
    return system


# --------------------------------------------------------------------- #
# The identity matrix.
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("shards", (1, 2, 4))
def test_sharded_matches_fused_all_strategies(strategy, shards):
    """Every strategy, shard counts 1/2/4: serialized figure data agrees
    byte for byte with both sequential oracles."""
    cfg = BASE.replace(strategy=strategy)
    fused = run_simulation(cfg)
    sharded = run_simulation(cfg.replace(shards=shards, shard_backend="inline"))
    assert result_bytes(sharded) == result_bytes(fused)


def test_sharded_matches_event_oracle():
    fused = run_simulation(BASE.replace(shards=4, shard_backend="inline"))
    event = run_simulation(BASE.replace(engine_backend="event"))
    assert result_bytes(fused) == result_bytes(event)


@pytest.mark.parametrize("metrics_backend", ("ledger", "scalar"))
def test_sharded_agrees_for_both_metrics_backends(metrics_backend):
    cfg = BASE.replace(metrics_backend=metrics_backend)
    fused = run_simulation(cfg)
    sharded = run_simulation(cfg.replace(shards=3, shard_backend="inline"))
    assert result_bytes(sharded) == result_bytes(fused)


def test_sharded_agrees_with_spill_enabled():
    cfg = BASE.replace(log_spill=True, log_chunk_rows=256)
    fused = _run_config(cfg)
    sharded = _run_config(cfg.replace(shards=2, shard_backend="inline"))
    assert sharded.delivery_log.spilled_chunks > 0
    assert _fingerprint(sharded) == _fingerprint(fused)


def test_sharded_agrees_under_churn_dynamics():
    """Churn rewrites the tables mid-run: the replicas' mutation journals
    must replay every op so precomputed matches stay version-fresh."""
    cfg = BASE.replace(duration_ms=90_000.0, dynamics=CHURNY)
    fused = _run_config(cfg)
    sharded = _run_config(cfg.replace(shards=3, shard_backend="inline"))
    assert _fingerprint(sharded) == _fingerprint(fused)
    sharded.metrics.check_invariants()


def test_sharded_agrees_under_hard_faults():
    """Link failures and broker outages (retry + dead-letter paths live)
    cannot diverge the sharded run."""
    cfg = BASE.replace(dynamics=_fault_script())
    fused = _run_config(cfg)
    sharded = _run_config(cfg.replace(shards=2, shard_backend="inline"))
    assert _fingerprint(sharded) == _fingerprint(fused)


def test_sharded_windowed_series_identical():
    cfg = BASE.replace(dynamics=CHURNY)
    digests = []
    for shards in (0, 2):
        system = _run_config(cfg.replace(shards=shards,
                                         shard_backend="inline" if shards else "process"))
        ts = windowed_metrics(system, 10_000.0, cfg.horizon_ms)
        h = hashlib.sha256()
        for arr in (ts.edges, ts.published, ts.interested, ts.deliveries_valid,
                    ts.deliveries_late, ts.earning, ts.latency_sum_ms):
            h.update(arr.tobytes())
        digests.append(h.hexdigest())
    assert digests[0] == digests[1]


def test_process_backend_matches_fused():
    """Real forked workers: boundary exchange over pipes, journal replay
    on replicas, byte-identical results (skips on no-fork platforms)."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    cfg = BASE.replace(dynamics=CHURNY, duration_ms=45_000.0)
    fused = run_simulation(cfg)
    sharded = run_simulation(cfg.replace(shards=2, shard_backend="process"))
    assert result_bytes(sharded) == result_bytes(fused)


# --------------------------------------------------------------------- #
# Arbitrary partitions: placement can never change results.
# --------------------------------------------------------------------- #

_REFERENCE: dict[int, tuple] = {}


def _reference(seed: int) -> tuple:
    ref = _REFERENCE.get(seed)
    if ref is None:
        ref = _REFERENCE[seed] = _fingerprint(
            _run_config(BASE.replace(seed=seed, duration_ms=30_000.0))
        )
    return ref


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_random_partitions_never_change_results(data):
    """Hypothesis differential: random shard counts and arbitrary (even
    unbalanced or empty-shard) broker assignments all replay the fused
    oracle exactly — sharding is pure placement."""
    seed = data.draw(st.integers(0, 2), label="seed")
    config = BASE.replace(seed=seed, duration_ms=30_000.0)
    system = build_system(config)
    brokers = system.topology.brokers
    k = data.draw(st.integers(1, 4), label="shards")
    labels = [
        data.draw(st.integers(0, k - 1), label=f"shard@{name}")
        for name in brokers
    ]
    assignments = tuple(
        tuple(b for b, lab in zip(brokers, labels) if lab == s) for s in range(k)
    )
    min_cut = data.draw(
        st.sampled_from([math.inf, 0.0, 5.0, 250.0, 1e6]), label="min_cut"
    )
    plan = ShardPlan(assignments=assignments, min_cut_ms_per_kb=min_cut)
    system._engine = ShardedEngine(
        system.sim, system, window_ms=config.engine_window_ms,
        shards=k, shard_backend="inline", plan=plan,
    )
    schedule_workload(system, config)
    run_to_horizon(system, config, make_sentinel(system, config))
    assert _fingerprint(system) == _reference(seed)


def test_partition_plan_is_deterministic_and_covering():
    topo = build_layered_mesh(RngStreams(7).get("topology"))
    plan_a = partition_brokers(topo, 4)
    plan_b = partition_brokers(topo, 4)
    assert plan_a == plan_b
    plan_a.validate_against(topo)
    assert sorted(plan_a.brokers) == list(topo.brokers)
    sizes = [len(s) for s in plan_a.assignments]
    assert min(sizes) >= 1
    # Balanced growth: no shard hoards the overlay.
    assert max(sizes) <= -(-len(topo.brokers) // 4) + 1
    # Requesting more shards than brokers clamps.
    assert partition_brokers(topo, 10_000).n_shards <= len(topo.brokers)


# --------------------------------------------------------------------- #
# Composition: checkpoints and the sentinel.
# --------------------------------------------------------------------- #

def test_sharded_run_with_checkpoints_and_resume(tmp_path):
    """A sharded run snapshots mid-flight (workers are dropped from the
    pickle, re-forked lazily on resume) and both the checkpointed run and
    a resume from the first snapshot match the plain fused result."""
    cfg = BASE.replace(shards=2, shard_backend="inline", dynamics=CHURNY)
    plain = run_simulation(cfg.replace(shards=0))
    policy = CheckpointPolicy(directory=tmp_path, every_ms=30_000.0, keep=10)
    checkpointed = run_simulation(cfg, checkpoint=policy)
    assert result_bytes(checkpointed) == result_bytes(plain)
    snaps = sorted(p for p in tmp_path.glob("ckpt-*") if p.is_dir())
    assert snaps
    system, restored_cfg, _ = resume_run(snaps[0])
    assert isinstance(system._engine, ShardedEngine)
    assert not system._engine._started  # workers re-fork lazily
    run_to_horizon(system, restored_cfg, make_sentinel(system, restored_cfg))
    assert _fingerprint(system)[:9] == _fingerprint(_run_config(cfg.replace(shards=0)))[:9]


def test_sharded_composes_with_deep_sentinel():
    cfg = BASE.replace(
        shards=2, shard_backend="inline",
        sentinel=True, sentinel_deep=True, sentinel_every_ms=10_000.0,
        dynamics=CHURNY,
    )
    sharded = run_simulation(cfg)
    plain = run_simulation(cfg.replace(shards=0))
    assert result_bytes(sharded) == result_bytes(plain)


def test_repro_shards_env_override(monkeypatch):
    """REPRO_SHARDS mirrors REPRO_SENTINEL: forces sharding onto any
    fused run whose config leaves it off (CI runs the tier-1 suite under
    it), and never touches explicit settings or the event oracle."""
    monkeypatch.setenv("REPRO_SHARDS", "2")
    system = build_system(BASE)
    assert isinstance(system._engine, ShardedEngine)
    assert system._engine.shards == 2
    assert system._engine.shard_backend == "inline"
    # Explicit event-oracle configs are untouched.
    system = build_system(BASE.replace(engine_backend="event"))
    assert system._engine is None


# --------------------------------------------------------------------- #
# Knob plumbing and typed refusals.
# --------------------------------------------------------------------- #

def test_shards_require_fused_engine():
    with pytest.raises(ShardConfigError):
        SimulationConfig(seed=1, shards=2, engine_backend="event")
    with pytest.raises(ShardConfigError):
        SystemConfig(shards=2, engine_backend="event")
    with pytest.raises(ShardConfigError):
        make_engine("event", Simulator(), shards=2)


def test_bad_shard_knobs_rejected():
    with pytest.raises(ShardConfigError):
        SimulationConfig(seed=1, shards=-1)
    with pytest.raises(ShardConfigError):
        SimulationConfig(seed=1, shards=2, shard_backend="typo")
    with pytest.raises(ShardConfigError):
        SystemConfig(shards=2, shard_backend="typo")
    with pytest.raises(ShardConfigError):
        ShardedEngine(Simulator(), None, shards=2)
    with pytest.raises(ShardConfigError):
        ShardedEngine(Simulator(), object(), shards=0)


def test_overlapping_plan_rejected():
    with pytest.raises(ShardConfigError):
        ShardPlan(assignments=(("B1", "B2"), ("B2",)))
    topo = build_layered_mesh(RngStreams(3).get("topology"))
    partial = ShardPlan(assignments=(tuple(topo.brokers[:2]),))
    with pytest.raises(ShardConfigError):
        partial.validate_against(topo)
