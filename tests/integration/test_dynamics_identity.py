"""Dynamics integration: decision identity and backend agreement.

Two guarantees:

* an **empty script is the frozen world** — scheduling through the
  piecewise path with no interventions is byte-identical (delivery
  records, metrics, event counts) to scheduling the homogeneous
  generator's output by hand, for every strategy;
* the **backends still agree under dynamics** — vector/oracle matchers
  and ledger/scalar metrics make identical decisions while churn waves,
  flash crowds and rate bursts are rewriting the world mid-run.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics, schedule_workload
from repro.workload.dynamics import ChurnWave, FlashCrowd, RateBurst, ScenarioScript
from repro.workload.generator import generate_publications
from repro.workload.scenarios import Scenario

STRATEGIES = ("fifo", "rl", "eb", "pc", "ebpc")

CHURNY = ScenarioScript((
    RateBurst(20_000.0, 60_000.0, 3.0),
    ChurnWave(at_ms=25_000.0, leave=8, join=8),
    FlashCrowd(at_ms=40_000.0, count=10),
))


def _log_digest(system) -> str:
    h = hashlib.sha256()
    for col in system.delivery_log.columns():
        h.update(col.tobytes())
    return h.hexdigest()


def _fingerprint(system) -> tuple:
    m = system.metrics
    return (
        m.published, m.receptions, m.transmissions, m.deliveries_valid,
        m.deliveries_late, m.pruned, m.earning, m.latency_sum_ms,
        system.sim.executed_events, _log_digest(system),
    )


def _run_config(config: SimulationConfig):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    system.sim.run(until=config.horizon_ms)
    return system


class TestEmptyScriptIdentity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_legacy_homogeneous_scheduling(self, strategy):
        """The piecewise path with an empty script replays, byte for byte,
        what scheduling the homogeneous generator by hand produces."""
        config = SimulationConfig(
            seed=9, scenario=Scenario.SSD, strategy=strategy,
            publishing_rate_per_min=8.0, duration_ms=120_000.0,
        )
        assert not config.dynamics

        via_runner = _run_config(config)

        legacy = build_system(config)
        publications = generate_publications(
            legacy.streams.get("workload"),
            publishers=sorted(legacy.topology.publisher_brokers),
            rate_per_minute=config.publishing_rate_per_min,
            duration_ms=config.duration_ms,
            scenario=config.scenario,
            size_kb=config.message_size_kb,
            arrival=config.arrival,
            deadline_range_ms=config.psd_deadline_range_ms,
        )
        for pub in publications:
            legacy.sim.schedule_at(
                pub.time_ms,
                lambda p=pub: legacy.publish(
                    p.publisher, p.attributes, size_kb=p.size_kb, deadline_ms=p.deadline_ms
                ),
            )
        legacy.sim.run(until=config.horizon_ms)

        assert _fingerprint(via_runner) == _fingerprint(legacy)


class TestBackendsAgreeUnderDynamics:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matcher_backends(self, strategy):
        base = SimulationConfig(
            seed=9, scenario=Scenario.SSD, strategy=strategy,
            publishing_rate_per_min=8.0, duration_ms=90_000.0, dynamics=CHURNY,
        )
        vector = _run_config(base)
        oracle = _run_config(base.replace(matcher_backend="oracle"))
        assert _fingerprint(vector) == _fingerprint(oracle)
        vector.metrics.check_invariants()

    @pytest.mark.parametrize("scenario", [Scenario.PSD, Scenario.SSD])
    def test_metrics_backends(self, scenario):
        base = SimulationConfig(
            seed=9, scenario=scenario, strategy="eb",
            publishing_rate_per_min=8.0, duration_ms=90_000.0, dynamics=CHURNY,
        )
        ledger = _run_config(base)
        scalar = _run_config(base.replace(metrics_backend="scalar"))
        assert _fingerprint(ledger) == _fingerprint(scalar)
        assert ledger.metrics.per_subscriber_valid == scalar.metrics.per_subscriber_valid

    def test_queue_backends(self):
        base = SimulationConfig(
            seed=9, scenario=Scenario.SSD, strategy="ebpc",
            publishing_rate_per_min=8.0, duration_ms=90_000.0, dynamics=CHURNY,
        )
        fast = _run_config(base)
        scan = _run_config(base.replace(queue_backend="scan"))
        assert _fingerprint(fast) == _fingerprint(scan)
