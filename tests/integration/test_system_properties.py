"""Property-based end-to-end invariants over random small systems.

hypothesis drives random meshes, subscription populations and bursts;
the invariants must hold for every draw:

* no subscriber ever receives the same message twice (single-path routing
  + provenance check);
* a subscriber only receives messages its filter matches;
* counter conservation: valid + late deliveries never exceed the
  (message, interested-subscriber) pair count; receptions ≥ published;
* the simulation always drains (no livelock) and queues empty.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_strategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import build_random_mesh
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem


@st.composite
def system_scenario(draw):
    topo_seed = draw(st.integers(0, 200))
    broker_count = draw(st.integers(4, 10))
    extra_links = draw(st.integers(0, 6))
    n_publishers = draw(st.integers(1, 3))
    n_subscribers = draw(st.integers(1, 8))
    strategy = draw(st.sampled_from(["eb", "pc", "fifo", "rl", "ebpc"]))
    thresholds = draw(
        st.lists(st.floats(0.5, 9.5), min_size=n_subscribers, max_size=n_subscribers)
    )
    deadlines = draw(
        st.lists(
            st.sampled_from([10_000.0, 30_000.0, 60_000.0]),
            min_size=n_subscribers,
            max_size=n_subscribers,
        )
    )
    n_messages = draw(st.integers(1, 12))
    attr_values = draw(
        st.lists(st.floats(0.0, 10.0), min_size=n_messages, max_size=n_messages)
    )
    return (
        topo_seed, broker_count, extra_links, n_publishers, n_subscribers,
        strategy, thresholds, deadlines, n_messages, attr_values,
    )


@pytest.mark.filterwarnings(
    # The strategy may request more chords than a small mesh can hold;
    # the builder's under-build warning is expected in that corner.
    "ignore:build_random_mesh:RuntimeWarning"
)
@given(scenario=system_scenario())
@settings(max_examples=60, deadline=None)
def test_invariants_hold_for_random_systems(scenario):
    (topo_seed, broker_count, extra_links, n_publishers, n_subscribers,
     strategy, thresholds, deadlines, n_messages, attr_values) = scenario

    topo = build_random_mesh(
        np.random.default_rng(topo_seed),
        broker_count=broker_count,
        extra_links=extra_links,
        publishers=n_publishers,
        subscribers=n_subscribers,
    )
    system = PubSubSystem(
        topology=topo,
        strategy=make_strategy(strategy),
        sim=Simulator(),
        streams=RngStreams(topo_seed),
    )
    subscriptions = {}
    for i, (threshold, deadline) in enumerate(zip(thresholds, deadlines)):
        sub = Subscription(
            f"S{i + 1}", Predicate("A1", "<", threshold), deadline_ms=deadline, price=1.0
        )
        subscriptions[sub.subscriber] = sub
        system.subscribe(sub)

    publishers = sorted(topo.publisher_brokers)
    messages = []
    for i, value in enumerate(attr_values):
        messages.append(
            system.publish(publishers[i % len(publishers)], {"A1": value}, size_kb=5.0)
        )
    system.sim.run()

    # 1. No duplicates, and filters respected.
    for name, handle in system.subscribers.items():
        ids = [r.msg_id for r in handle.records]
        assert len(ids) == len(set(ids)), f"duplicate delivery at {name}"
        threshold = subscriptions[name].filter.value
        for msg_id in ids:
            assert messages[msg_id].attributes["A1"] < threshold

    # 2. Conservation.
    m = system.metrics
    m.check_invariants()
    assert m.deliveries_valid + m.deliveries_late <= m.total_interested
    assert m.receptions >= m.published == n_messages

    # 3. Drained.
    assert system.total_queued() == 0
    assert system.sim.pending_events == 0
