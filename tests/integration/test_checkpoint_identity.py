"""Checkpoint/resume differential: a snapshot is a residency pause, never
a result knob.

The acceptance bar of the checkpoint PR: a run snapshotted mid-flight,
restored *into fresh objects* from the on-disk checkpoint, and run to
the horizon must be byte-identical to the uninterrupted run — figure
metrics, the raw delivery-log bytes, per-endpoint record streams,
windowed time series, executed-event counts.  Proven across all five
strategies, both metrics backends, both engine backends, spill on/off,
and a churn/flash-crowd dynamics script whose interventions straddle
the checkpoint time (pending intervention events must survive the
pickle as scheduled work).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import QueueDepthSampler, windowed_metrics
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    build_system,
    resume_run,
    save_run_checkpoint,
    schedule_dynamics,
    schedule_workload,
)
from repro.des.rng import RngStreams
from repro.network.topology import build_layered_mesh
from repro.workload.dynamics import (
    BrokerOutage,
    BrokerRecover,
    CascadeOutage,
    ChurnWave,
    FlashCrowd,
    LinkFailure,
    LinkRestore,
    RateBurst,
    ScenarioScript,
)
from repro.workload.scenarios import Scenario

#: Forces many sealed chunks in 90-second runs (a few thousand rows).
SMALL_CHUNK = 256

#: Interventions on BOTH sides of CKPT_MS: the burst and churn wave have
#: fired by snapshot time, the flash crowd is still a pending event that
#: must travel through the pickle.
CHURNY = ScenarioScript((
    RateBurst(20_000.0, 60_000.0, 3.0),
    ChurnWave(at_ms=25_000.0, leave=8, join=8),
    FlashCrowd(at_ms=40_000.0, count=10),
))

#: Mid-run snapshot time (the publication window is 90 s + grace).
CKPT_MS = 30_000.0

BASE = dict(seed=11, publishing_rate_per_min=6.0, duration_ms=90_000.0)


def _fault_script() -> ScenarioScript:
    """Hard faults straddling CKPT_MS: the link kill and broker outage
    have fired by snapshot time (so the snapshot carries down links, a
    down broker, pending retry events, and possibly dead-lettered
    traffic); the cascade and both recoveries are still pending events
    that must travel through the pickle.  Names come from the exact
    topology every seed-11 run builds."""
    topology = build_layered_mesh(RngStreams(11).get("topology"))
    a, b = [(x, y) for x, y, _rate in topology.links()][0]
    down = sorted(topology.brokers)[-1]
    return ScenarioScript((
        LinkFailure(at_ms=15_000.0, a=a, b=b),
        BrokerOutage(at_ms=20_000.0, broker=down),
        CascadeOutage(
            at_ms=40_000.0, origin=a, step_ms=4_000.0, max_depth=2,
            recover_after_ms=20_000.0,
        ),
        LinkRestore(at_ms=55_000.0, a=a, b=b),
        BrokerRecover(at_ms=60_000.0, broker=down),
    ))


FAULTY = _fault_script()

CONFIGS: dict[str, SimulationConfig] = {
    **{
        f"ssd-{s}-ledger": SimulationConfig(scenario=Scenario.SSD, strategy=s, **BASE)
        for s in ("fifo", "rl", "eb", "pc", "ebpc")
    },
    "ssd-eb-scalar": SimulationConfig(
        scenario=Scenario.SSD, strategy="eb", metrics_backend="scalar", **BASE
    ),
    "ssd-eb-event": SimulationConfig(
        scenario=Scenario.SSD, strategy="eb", engine_backend="event", **BASE
    ),
    "psd-eb-ledger": SimulationConfig(scenario=Scenario.PSD, strategy="eb", **BASE),
    "ssd-ebpc-churn": SimulationConfig(
        scenario=Scenario.SSD, strategy="ebpc", dynamics=CHURNY, **BASE
    ),
    "ssd-eb-faults": SimulationConfig(
        scenario=Scenario.SSD, strategy="eb", dynamics=FAULTY, **BASE
    ),
}

#: Configs additionally exercised with the spill ring engaged (the
#: snapshot then carries chunk *files*, not inlined arrays).
SPILL_NAMES = ("ssd-eb-ledger", "ssd-ebpc-churn", "ssd-eb-event", "ssd-eb-faults")


def _build(config: SimulationConfig):
    system = build_system(config)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    return system


def _fingerprint(system, config: SimulationConfig) -> dict:
    m = system.metrics
    log_h = hashlib.sha256()
    for col in system.delivery_log.columns():
        log_h.update(np.ascontiguousarray(col).tobytes())
    rec_h = hashlib.sha256()
    for name in sorted(system.subscribers):
        rec_h.update(name.encode())
        for col in system.subscribers[name].columns():
            rec_h.update(np.ascontiguousarray(col).tobytes())
    ts = windowed_metrics(system, 20_000.0, config.horizon_ms)
    ts_h = hashlib.sha256()
    for arr in (ts.edges, ts.published, ts.interested, ts.deliveries_valid,
                ts.deliveries_late, ts.earning, ts.latency_sum_ms):
        ts_h.update(np.ascontiguousarray(arr).tobytes())
    return {
        "published": m.published, "receptions": m.receptions,
        "transmissions": m.transmissions, "deliveries_valid": m.deliveries_valid,
        "deliveries_late": m.deliveries_late, "pruned": m.pruned,
        "earning": m.earning, "latency_sum_ms": m.latency_sum_ms,
        "delivery_rate": m.delivery_rate,
        "executed_events": system.sim.executed_events,
        "fault_ledger": system.faults.summary(),
        "delivery_log_sha256": log_h.hexdigest(),
        "endpoint_records_sha256": rec_h.hexdigest(),
        "windowed_series_sha256": ts_h.hexdigest(),
    }


def _uninterrupted(config: SimulationConfig) -> dict:
    system = _build(config)
    system.sim.run(until=config.horizon_ms)
    return _fingerprint(system, config)


def _checkpointed_resumed(
    config: SimulationConfig, tmp_path: Path, at_ms: float = CKPT_MS
) -> dict:
    """Run to ``at_ms``, snapshot to disk, restore into a FRESH object
    graph, run that to the horizon; fingerprint the restored world."""
    system = _build(config)
    system.sim.run(until=at_ms)
    path, _, size = save_run_checkpoint(system, config, tmp_path / "ck")
    assert size > 0
    del system  # identity must come from the restored graph alone
    restored, restored_config, _ = resume_run(path, config=config)
    restored.sim.run(until=restored_config.horizon_ms)
    return _fingerprint(restored, restored_config)


class TestCheckpointResumeIdentity:
    """Snapshot → restore-from-disk → run == one uninterrupted run."""

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_resumed_run_identical(self, name, tmp_path):
        config = CONFIGS[name].replace(log_chunk_rows=SMALL_CHUNK)
        assert _checkpointed_resumed(config, tmp_path) == _uninterrupted(config)

    @pytest.mark.parametrize("name", SPILL_NAMES)
    def test_resumed_run_identical_with_spill(self, name, tmp_path):
        # Chunks smaller than the identity-suite default so sealed spill
        # files exist on BOTH sides of the snapshot time.
        config = CONFIGS[name].replace(log_chunk_rows=64, log_spill=True)
        system = _build(config)
        system.sim.run(until=CKPT_MS)
        assert system.delivery_log.spilled_chunks > 0, "spill never engaged"
        path, _, _ = save_run_checkpoint(system, config, tmp_path / "ck")
        del system
        restored, restored_config, _ = resume_run(path, config=config)
        restored.sim.run(until=restored_config.horizon_ms)
        fp = _fingerprint(restored, restored_config)
        assert fp == _uninterrupted(config)
        # ...and the spilled run equals the in-memory run too, closing
        # the loop with the spill-identity suite.
        assert fp == _uninterrupted(config.replace(log_spill=False))

    def test_double_checkpoint_chain(self, tmp_path):
        """Snapshot, resume, snapshot the *resumed* run, resume again:
        checkpoints compose."""
        config = CONFIGS["ssd-ebpc-churn"].replace(log_chunk_rows=SMALL_CHUNK)
        system = _build(config)
        system.sim.run(until=20_000.0)
        p1, _, _ = save_run_checkpoint(system, config, tmp_path / "ck")
        del system
        mid, config2, _ = resume_run(p1, config=config)
        mid.sim.run(until=55_000.0)  # crosses the flash crowd at 40 s
        p2, _, _ = save_run_checkpoint(mid, config2, tmp_path / "ck")
        del mid
        final, config3, _ = resume_run(p2, config=config)
        final.sim.run(until=config3.horizon_ms)
        assert _fingerprint(final, config3) == _uninterrupted(config)

    def test_dynamics_sampler_rides_in_extras(self, tmp_path):
        """The queue-depth sampler (outside the system graph) checkpoints
        via the extras channel and buckets identically after resume."""
        config = CONFIGS["ssd-ebpc-churn"].replace(log_chunk_rows=SMALL_CHUNK)
        window_ms = 15_000.0

        def series(system, sampler):
            ts = windowed_metrics(
                system, window_ms, horizon_ms=config.horizon_ms, queue_sampler=sampler
            )
            return ts.queue_depth_mean

        plain = _build(config)
        plain_sampler = QueueDepthSampler(
            plain, every_ms=window_ms / 4.0, horizon_ms=config.horizon_ms
        )
        plain.sim.run(until=config.horizon_ms)

        system = _build(config)
        sampler = QueueDepthSampler(
            system, every_ms=window_ms / 4.0, horizon_ms=config.horizon_ms
        )
        system.sim.run(until=CKPT_MS)
        path, _, _ = save_run_checkpoint(
            system, config, tmp_path / "ck", extras={"queue_sampler": sampler}
        )
        del system, sampler
        restored, restored_config, extras = resume_run(path, config=config)
        restored_sampler = extras["queue_sampler"]
        assert restored_sampler is not None
        restored.sim.run(until=restored_config.horizon_ms)
        np.testing.assert_array_equal(
            series(restored, restored_sampler), series(plain, plain_sampler)
        )


class TestRandomCheckpointTimes:
    """The snapshot time is a free variable: identity holds wherever the
    run is paused, boundary-aligned or not."""

    # One run per example is expensive; the reference is computed once.
    _config = CONFIGS["ssd-eb-ledger"].replace(
        log_chunk_rows=SMALL_CHUNK, duration_ms=40_000.0
    )
    _reference: dict | None = None

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(at_ms=st.floats(min_value=1_000.0, max_value=39_000.0))
    def test_identity_at_arbitrary_pause_times(self, at_ms, tmp_path):
        if TestRandomCheckpointTimes._reference is None:
            TestRandomCheckpointTimes._reference = _uninterrupted(self._config)
        fp = _checkpointed_resumed(self._config, tmp_path, at_ms=at_ms)
        assert fp == TestRandomCheckpointTimes._reference
