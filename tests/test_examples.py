"""Smoke tests: the fast examples must run clean end to end.

The slower examples (tiered pricing, capacity planning) are exercised
manually / by CI at longer budgets; here we run the two quick ones and
verify their stdout carries the expected conclusions.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestQuickstart:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("quickstart.py")

    def test_reports_both_strategies(self, output):
        assert "EB" in output and "FIFO" in output
        assert "delivery rate" in output

    def test_headline_conclusion(self, output):
        # EB must beat FIFO on the quickstart seed.
        assert "EB delivers" in output
        factor = float(output.split("EB delivers ")[1].split("x")[0])
        assert factor > 1.0


class TestTrafficExample:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("traffic_info_dissemination.py")

    def test_all_strategies_reported(self, output):
        for name in ("eb", "pc", "ebpc", "fifo", "rl"):
            assert name in output

    def test_per_subscriber_breakdown(self, output):
        assert "per-subscriber" in output
        for sub in ("commuter-n1", "taxi-s1"):
            assert sub in output
