"""ScenarioScript compilation and live-system intervention tests."""

from __future__ import annotations

import pytest

from repro.des.rng import RngStreams
from repro.network.topology import build_layered_mesh
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics, schedule_workload
from repro.workload.dynamics import (
    PRESETS,
    ChurnWave,
    DynamicsDriver,
    FlashCrowd,
    LinkDegrade,
    LinkRecover,
    RateBurst,
    ScenarioScript,
)
from repro.workload.scenarios import Scenario


class TestScriptValidation:
    def test_empty_script_is_falsy_and_compiles_to_one_segment(self):
        script = ScenarioScript()
        assert not script
        segs = script.rate_segments(10.0, 60_000.0)
        assert len(segs) == 1
        assert (segs[0].start_ms, segs[0].end_ms, segs[0].rate_per_minute) == (
            0.0, 60_000.0, 10.0,
        )
        assert script.timed == ()

    def test_intervention_field_validation(self):
        with pytest.raises(ValueError):
            RateBurst(10.0, 10.0, 2.0)  # empty window
        with pytest.raises(ValueError):
            RateBurst(0.0, 10.0, -1.0)
        with pytest.raises(ValueError):
            LinkDegrade(-1.0, "A", "B", 2.0)
        with pytest.raises(ValueError):
            LinkDegrade(0.0, "A", "B", 0.0)
        with pytest.raises(ValueError):
            LinkRecover(-5.0, "A", "B")
        with pytest.raises(ValueError):
            ChurnWave(0.0)  # moves nobody
        with pytest.raises(ValueError):
            ChurnWave(0.0, leave=-1, join=2)
        with pytest.raises(ValueError):
            FlashCrowd(0.0, count=0)
        with pytest.raises(TypeError):
            ScenarioScript(("not an intervention",))

    def test_timed_sorted_by_time(self):
        script = ScenarioScript((
            ChurnWave(at_ms=500.0, leave=1),
            LinkDegrade(at_ms=100.0, a="A", b="B", factor=2.0),
            RateBurst(0.0, 10.0, 2.0),
        ))
        assert [type(i) for i in script.timed] == [LinkDegrade, ChurnWave]
        assert script.rate_bursts == (RateBurst(0.0, 10.0, 2.0),)


class TestRateSegments:
    def test_single_burst_splits_in_three(self):
        script = ScenarioScript((RateBurst(20.0, 40.0, 3.0),))
        segs = script.rate_segments(10.0, 100.0)
        assert [(s.start_ms, s.end_ms, s.rate_per_minute) for s in segs] == [
            (0.0, 20.0, 10.0), (20.0, 40.0, 30.0), (40.0, 100.0, 10.0),
        ]

    def test_overlapping_bursts_multiply(self):
        script = ScenarioScript((
            RateBurst(0.0, 60.0, 2.0),
            RateBurst(30.0, 90.0, 0.5),
        ))
        segs = script.rate_segments(10.0, 100.0)
        assert [(s.start_ms, s.end_ms, s.rate_per_minute) for s in segs] == [
            (0.0, 30.0, 20.0), (30.0, 60.0, 10.0), (60.0, 90.0, 5.0),
            (90.0, 100.0, 10.0),
        ]

    def test_burst_clips_to_duration(self):
        script = ScenarioScript((RateBurst(50.0, 500.0, 2.0),))
        segs = script.rate_segments(10.0, 100.0)
        assert segs[-1].end_ms == 100.0
        assert segs[-1].rate_per_minute == 20.0

    def test_burst_beyond_duration_ignored(self):
        script = ScenarioScript((RateBurst(200.0, 300.0, 2.0),))
        assert len(script.rate_segments(10.0, 100.0)) == 1


def _tiny_config(**kwargs) -> SimulationConfig:
    return SimulationConfig(
        seed=5,
        scenario=kwargs.pop("scenario", Scenario.SSD),
        strategy="eb",
        publishing_rate_per_min=6.0,
        duration_ms=60_000.0,
        **kwargs,
    )


class TestDriver:
    def test_empty_script_schedules_nothing(self):
        config = _tiny_config()
        system = build_system(config)
        before = system.sim.live_events
        assert schedule_dynamics(system, config) is None
        assert system.sim.live_events == before
        assert "dynamics" not in system.streams

    def test_churn_wave_changes_population(self):
        config = _tiny_config(
            dynamics=ScenarioScript((ChurnWave(at_ms=10_000.0, leave=5, join=3),))
        )
        system = build_system(config)
        base = system.subscription_count
        driver = schedule_dynamics(system, config)
        system.sim.run(until=config.horizon_ms)
        assert driver.applied == 1
        assert system.subscription_count == base - 5 + 3
        joined = [s for s in system.subscribers if s.startswith("D")]
        assert len(joined) == 3

    def test_flash_crowd_subscribers_receive(self):
        config = _tiny_config(
            dynamics=ScenarioScript((FlashCrowd(at_ms=5_000.0, count=8),))
        )
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        system.sim.run(until=config.horizon_ms)
        crowd = [h for name, h in system.subscribers.items() if name.startswith("D")]
        assert len(crowd) == 8
        # Broad filters + a healthy rate: the crowd actually gets traffic.
        assert sum(h.valid_count + h.late_count for h in crowd) > 0
        system.metrics.check_invariants()

    def test_mid_run_joiner_never_sees_older_messages(self):
        at = 20_000.0
        config = _tiny_config(
            dynamics=ScenarioScript((FlashCrowd(at_ms=at, count=4),))
        )
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        # Watermark: every message published before the crowd joined.
        pre_ids = {m for m in range(0)}
        system.sim.run(until=at)
        pre_ids = set(range(system.metrics.published))
        system.sim.run(until=config.horizon_ms)
        for name, handle in system.subscribers.items():
            if name.startswith("D"):
                assert not (handle.received_ids() & pre_ids)

    def test_link_degrade_and_recover(self):
        topo = build_layered_mesh(RngStreams(5).get("topology"))
        a, b, rate = min(topo.links(), key=lambda t: t[2].mean)
        config = _tiny_config(
            dynamics=ScenarioScript((
                LinkDegrade(at_ms=10_000.0, a=a, b=b, factor=4.0),
                LinkRecover(at_ms=30_000.0, a=a, b=b),
            ))
        )
        system = build_system(config)
        schedule_dynamics(system, config)
        built = system.built_link_rate(a, b)
        system.sim.run(until=20_000.0)
        assert system.monitors[(a, b)].rate().mean == pytest.approx(built.mean * 4.0)
        assert system.monitors[(b, a)].link.true_rate.std == pytest.approx(built.std * 4.0)
        system.sim.run(until=config.horizon_ms)
        assert system.monitors[(a, b)].rate() == built
        assert system.topology.link_rate(a, b) == built

    def test_degrade_is_relative_to_built_rate(self):
        config = _tiny_config()
        system = build_system(config)
        a, b, _ = system.topology.links()[0]
        built = system.built_link_rate(a, b)
        system.degrade_link(a, b, 2.0)
        system.degrade_link(a, b, 2.0)  # no compounding
        assert system.monitors[(a, b)].rate().mean == pytest.approx(built.mean * 2.0)

    def test_driver_rejects_rate_burst_as_timed(self):
        config = _tiny_config()
        system = build_system(config)
        driver = DynamicsDriver(system, scenario=Scenario.SSD)
        with pytest.raises(TypeError):
            driver.apply(RateBurst(0.0, 1.0, 2.0))

    def test_ssd_joiners_carry_priced_tiers(self):
        config = _tiny_config(
            dynamics=ScenarioScript((ChurnWave(at_ms=1_000.0, join=6),))
        )
        system = build_system(config)
        schedule_dynamics(system, config)
        system.sim.run(until=config.horizon_ms)
        joined = [
            system._subscriptions[s] for s in system.subscribers if s.startswith("D")
        ]
        assert len(joined) == 6
        assert all(s.price in (1.0, 2.0, 3.0) for s in joined)
        assert all(s.deadline_ms in (10_000.0, 30_000.0, 60_000.0) for s in joined)

    def test_psd_joiners_unpriced(self):
        config = _tiny_config(
            scenario=Scenario.PSD,
            dynamics=ScenarioScript((ChurnWave(at_ms=1_000.0, join=2),)),
        )
        system = build_system(config)
        schedule_dynamics(system, config)
        system.sim.run(until=config.horizon_ms)
        joined = [
            system._subscriptions[s] for s in system.subscribers if s.startswith("D")
        ]
        assert all(s.price is None and s.deadline_ms is None for s in joined)


class TestPresets:
    def test_all_presets_build_valid_scripts(self):
        topo = build_layered_mesh(RngStreams(0).get("topology"))
        for name, builder in PRESETS.items():
            script = builder(topo, 600_000.0)
            assert script, name
            segs = script.rate_segments(10.0, 600_000.0)
            assert segs[0].start_ms == 0.0
            assert segs[-1].end_ms == 600_000.0

    def test_degrade_worst_link_targets_fastest_link(self):
        topo = build_layered_mesh(RngStreams(0).get("topology"))
        script = PRESETS["degrade-worst-link"](topo, 600_000.0)
        degrade = next(i for i in script.timed if isinstance(i, LinkDegrade))
        best = min(topo.links(), key=lambda t: t[2].mean)
        assert {degrade.a, degrade.b} == {best[0], best[1]}
