"""Publication schedule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.generator import ArrivalProcess, generate_publications
from repro.workload.scenarios import Scenario


class TestSchedule:
    def test_time_sorted_within_horizon(self, rng):
        pubs = generate_publications(
            rng, ["P1", "P2"], rate_per_minute=10.0, duration_ms=600_000.0,
            scenario=Scenario.PSD,
        )
        times = [p.time_ms for p in pubs]
        assert times == sorted(times)
        assert all(0.0 <= t < 600_000.0 for t in times)

    def test_rate_respected_poisson(self, rng):
        # 10/min over 60 min for 2 publishers: expect ~1200 +- noise.
        pubs = generate_publications(
            rng, ["P1", "P2"], rate_per_minute=10.0, duration_ms=3_600_000.0,
            scenario=Scenario.SSD,
        )
        assert len(pubs) == pytest.approx(1200, rel=0.1)

    def test_fixed_arrival_exact_count(self, rng):
        pubs = generate_publications(
            rng, ["P1"], rate_per_minute=6.0, duration_ms=600_000.0,
            scenario=Scenario.SSD, arrival=ArrivalProcess.FIXED,
        )
        # Period 10 s over 600 s with a random phase: exactly 60 messages.
        assert len(pubs) == 60
        gaps = np.diff([p.time_ms for p in pubs])
        assert np.allclose(gaps, 10_000.0)

    def test_uniform_arrival_rate(self, rng):
        pubs = generate_publications(
            rng, ["P1"], rate_per_minute=30.0, duration_ms=1_200_000.0,
            scenario=Scenario.SSD, arrival=ArrivalProcess.UNIFORM,
        )
        assert len(pubs) == pytest.approx(600, rel=0.1)

    def test_zero_rate_empty(self, rng):
        assert generate_publications(
            rng, ["P1"], 0.0, 60_000.0, Scenario.PSD
        ) == []

    def test_psd_messages_carry_deadlines(self, rng):
        pubs = generate_publications(
            rng, ["P1"], 10.0, 600_000.0, Scenario.PSD,
        )
        assert all(p.deadline_ms is not None and 10_000 <= p.deadline_ms <= 30_000 for p in pubs)

    def test_ssd_messages_carry_none(self, rng):
        pubs = generate_publications(rng, ["P1"], 10.0, 600_000.0, Scenario.SSD)
        assert all(p.deadline_ms is None for p in pubs)

    def test_attributes_randomised(self, rng):
        pubs = generate_publications(rng, ["P1"], 30.0, 600_000.0, Scenario.SSD)
        values = {p.attributes["A1"] for p in pubs}
        assert len(values) > 100  # essentially all distinct

    def test_size_propagates(self, rng):
        pubs = generate_publications(
            rng, ["P1"], 10.0, 60_000.0, Scenario.SSD, size_kb=7.5
        )
        assert all(p.size_kb == 7.5 for p in pubs)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], -1.0, 60_000.0, Scenario.PSD)
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], 1.0, 0.0, Scenario.PSD)
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], 1.0, 60_000.0, Scenario.PSD, size_kb=0.0)
