"""Publication schedule tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import ArrivalProcess, generate_publications
from repro.workload.scenarios import Scenario


class TestSchedule:
    def test_time_sorted_within_horizon(self, rng):
        pubs = generate_publications(
            rng, ["P1", "P2"], rate_per_minute=10.0, duration_ms=600_000.0,
            scenario=Scenario.PSD,
        )
        times = [p.time_ms for p in pubs]
        assert times == sorted(times)
        assert all(0.0 <= t < 600_000.0 for t in times)

    def test_rate_respected_poisson(self, rng):
        # 10/min over 60 min for 2 publishers: expect ~1200 +- noise.
        pubs = generate_publications(
            rng, ["P1", "P2"], rate_per_minute=10.0, duration_ms=3_600_000.0,
            scenario=Scenario.SSD,
        )
        assert len(pubs) == pytest.approx(1200, rel=0.1)

    def test_fixed_arrival_exact_count(self, rng):
        pubs = generate_publications(
            rng, ["P1"], rate_per_minute=6.0, duration_ms=600_000.0,
            scenario=Scenario.SSD, arrival=ArrivalProcess.FIXED,
        )
        # Period 10 s over 600 s with a random phase: exactly 60 messages.
        assert len(pubs) == 60
        gaps = np.diff([p.time_ms for p in pubs])
        assert np.allclose(gaps, 10_000.0)

    def test_uniform_arrival_rate(self, rng):
        pubs = generate_publications(
            rng, ["P1"], rate_per_minute=30.0, duration_ms=1_200_000.0,
            scenario=Scenario.SSD, arrival=ArrivalProcess.UNIFORM,
        )
        assert len(pubs) == pytest.approx(600, rel=0.1)

    def test_zero_rate_empty(self, rng):
        assert generate_publications(
            rng, ["P1"], 0.0, 60_000.0, Scenario.PSD
        ) == []

    def test_psd_messages_carry_deadlines(self, rng):
        pubs = generate_publications(
            rng, ["P1"], 10.0, 600_000.0, Scenario.PSD,
        )
        assert all(p.deadline_ms is not None and 10_000 <= p.deadline_ms <= 30_000 for p in pubs)

    def test_ssd_messages_carry_none(self, rng):
        pubs = generate_publications(rng, ["P1"], 10.0, 600_000.0, Scenario.SSD)
        assert all(p.deadline_ms is None for p in pubs)

    def test_attributes_randomised(self, rng):
        pubs = generate_publications(rng, ["P1"], 30.0, 600_000.0, Scenario.SSD)
        values = {p.attributes["A1"] for p in pubs}
        assert len(values) > 100  # essentially all distinct

    def test_size_propagates(self, rng):
        pubs = generate_publications(
            rng, ["P1"], 10.0, 60_000.0, Scenario.SSD, size_kb=7.5
        )
        assert all(p.size_kb == 7.5 for p in pubs)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], -1.0, 60_000.0, Scenario.PSD)
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], 1.0, 0.0, Scenario.PSD)
        with pytest.raises(ValueError):
            generate_publications(rng, ["P1"], 1.0, 60_000.0, Scenario.PSD, size_kb=0.0)


class TestPiecewise:
    """The piecewise-rate arrival process (the dynamics scripts' engine)."""

    def _seg(self, *triples):
        from repro.workload.generator import RateSegment

        return [RateSegment(a, b, r) for a, b, r in triples]

    @given(
        rate=st.floats(min_value=0.5, max_value=60.0),
        duration_min=st.floats(min_value=0.5, max_value=30.0),
        arrival=st.sampled_from(list(ArrivalProcess)),
        scenario=st.sampled_from(list(Scenario)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_segment_reduces_to_homogeneous(
        self, rate, duration_min, arrival, scenario, seed
    ):
        from repro.workload.generator import generate_publications_piecewise

        duration = duration_min * 60_000.0
        homogeneous = generate_publications(
            np.random.default_rng(seed), ["P1", "P2"], rate, duration, scenario,
            arrival=arrival,
        )
        piecewise = generate_publications_piecewise(
            np.random.default_rng(seed), ["P1", "P2"],
            self._seg((0.0, duration, rate)), duration, scenario, arrival=arrival,
        )
        # Byte-identical, not merely statistically equal: same times, same
        # attribute draws, same deadlines, in the same order.
        assert piecewise == homogeneous

    def test_per_segment_counts_match_expectation(self, rng):
        from repro.workload.generator import generate_publications_piecewise

        # 20 publishers x 10 minutes split 2/min then 20/min: expected
        # counts 200 and 2000 per phase.
        segs = self._seg((0.0, 300_000.0, 2.0), (300_000.0, 600_000.0, 20.0))
        pubs = generate_publications_piecewise(
            rng, [f"P{i}" for i in range(20)], segs, 600_000.0, Scenario.SSD,
        )
        first = sum(1 for p in pubs if p.time_ms < 300_000.0)
        second = len(pubs) - first
        assert first == pytest.approx(200, rel=0.25)
        assert second == pytest.approx(2000, rel=0.1)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        arrival=st.sampled_from(list(ArrivalProcess)),
        cut=st.floats(min_value=0.2, max_value=0.8),
        r1=st.floats(min_value=0.0, max_value=30.0),
        r2=st.floats(min_value=0.0, max_value=30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_piecewise_wellformed(self, seed, arrival, cut, r1, r2):
        from repro.workload.generator import generate_publications_piecewise

        duration = 600_000.0
        boundary = cut * duration
        segs = self._seg((0.0, boundary, r1), (boundary, duration, r2))
        pubs = generate_publications_piecewise(
            np.random.default_rng(seed), ["P1", "P2"], segs, duration, Scenario.PSD,
            arrival=arrival,
        )
        times = [p.time_ms for p in pubs]
        assert times == sorted(times)
        assert all(0.0 <= t < duration for t in times)
        # Zero-rate segments are silent.
        if r1 == 0.0:
            assert all(t >= boundary for t in times)
        if r2 == 0.0:
            assert all(t < boundary for t in times)
        if r1 == r2 == 0.0:
            assert pubs == []

    def test_zero_rate_gap_freezes_phase_for_fixed_arrival(self, rng):
        from repro.workload.generator import generate_publications_piecewise

        # 6/min fixed (10 s period) with a silent middle minute: arrivals
        # resume at the boundary with the pre-gap phase intact.
        segs = self._seg(
            (0.0, 60_000.0, 6.0), (60_000.0, 120_000.0, 0.0), (120_000.0, 180_000.0, 6.0)
        )
        pubs = generate_publications_piecewise(
            rng, ["P1"], segs, 180_000.0, Scenario.SSD, arrival=ArrivalProcess.FIXED,
        )
        times = [p.time_ms for p in pubs]
        assert sum(1 for t in times if t < 60_000.0) == 6
        assert not any(60_000.0 <= t < 120_000.0 for t in times)
        assert sum(1 for t in times if t >= 120_000.0) == 6
        # Phase carries over: offsets within the period repeat exactly.
        assert (times[6] - 120_000.0) % 10_000.0 == pytest.approx(
            times[0] % 10_000.0, abs=1e-6
        )

    def test_segment_validation(self, rng):
        from repro.workload.generator import (
            RateSegment,
            generate_publications_piecewise,
            validate_segments,
        )

        with pytest.raises(ValueError):
            RateSegment(0.0, 0.0, 1.0)  # empty
        with pytest.raises(ValueError):
            RateSegment(0.0, 10.0, -1.0)  # negative rate
        with pytest.raises(ValueError):
            validate_segments([], 10.0)
        with pytest.raises(ValueError):  # gap between segments
            validate_segments(
                [RateSegment(0.0, 5.0, 1.0), RateSegment(6.0, 10.0, 1.0)], 10.0
            )
        with pytest.raises(ValueError):  # doesn't start at 0
            validate_segments([RateSegment(1.0, 10.0, 1.0)], 10.0)
        with pytest.raises(ValueError):  # ends before the duration
            generate_publications_piecewise(
                rng, ["P1"], [RateSegment(0.0, 5.0, 1.0)], 10.0, Scenario.SSD
            )
