"""The unified scenario registry and the script wire format."""

from __future__ import annotations

import json

import pytest

from repro.workload.dynamics import (
    PRESETS,
    CascadeOutage,
    LinkFailure,
    LinkPartition,
    RateBurst,
    ScenarioScript,
)
from repro.workload.registry import (
    INTERVENTION_TYPES,
    SCRIPT_SCHEMA,
    ScenarioEntry,
    intervention_from_dict,
    intervention_to_dict,
    load_script,
    registry,
    resolve,
    save_script,
    script_from_dict,
    script_to_dict,
)
from repro.workload.scenarios import SCALE_SCENARIOS
from tests.conftest import make_line_topology

SAMPLE = ScenarioScript((
    LinkFailure(at_ms=10_000.0, a="B1", b="B2"),
    LinkPartition(at_ms=20_000.0, group=("B2", "B3"), heal_ms=35_000.0),
    CascadeOutage(at_ms=30_000.0, origin="B1", spread_prob=0.4, decay=0.25,
                  max_depth=2, step_ms=2_500.0, recover_after_ms=9_000.0),
    RateBurst(5_000.0, 15_000.0, 2.5),
))


class TestWireFormat:
    def test_every_intervention_type_registered(self):
        # The Union in dynamics.py and the wire tags must stay in sync.
        assert len(INTERVENTION_TYPES) == 11
        assert set(INTERVENTION_TYPES) >= {
            "LinkFailure", "LinkRestore", "LinkPartition",
            "BrokerOutage", "BrokerRecover", "CascadeOutage",
        }

    @pytest.mark.parametrize("item", SAMPLE.interventions, ids=lambda i: type(i).__name__)
    def test_intervention_round_trip_exact(self, item):
        assert intervention_from_dict(intervention_to_dict(item)) == item

    def test_wire_dict_is_json_safe(self):
        payload = script_to_dict(SAMPLE)
        rebuilt = script_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == SAMPLE

    def test_tuple_fields_become_lists(self):
        d = intervention_to_dict(SAMPLE.interventions[1])
        assert d["type"] == "LinkPartition"
        assert d["group"] == ["B2", "B3"]
        assert isinstance(intervention_from_dict(d).group, tuple)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown intervention type"):
            intervention_from_dict({"type": "MeteorStrike", "at_ms": 1.0})

    def test_unknown_field_rejected(self):
        d = intervention_to_dict(SAMPLE.interventions[0])
        d["severity"] = "total"
        with pytest.raises(ValueError, match="unknown field"):
            intervention_from_dict(d)

    def test_wrong_schema_rejected(self):
        payload = script_to_dict(SAMPLE)
        payload["schema"] = SCRIPT_SCHEMA + 1
        with pytest.raises(ValueError, match="unsupported script schema"):
            script_from_dict(payload)

    def test_save_load_file_round_trip(self, tmp_path):
        path = save_script(tmp_path / "s.json", SAMPLE, seed=7, note="repro")
        assert load_script(path) == SAMPLE
        raw = json.loads(path.read_text())
        assert raw["meta"] == {"seed": 7, "note": "repro"}
        assert raw["schema"] == SCRIPT_SCHEMA

    def test_empty_script_round_trips(self):
        empty = ScenarioScript()
        assert script_from_dict(script_to_dict(empty)) == empty


class TestRegistry:
    def test_contains_all_families(self):
        entries = registry()
        for name in SCALE_SCENARIOS:
            assert f"scale:{name}" in entries
        for name in PRESETS:
            assert f"preset:{name}" in entries
        assert len(entries) == len(SCALE_SCENARIOS) + len(PRESETS)

    def test_resolve_qualified_and_bare(self):
        assert resolve("preset:cascade").kind == "preset"
        assert resolve("100k").qualified == "scale:100k"

    def test_resolve_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known:"):
            resolve("nonesuch")

    def test_extra_scripts_registered_and_resolvable(self):
        extra = {"repro-42": SAMPLE}
        entry = resolve("repro-42", extra_scripts=extra)
        assert entry.kind == "script"
        assert entry.script == SAMPLE
        assert "4 intervention(s)" in entry.description

    def test_extra_scripts_never_shadow_builtins(self):
        # An extra named like a preset lands under script: — both coexist,
        # and the bare name becomes ambiguous rather than silently shadowed.
        extra = {"cascade": SAMPLE}
        entries = registry(extra_scripts=extra)
        assert "preset:cascade" in entries and "script:cascade" in entries
        with pytest.raises(KeyError, match="ambiguous"):
            resolve("cascade", extra_scripts=extra)

    def test_compile_by_kind(self):
        topology = make_line_topology(
            n=3, publishers={"P1": "B1"}, subscribers={"S1": "B3"}
        )
        duration = 60_000.0
        scale = resolve("scale:smoke").compile(topology, duration)
        assert scale == ScenarioScript()
        preset = resolve("preset:cascade").compile(topology, duration)
        assert preset.interventions  # concrete faults against this topology
        explicit = ScenarioEntry(
            name="e", kind="script", description="", script=SAMPLE
        ).compile(topology, duration)
        assert explicit is SAMPLE

    def test_entry_payload_must_match_kind(self):
        with pytest.raises(ValueError, match="needs its payload"):
            ScenarioEntry(name="x", kind="script", description="")
        with pytest.raises(ValueError, match="unknown scenario kind"):
            ScenarioEntry(name="x", kind="magic", description="", script=SAMPLE)
