"""Random filter/attribute generator tests."""

from __future__ import annotations

import pytest

from repro.pubsub.filters import AndFilter, Predicate
from repro.workload.subscriptions import random_attributes, random_conjunctive_filter


class TestRandomFilter:
    def test_structure(self, rng):
        f = random_conjunctive_filter(rng)
        assert isinstance(f, AndFilter)
        assert len(f.parts) == 2
        assert all(isinstance(p, Predicate) and p.op == "<" for p in f.parts)

    def test_single_attribute_returns_predicate(self, rng):
        f = random_conjunctive_filter(rng, attributes=("X",))
        assert isinstance(f, Predicate)

    def test_thresholds_in_range(self, rng):
        for _ in range(100):
            f = random_conjunctive_filter(rng)
            for p in f.parts:
                assert 0.0 <= p.value <= 10.0

    def test_selectivity_is_quarter(self, rng):
        """The paper's 25 % average selectivity for 2-attribute filters."""
        filters = [random_conjunctive_filter(rng) for _ in range(300)]
        hits = total = 0
        for _ in range(300):
            attrs = random_attributes(rng)
            for f in filters:
                hits += f.matches(attrs)
                total += 1
        assert hits / total == pytest.approx(0.25, abs=0.025)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_conjunctive_filter(rng, value_range=(5.0, 5.0))
        with pytest.raises(ValueError):
            random_conjunctive_filter(rng, attributes=())


class TestRandomAttributes:
    def test_keys_and_range(self, rng):
        attrs = random_attributes(rng)
        assert set(attrs) == {"A1", "A2"}
        assert all(0.0 <= v <= 10.0 for v in attrs.values())

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_attributes(rng, value_range=(3.0, 1.0))
