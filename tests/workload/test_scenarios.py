"""Scenario builder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.scenarios import (
    SCALE_SCENARIOS,
    SSD_PRICE_BY_DEADLINE_MS,
    Scenario,
    ScaleScenarioSpec,
    build_scale_subscriptions,
    build_subscriptions,
    draw_message_deadline_ms,
)
from tests.conftest import make_line_topology


@pytest.fixture
def topo():
    return make_line_topology(
        n=2,
        publishers={"P1": "B1"},
        subscribers={f"S{i}": "B2" for i in range(1, 41)},
    )


class TestScenarioFlags:
    def test_psd(self):
        assert Scenario.PSD.messages_carry_deadlines
        assert not Scenario.PSD.subscriptions_carry_deadlines

    def test_ssd(self):
        assert not Scenario.SSD.messages_carry_deadlines
        assert Scenario.SSD.subscriptions_carry_deadlines

    def test_hybrid(self):
        assert Scenario.HYBRID.messages_carry_deadlines
        assert Scenario.HYBRID.subscriptions_carry_deadlines


class TestMessageDeadlines:
    def test_psd_in_range(self, rng):
        for _ in range(200):
            dl = draw_message_deadline_ms(Scenario.PSD, rng)
            assert 10_000.0 <= dl <= 30_000.0

    def test_ssd_is_none(self, rng):
        assert draw_message_deadline_ms(Scenario.SSD, rng) is None

    def test_bad_range(self, rng):
        with pytest.raises(ValueError):
            draw_message_deadline_ms(Scenario.PSD, rng, deadline_range_ms=(5.0, 1.0))


class TestBuildSubscriptions:
    def test_one_per_subscriber(self, rng, topo):
        subs = build_subscriptions(Scenario.PSD, rng, topo)
        assert len(subs) == 40
        assert sorted(s.subscriber for s in subs) == sorted(topo.subscriber_brokers)

    def test_psd_subscriptions_unbounded(self, rng, topo):
        subs = build_subscriptions(Scenario.PSD, rng, topo)
        assert all(s.deadline_ms is None and s.price is None for s in subs)

    def test_ssd_deadline_price_pairs(self, rng, topo):
        subs = build_subscriptions(Scenario.SSD, rng, topo)
        for s in subs:
            assert s.deadline_ms in SSD_PRICE_BY_DEADLINE_MS
            assert s.price == SSD_PRICE_BY_DEADLINE_MS[s.deadline_ms]

    def test_ssd_uses_all_tiers(self, rng, topo):
        subs = build_subscriptions(Scenario.SSD, rng, topo)
        assert {s.deadline_ms for s in subs} == set(SSD_PRICE_BY_DEADLINE_MS)

    def test_custom_price_table(self, rng, topo):
        table = {5_000.0: 10.0}
        subs = build_subscriptions(Scenario.SSD, rng, topo, price_table=table)
        assert all(s.deadline_ms == 5_000.0 and s.price == 10.0 for s in subs)

    def test_empty_price_table_rejected(self, rng, topo):
        with pytest.raises(ValueError):
            build_subscriptions(Scenario.SSD, rng, topo, price_table={})

    def test_deterministic_per_rng_state(self, topo):
        a = build_subscriptions(Scenario.SSD, np.random.default_rng(1), topo)
        b = build_subscriptions(Scenario.SSD, np.random.default_rng(1), topo)
        assert [(s.subscriber, s.deadline_ms, str(s.filter)) for s in a] == [
            (s.subscriber, s.deadline_ms, str(s.filter)) for s in b
        ]


class TestScaleFamily:
    def test_family_members(self):
        assert SCALE_SCENARIOS["100k"].subscribers == 100_000
        assert SCALE_SCENARIOS["250k"].subscribers == 250_000
        assert SCALE_SCENARIOS["1m"].subscribers == 1_000_000
        assert SCALE_SCENARIOS["smoke"].subscribers < 20_000  # CI-sized

    def test_topology_spec_covers_population(self):
        spec = SCALE_SCENARIOS["100k"]
        topo_spec = spec.topology_spec()
        edges = topo_spec.layer_sizes[-1]
        assert edges * topo_spec.subscribers_per_edge_broker >= spec.subscribers

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleScenarioSpec(name="bad", subscribers=0)
        with pytest.raises(ValueError):
            ScaleScenarioSpec(name="bad", subscribers=10, filter_pool=0)
        with pytest.raises(ValueError):
            ScaleScenarioSpec(name="bad", subscribers=10, zipf_exponent=0.0)
        with pytest.raises(ValueError):
            ScaleScenarioSpec(name="bad", subscribers=10, selectivity_range=(0.5, 1.5))

    def test_build_skewed_population(self, topo):
        spec = ScaleScenarioSpec(name="t", subscribers=40, filter_pool=4, zipf_exponent=1.5)
        subs = build_scale_subscriptions(np.random.default_rng(0), topo, spec)
        assert len(subs) == 40
        assert {s.subscriber for s in subs} == set(topo.subscriber_brokers)
        # Filters come from a shared pool — far fewer distinct filters
        # than subscribers — with Zipf-skewed popularity.
        counts: dict[str, int] = {}
        for s in subs:
            counts[str(s.filter)] = counts.get(str(s.filter), 0) + 1
        assert len(counts) <= spec.filter_pool
        assert max(counts.values()) > min(counts.values())
        # SSD pricing keeps earning/scheduling real at scale.
        for s in subs:
            assert s.price == SSD_PRICE_BY_DEADLINE_MS[s.deadline_ms]

    def test_high_fanout_thresholds(self, topo):
        spec = ScaleScenarioSpec(name="t", subscribers=40)
        subs = build_scale_subscriptions(np.random.default_rng(0), topo, spec)
        lo, hi = spec.value_range
        s_lo, _ = spec.selectivity_range
        for s in subs:
            for pred in getattr(s.filter, "parts", (s.filter,)):
                assert pred.value >= lo + s_lo * (hi - lo)

    def test_deterministic_per_rng_state(self, topo):
        spec = SCALE_SCENARIOS["smoke"]
        a = build_scale_subscriptions(np.random.default_rng(5), topo, spec)
        b = build_scale_subscriptions(np.random.default_rng(5), topo, spec)
        assert [(s.subscriber, s.deadline_ms, str(s.filter)) for s in a] == [
            (s.subscriber, s.deadline_ms, str(s.filter)) for s in b
        ]
