"""Online estimator tests: correctness vs numpy, convergence properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.estimators import (
    EwmaEstimator,
    RateEstimator,
    SlidingWindowEstimator,
    WelfordEstimator,
)

finite_samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=200,
)


class TestWelford:
    def test_matches_numpy(self, rng):
        xs = rng.normal(10.0, 3.0, size=500)
        est = WelfordEstimator()
        est.observe_many(xs)
        assert est.count == 500
        assert est.mean == pytest.approx(xs.mean(), rel=1e-10)
        assert est.variance == pytest.approx(xs.var(ddof=1), rel=1e-10)

    def test_zero_variance_before_two_samples(self):
        est = WelfordEstimator()
        assert est.variance == 0.0
        est.observe(5.0)
        assert est.mean == 5.0
        assert est.variance == 0.0

    def test_rejects_nonfinite(self):
        est = WelfordEstimator()
        with pytest.raises(ValueError):
            est.observe(float("nan"))
        with pytest.raises(ValueError):
            est.observe(float("inf"))

    @given(xs=finite_samples)
    @settings(max_examples=100)
    def test_property_matches_numpy(self, xs):
        est = WelfordEstimator()
        est.observe_many(xs)
        arr = np.asarray(xs)
        assert est.mean == pytest.approx(arr.mean(), rel=1e-6, abs=1e-6)
        assert est.variance == pytest.approx(arr.var(ddof=1), rel=1e-6, abs=1e-4)

    def test_distribution_snapshot(self):
        est = WelfordEstimator()
        est.observe_many([1.0, 2.0, 3.0])
        d = est.distribution()
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(1.0)

    def test_satisfies_protocol(self):
        assert isinstance(WelfordEstimator(), RateEstimator)
        assert isinstance(SlidingWindowEstimator(), RateEstimator)
        assert isinstance(EwmaEstimator(), RateEstimator)


class TestSlidingWindow:
    def test_window_semantics(self):
        est = SlidingWindowEstimator(window=3)
        est.observe_many([1.0, 2.0, 3.0, 100.0])
        # Window now holds [2, 3, 100].
        assert est.count == 3
        assert est.mean == pytest.approx(105.0 / 3)

    def test_matches_numpy_on_tail(self, rng):
        xs = rng.normal(0.0, 1.0, size=300)
        est = SlidingWindowEstimator(window=50)
        est.observe_many(xs)
        tail = xs[-50:]
        assert est.mean == pytest.approx(tail.mean(), rel=1e-8, abs=1e-8)
        assert est.variance == pytest.approx(tail.var(ddof=1), rel=1e-6, abs=1e-8)

    def test_resync_controls_drift(self, rng):
        # Many evictions with huge magnitude cancellation.
        est = SlidingWindowEstimator(window=4)
        xs = list(rng.normal(1e8, 1.0, size=1000))
        est.observe_many(xs)
        tail = np.asarray(xs[-4:])
        assert est.mean == pytest.approx(tail.mean(), rel=1e-9)
        assert est.variance == pytest.approx(tail.var(ddof=1), rel=1e-3)

    def test_adapts_to_shift(self):
        est = SlidingWindowEstimator(window=10)
        est.observe_many([0.0] * 20)
        est.observe_many([50.0] * 10)
        assert est.mean == pytest.approx(50.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowEstimator(window=1)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            SlidingWindowEstimator().observe(float("-inf"))


class TestEwma:
    def test_first_sample_initialises(self):
        est = EwmaEstimator(alpha=0.2)
        est.observe(42.0)
        assert est.mean == 42.0
        assert est.variance == 0.0

    def test_converges_to_constant(self):
        est = EwmaEstimator(alpha=0.25)
        est.observe_many([3.0] * 100)
        assert est.mean == pytest.approx(3.0)
        assert est.variance == pytest.approx(0.0, abs=1e-12)

    def test_tracks_mean_of_stationary_stream(self, rng):
        est = EwmaEstimator(alpha=0.05)
        est.observe_many(rng.normal(75.0, 20.0, size=5000))
        assert est.mean == pytest.approx(75.0, abs=3.0)
        assert est.variance == pytest.approx(400.0, rel=0.35)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)

    @given(xs=finite_samples, alpha=st.floats(0.01, 1.0))
    @settings(max_examples=100)
    def test_variance_nonnegative(self, xs, alpha):
        est = EwmaEstimator(alpha=alpha)
        est.observe_many(xs)
        assert est.variance >= 0.0
        lo, hi = min(xs), max(xs)
        assert lo - 1e-9 <= est.mean <= hi + 1e-9
