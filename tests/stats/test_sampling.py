"""Truncated sampling tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.normal import Normal
from repro.stats.sampling import (
    TruncatedNormalSampler,
    sample_positive_normal,
    truncated_normal_mean,
)


class TestSamplePositiveNormal:
    def test_always_positive(self, rng):
        for _ in range(2000):
            assert sample_positive_normal(rng, mean=1.0, std=2.0) > 0.0

    def test_degenerate_std(self, rng):
        assert sample_positive_normal(rng, mean=5.0, std=0.0) == 5.0
        # Non-positive degenerate mean falls back to the floor.
        assert sample_positive_normal(rng, mean=-5.0, std=0.0, floor=1e-6) == 1e-6

    def test_hopeless_distribution_hits_floor(self, rng):
        value = sample_positive_normal(rng, mean=-1e9, std=1.0, floor=0.5, max_tries=4)
        assert value == 0.5

    def test_negative_std_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_positive_normal(rng, mean=0.0, std=-1.0)

    def test_mean_matches_theory(self, rng):
        mean, std = 2.0, 3.0  # substantial truncation mass
        xs = np.array([sample_positive_normal(rng, mean, std) for _ in range(100_000)])
        assert xs.mean() == pytest.approx(truncated_normal_mean(mean, std), rel=0.02)

    def test_paper_parameters_barely_truncate(self, rng):
        # mu in [50, 100], sigma = 20: truncation below zero is ~Phi(-2.5).
        xs = np.array([sample_positive_normal(rng, 50.0, 20.0) for _ in range(50_000)])
        assert xs.mean() == pytest.approx(truncated_normal_mean(50.0, 20.0), rel=0.02)
        assert abs(xs.mean() - 50.0) < 1.0  # distortion well under 2 %


class TestTruncatedNormalSampler:
    def test_tracks_rejections(self, rng):
        sampler = TruncatedNormalSampler(Normal(0.0, 1.0))  # half the mass below 0
        for _ in range(2000):
            assert sampler.sample(rng) > 0.0
        assert sampler.draws == 2000
        assert 0.3 < sampler.rejection_rate < 0.7

    def test_truncation_mass_analytic(self):
        sampler = TruncatedNormalSampler(Normal(50.0, 400.0))
        assert sampler.truncation_mass() == pytest.approx(0.00621, abs=1e-4)

    def test_degenerate_distribution(self, rng):
        sampler = TruncatedNormalSampler(Normal(3.0, 0.0))
        assert sampler.sample(rng) == 3.0


class TestTruncatedMeanFormula:
    def test_no_truncation_limit(self):
        # Far from zero the truncated mean equals the plain mean.
        assert truncated_normal_mean(100.0, 1.0) == pytest.approx(100.0, abs=1e-9)

    def test_degenerate(self):
        assert truncated_normal_mean(5.0, 0.0) == 5.0
        assert truncated_normal_mean(-5.0, 0.0) == 0.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            truncated_normal_mean(0.0, -1.0)

    @given(mean=st.floats(-10, 10), std=st.floats(0.01, 10))
    @settings(max_examples=200)
    def test_truncated_mean_exceeds_mean(self, mean, std):
        # Conditioning on X > 0 can only pull the mean up.
        assert truncated_normal_mean(mean, std) >= mean - 1e-9
        assert truncated_normal_mean(mean, std) >= 0.0 or std == 0.0
