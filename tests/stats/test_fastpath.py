"""Differential tests for the compiled-kernel module (``repro[fast]``).

The pure path must be bit-identical to a per-element ``math.erf`` loop —
saturation cut included — and the numba path (when the extra is
installed) must be bit-identical to the pure path.  Without numba the
numba cases skip cleanly: the extra is never required.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.fastpath import ERF_SATURATION, HAVE_NUMBA, erf_array
from repro.stats.normal import normal_cdf, normal_cdf_vec


def erf_loop(z: np.ndarray) -> np.ndarray:
    """The reference: one ``math.erf`` call per element, nothing shared."""
    return np.array([math.erf(v) for v in np.asarray(z, dtype=np.float64).ravel()],
                    dtype=np.float64).reshape(np.shape(z))


def test_saturation_threshold_verified_on_this_platform():
    # The import-time spot checks accepted 6.0 only if this libm's erf
    # rounds to exactly 1.0 there; on any mainstream libm they do.
    assert ERF_SATURATION in (6.0, math.inf)
    if ERF_SATURATION == 6.0:
        assert math.erf(6.0) == 1.0 and math.erf(-6.0) == -1.0


@pytest.mark.parametrize("values", [
    [0.0, -0.0, 0.5, -0.5, 1.0, -1.0],
    [5.999, 6.0, 6.001, -5.999, -6.0, -6.001],      # straddling the cut
    [7.0, 100.0, 1e300, -7.0, -100.0, -1e300],      # fully saturated
    [math.inf, -math.inf],
    [1e-320, -1e-320],                              # subnormals
])
def test_erf_array_bitwise_equals_loop(values):
    z = np.array(values, dtype=np.float64)
    got = erf_array(z)
    want = erf_loop(z)
    assert got.dtype == np.float64
    np.testing.assert_array_equal(got, want)


def test_erf_array_nan_passthrough():
    z = np.array([math.nan, 1.0, -math.nan, 8.0])
    got = erf_array(z)
    assert math.isnan(got[0]) and math.isnan(got[2])
    assert got[1] == math.erf(1.0) and got[3] == math.erf(8.0)


def test_erf_array_empty():
    assert erf_array(np.empty(0)).shape == (0,)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(allow_nan=False, width=64), min_size=1, max_size=50))
def test_erf_array_matches_loop_hypothesis(values):
    z = np.array(values, dtype=np.float64)
    np.testing.assert_array_equal(erf_array(z), erf_loop(z))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20),
    st.floats(-1e3, 1e3),
    st.floats(0.0, 1e3),
)
def test_normal_cdf_vec_matches_scalar(xs, mean, std):
    x = np.array(xs)
    vec = normal_cdf_vec(x, np.full_like(x, mean), np.full_like(x, std))
    for i, v in enumerate(xs):
        assert vec[i] == normal_cdf(v, mean, std)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed ([fast] extra)")
def test_numba_kernel_bitwise_equals_pure():
    rng = np.random.default_rng(7)
    z = np.concatenate([
        rng.normal(0.0, 3.0, 4096),
        rng.uniform(5.9, 6.1, 512),
        np.array([0.0, -0.0, math.inf, -math.inf]),
    ])
    np.testing.assert_array_equal(
        fastpath._erf_dense_numba(z), fastpath._erf_dense_pure(z)
    )


def test_active_backend_matches_availability():
    if HAVE_NUMBA:
        assert fastpath._erf_dense is fastpath._erf_dense_numba
    else:
        assert fastpath._erf_dense is fastpath._erf_dense_pure
