"""Normal distribution: CDF correctness, path algebra, properties."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats.normal import Normal, normal_cdf, normal_cdf_vec, normal_sf


class TestNormalCdf:
    def test_standard_values(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.0) == pytest.approx(0.8413447, abs=1e-6)
        assert normal_cdf(-1.96) == pytest.approx(0.0249979, abs=1e-6)

    def test_matches_scipy(self):
        for x in (-3.2, -0.5, 0.0, 0.7, 2.5):
            for mean, std in ((0.0, 1.0), (5.0, 2.0), (-1.0, 0.3)):
                assert normal_cdf(x, mean, std) == pytest.approx(
                    sps.norm.cdf(x, mean, std), abs=1e-12
                )

    def test_degenerate_std_is_step(self):
        assert normal_cdf(1.0, mean=2.0, std=0.0) == 0.0
        assert normal_cdf(2.0, mean=2.0, std=0.0) == 1.0
        assert normal_cdf(3.0, mean=2.0, std=0.0) == 1.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            normal_cdf(0.0, 0.0, -1.0)

    def test_sf_complements_cdf(self):
        assert normal_sf(1.3, 0.5, 2.0) == pytest.approx(1.0 - normal_cdf(1.3, 0.5, 2.0))

    @given(
        x=st.floats(-50, 50),
        mean=st.floats(-20, 20),
        std=st.floats(0.01, 30),
    )
    @settings(max_examples=200)
    def test_cdf_in_unit_interval(self, x, mean, std):
        p = normal_cdf(x, mean, std)
        assert 0.0 <= p <= 1.0

    @given(
        mean=st.floats(-20, 20),
        std=st.floats(0.01, 30),
        x1=st.floats(-50, 50),
        x2=st.floats(-50, 50),
    )
    @settings(max_examples=200)
    def test_cdf_monotone(self, mean, std, x1, x2):
        lo, hi = min(x1, x2), max(x1, x2)
        assert normal_cdf(lo, mean, std) <= normal_cdf(hi, mean, std) + 1e-15

    @given(z=st.floats(0, 10), mean=st.floats(-5, 5), std=st.floats(0.01, 10))
    @settings(max_examples=100)
    def test_cdf_symmetry(self, z, mean, std):
        # P(X <= mean - z*std) == P(X > mean + z*std)
        left = normal_cdf(mean - z * std, mean, std)
        right = 1.0 - normal_cdf(mean + z * std, mean, std)
        assert left == pytest.approx(right, abs=1e-12)


class TestNormalCdfVec:
    def test_matches_scalar(self, rng):
        x = rng.uniform(-10, 10, size=50)
        mean = rng.uniform(-5, 5, size=50)
        std = rng.uniform(0.1, 5, size=50)
        vec = normal_cdf_vec(x, mean, std)
        for i in range(50):
            assert vec[i] == pytest.approx(normal_cdf(x[i], mean[i], std[i]), abs=1e-12)

    def test_degenerate_entries(self):
        out = normal_cdf_vec(
            np.array([1.0, 2.0, 3.0]),
            np.array([2.0, 2.0, 2.0]),
            np.array([0.0, 0.0, 0.0]),
        )
        assert out.tolist() == [0.0, 1.0, 1.0]

    def test_broadcasting(self):
        out = normal_cdf_vec(np.array([0.0, 1.0]), np.array(0.0), np.array(1.0))
        assert out.shape == (2,)
        assert out[0] == pytest.approx(0.5)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            normal_cdf_vec(np.array([0.0]), np.array([0.0]), np.array([-1.0]))


class TestNormalAlgebra:
    def test_sum_of_independents(self):
        a, b = Normal(3.0, 4.0), Normal(5.0, 9.0)
        c = a + b
        assert c.mean == 8.0
        assert c.variance == 13.0

    def test_add_scalar_shift(self):
        shifted = Normal(3.0, 4.0) + 2.0
        assert shifted.mean == 5.0
        assert shifted.variance == 4.0

    def test_radd(self):
        shifted = 2.0 + Normal(3.0, 4.0)
        assert shifted.mean == 5.0

    def test_scale(self):
        scaled = Normal(3.0, 4.0).scale(10.0)
        assert scaled.mean == 30.0
        assert scaled.variance == 400.0
        assert scaled.std == pytest.approx(20.0)

    def test_sum_static(self):
        parts = [Normal(1.0, 1.0), Normal(2.0, 2.0), Normal(3.0, 3.0)]
        total = Normal.sum(parts)
        assert total.mean == 6.0
        assert total.variance == 6.0

    def test_empty_sum_is_degenerate_zero(self):
        z = Normal.sum([])
        assert z.mean == 0.0 and z.variance == 0.0
        assert z.cdf(0.0) == 1.0

    def test_invalid_variance(self):
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Normal(math.nan, 1.0)

    @given(
        m1=st.floats(-100, 100), v1=st.floats(0, 100),
        m2=st.floats(-100, 100), v2=st.floats(0, 100),
        k=st.floats(-10, 10),
    )
    @settings(max_examples=200)
    def test_algebra_properties(self, m1, v1, m2, v2, k):
        a, b = Normal(m1, v1), Normal(m2, v2)
        s = a + b
        assert s.mean == pytest.approx(m1 + m2)
        assert s.variance == pytest.approx(v1 + v2)
        sc = a.scale(k)
        assert sc.variance == pytest.approx(k * k * v1, rel=1e-9, abs=1e-12)


class TestQuantile:
    def test_median(self):
        assert Normal(5.0, 4.0).quantile(0.5) == pytest.approx(5.0, abs=1e-6)

    def test_matches_scipy(self):
        d = Normal(10.0, 9.0)
        for q in (0.05, 0.25, 0.75, 0.99):
            assert d.quantile(q) == pytest.approx(sps.norm.ppf(q, 10.0, 3.0), abs=1e-6)

    def test_degenerate(self):
        assert Normal(5.0, 0.0).quantile(0.3) == 5.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            Normal(0.0, 1.0).quantile(1.0)

    def test_roundtrip_with_cdf(self):
        d = Normal(-2.0, 2.5)
        for q in (0.1, 0.5, 0.9):
            assert d.cdf(d.quantile(q)) == pytest.approx(q, abs=1e-9)


class TestSampling:
    def test_sample_moments(self, rng):
        d = Normal(7.0, 4.0)
        xs = d.sample(rng, size=200_000)
        assert xs.mean() == pytest.approx(7.0, abs=0.05)
        assert xs.std() == pytest.approx(2.0, abs=0.05)
