"""Shifted-gamma delay model tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats.gamma import ShiftedGamma


class TestMoments:
    def test_mean_variance(self):
        d = ShiftedGamma(shape=4.0, scale=2.0, shift=10.0)
        assert d.mean == 18.0
        assert d.variance == 16.0
        assert d.std == 4.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShiftedGamma(shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            ShiftedGamma(shape=1.0, scale=-1.0)


class TestDistribution:
    def test_cdf_matches_scipy(self):
        d = ShiftedGamma(shape=3.0, scale=1.5, shift=2.0)
        ref = sps.gamma(a=3.0, scale=1.5, loc=2.0)
        for x in (2.1, 3.0, 5.0, 10.0, 30.0):
            assert d.cdf(x) == pytest.approx(ref.cdf(x), abs=1e-10)

    def test_pdf_matches_scipy(self):
        d = ShiftedGamma(shape=3.0, scale=1.5, shift=2.0)
        ref = sps.gamma(a=3.0, scale=1.5, loc=2.0)
        for x in (2.5, 4.0, 8.0):
            assert d.pdf(x) == pytest.approx(ref.pdf(x), rel=1e-9)

    def test_below_shift_is_zero(self):
        d = ShiftedGamma(shape=2.0, scale=1.0, shift=5.0)
        assert d.cdf(4.9) == 0.0
        assert d.pdf(4.9) == 0.0

    def test_sf(self):
        d = ShiftedGamma(shape=2.0, scale=1.0)
        assert d.sf(1.0) == pytest.approx(1.0 - d.cdf(1.0))

    @given(
        shape=st.floats(0.2, 20),
        scale=st.floats(0.1, 10),
        shift=st.floats(0, 100),
    )
    @settings(max_examples=100)
    def test_cdf_monotone_property(self, shape, scale, shift):
        d = ShiftedGamma(shape=shape, scale=scale, shift=shift)
        xs = [shift - 1, shift + 0.1, shift + scale, shift + 5 * scale, shift + 50 * scale]
        cdfs = [d.cdf(x) for x in xs]
        # scipy's gammainc wiggles by ~1 ulp at its internal series /
        # continued-fraction joins (e.g. shape 0.25 around y/scale = 1), so
        # monotonicity only holds up to that float-level noise.
        for lo, hi in zip(cdfs, cdfs[1:]):
            assert hi >= lo - 1e-12
        assert all(0.0 <= c <= 1.0 for c in cdfs)


class TestFitting:
    def test_from_moments_roundtrip(self):
        d = ShiftedGamma.from_moments(mean=108.2, std=3.083, shift=90.0)
        assert d.mean == pytest.approx(108.2)
        assert d.std == pytest.approx(3.083)
        assert d.shift == 90.0

    def test_from_moments_rejects_mean_below_shift(self):
        with pytest.raises(ValueError):
            ShiftedGamma.from_moments(mean=5.0, std=1.0, shift=10.0)

    def test_from_moments_rejects_bad_std(self):
        with pytest.raises(ValueError):
            ShiftedGamma.from_moments(mean=10.0, std=0.0)

    def test_transatlantic_reference(self):
        d = ShiftedGamma.transatlantic_path()
        assert d.mean == pytest.approx(108.2)
        assert d.std == pytest.approx(3.083)


class TestSampling:
    def test_sample_moments(self, rng):
        d = ShiftedGamma(shape=5.0, scale=2.0, shift=3.0)
        xs = d.sample(rng, size=100_000)
        assert xs.mean() == pytest.approx(d.mean, rel=0.02)
        assert xs.std() == pytest.approx(d.std, rel=0.05)
        assert xs.min() >= 3.0
