#!/usr/bin/env python
"""Quickstart: run one bounded-delay pub/sub simulation and read the results.

Builds the paper's 32-broker / 4-publisher / 160-subscriber overlay, runs a
10-simulated-minute PSD workload under the EB strategy, and prints the
headline metrics next to a FIFO baseline on the *identical* workload.

Run:  python examples/quickstart.py
"""

from repro import Scenario, SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        seed=42,
        scenario=Scenario.PSD,  # publishers attach a 10-30 s allowed delay
        strategy="eb",  # maximum Expected Benefit first
        publishing_rate_per_min=10.0,  # per publisher
        duration_ms=10 * 60_000.0,  # 10 simulated minutes
    )

    eb = run_simulation(config)
    fifo = run_simulation(config.replace(strategy="fifo"))

    print("Bounded-delay pub/sub — EB vs FIFO on the same workload")
    print(f"  published messages : {eb.published}")
    print(f"  interested pairs   : {eb.total_interested}")
    print()
    header = f"  {'':18s}{'EB':>10s}{'FIFO':>10s}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    print(f"  {'delivery rate':18s}{eb.delivery_rate:>10.3f}{fifo.delivery_rate:>10.3f}")
    print(f"  {'valid deliveries':18s}{eb.deliveries_valid:>10d}{fifo.deliveries_valid:>10d}")
    print(f"  {'message number':18s}{eb.message_number:>10d}{fifo.message_number:>10d}")
    print(f"  {'pruned in transit':18s}{eb.pruned:>10d}{fifo.pruned:>10d}")
    print(f"  {'mean latency (ms)':18s}{eb.mean_latency_ms:>10.0f}{fifo.mean_latency_ms:>10.0f}")
    print()
    gain = eb.delivery_rate / fifo.delivery_rate if fifo.delivery_rate else float("inf")
    extra = eb.message_number / fifo.message_number - 1.0
    print(f"EB delivers {gain:.2f}x the valid messages for {extra:+.0%} network traffic.")


if __name__ == "__main__":
    main()
