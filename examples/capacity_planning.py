#!/usr/bin/env python
"""Capacity planning: where does the overlay saturate, and who suffers?

Uses the analysis subsystem to answer the operator questions behind
Figures 5/6: the analytic saturation knee (the publishing rate where the
busiest link runs out of wall clock), the measured per-link utilisation,
latency percentiles per strategy, and how far publish-time feasibility
predictions erode under queueing.

Run:  python examples/capacity_planning.py
"""

from repro import Scenario, SimulationConfig
from repro.analysis.capacity import bottleneck, saturation_rate_per_publisher, utilisation_report
from repro.analysis.feasibility import calibrate
from repro.analysis.latency import latency_stats
from repro.sim.runner import build_system, schedule_workload

BASE = SimulationConfig(
    seed=17,
    scenario=Scenario.PSD,
    publishing_rate_per_min=12.0,
    duration_ms=8 * 60_000.0,
)


def run(strategy: str):
    config = BASE.replace(strategy=strategy)
    system = build_system(config)
    published = []
    # Wrap publish to keep the Message objects for calibration.
    original = system.publish

    def tracked(*args, **kwargs):
        message = original(*args, **kwargs)
        published.append(message)
        return message

    system.publish = tracked  # type: ignore[method-assign]
    schedule_workload(system, config)
    system.sim.run(until=config.horizon_ms)
    return system, published


def main() -> None:
    system, messages = run("eb")

    knee = saturation_rate_per_publisher(system)
    print("Capacity planning on the paper's 32-broker overlay (EB, PSD)")
    print()
    print(f"analytic saturation knee : ~{knee:.1f} msgs/min/publisher")
    print(f"offered load this run    : {BASE.publishing_rate_per_min:g} msgs/min/publisher"
          f" ({'past' if BASE.publishing_rate_per_min > knee else 'below'} the knee)")
    print()

    top = bottleneck(system, BASE.horizon_ms)
    print(f"bottleneck link          : {top.src}->{top.dst} at {top.utilisation:.0%} busy "
          f"({top.transmissions} sends, {top.kilobytes:.0f} KB)")
    hot = [r for r in utilisation_report(system, BASE.horizon_ms) if r.utilisation > 0.8]
    print(f"links above 80% busy     : {len(hot)}")
    print()

    report = calibrate(system, messages)
    print(f"feasibility calibration  : predicted {report.predicted_mean:.2f} per pair, "
          f"achieved {report.achieved_rate:.2f} "
          f"(queueing erosion {report.queueing_erosion:.0%})")
    print()

    print(f"{'strategy':8s}{'p50 ms':>10s}{'p90 ms':>10s}{'p99 ms':>10s}{'delivered':>11s}")
    print("-" * 49)
    for strategy in ("eb", "fifo"):
        system_s, _ = run(strategy)
        stats = latency_stats(list(system_s.subscribers.values()))
        print(f"{strategy:8s}{stats.p50:>10.0f}{stats.p90:>10.0f}{stats.p99:>10.0f}"
              f"{stats.count:>11d}")
    print()
    print("EB's percentiles run closer to the deadline than FIFO's — it")
    print("spends slack on rescuing marginal messages instead of banking it.")


if __name__ == "__main__":
    main()
