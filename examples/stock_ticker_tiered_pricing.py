#!/usr/bin/env python
"""Stock-ticker feed with tiered pricing (the paper's SSD scenario).

A market-data provider sells the same tick stream at three service tiers:
premium subscribers pay 3 per delivered tick but demand it within 10 s,
standard pay 2 within 30 s, economy pay 1 within 60 s.  The provider's
revenue is exactly the paper's "total earning" objective — this example
shows how the EB scheduler prices bandwidth implicitly, serving premium
subscribers first when the overlay congests.

Run:  python examples/stock_ticker_tiered_pricing.py
"""

from repro import Scenario, SimulationConfig, run_simulation
from repro.sim.runner import build_system, schedule_workload

TIERS = {"premium (10s/3)": 10_000.0, "standard (30s/2)": 30_000.0, "economy (60s/1)": 1.0}


def revenue_by_tier(strategy: str, rate: float, seed: int = 5) -> tuple[float, dict[str, float]]:
    """Run one SSD point and split earnings by price tier."""
    config = SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate,
        duration_ms=8 * 60_000.0,
    )
    system = build_system(config)
    schedule_workload(system, config)
    system.sim.run(until=config.horizon_ms)

    tier_revenue = {3.0: 0.0, 2.0: 0.0, 1.0: 0.0}
    for handle in system.subscribers.values():
        row = None
        # Tier = the subscription's price; find it via the edge broker table.
        edge = system.topology.subscriber_brokers[handle.name]
        row = system.brokers[edge].table.row(handle.name)
        tier_revenue[row.price] += row.price * handle.valid_count
    return system.metrics.earning, tier_revenue


def main() -> None:
    rate = 12.0  # msgs/min/publisher: enough to congest the overlay
    print(f"Stock ticker, tiered pricing (SSD) at publishing rate {rate:g}")
    print()
    print(f"  {'strategy':8s}{'total':>10s}{'premium':>10s}{'standard':>10s}{'economy':>10s}")
    print("  " + "-" * 48)
    results = {}
    for strategy in ("eb", "pc", "fifo", "rl"):
        total, tiers = revenue_by_tier(strategy, rate)
        results[strategy] = total
        print(
            f"  {strategy:8s}{total:>10.0f}{tiers[3.0]:>10.0f}"
            f"{tiers[2.0]:>10.0f}{tiers[1.0]:>10.0f}"
        )
    print()
    if results["fifo"]:
        print(f"EB earns {results['eb'] / results['fifo']:.1f}x FIFO's revenue", end="")
    if results["rl"]:
        print(f" and {results['eb'] / results['rl']:.1f}x RL's.")
    print(
        "\nNote how EB's revenue skews toward the premium tier: expected\n"
        "benefit weighs each message by price x success probability, so\n"
        "contended bandwidth goes to the subscribers who pay the most\n"
        "among those still reachable in time."
    )


if __name__ == "__main__":
    main()
