#!/usr/bin/env python
"""Hybrid deadlines: publishers AND subscribers both bound the delay.

The paper notes its model "can easily be extended to the case where both
publishers and subscribers specify their delay requirements"; this library
implements that extension (the effective bound for a (message, subscription)
pair is the minimum of the two).  This example demonstrates it end to end
and checks the dominance relation: hybrid can never deliver more valid
messages than either single-sided scenario on the same workload.

Run:  python examples/hybrid_deadlines.py
"""

from repro import Scenario, SimulationConfig, run_simulation

BASE = SimulationConfig(
    seed=23,
    strategy="eb",
    publishing_rate_per_min=10.0,
    duration_ms=8 * 60_000.0,
)


def main() -> None:
    results = {
        scenario.value: run_simulation(BASE.replace(scenario=scenario))
        for scenario in (Scenario.PSD, Scenario.SSD, Scenario.HYBRID)
    }

    print("One workload, three deadline regimes (EB strategy)")
    print()
    print(f"  {'scenario':8s}{'deliveries':>12s}{'earning':>10s}{'pruned':>8s}")
    print("  " + "-" * 38)
    for name, r in results.items():
        print(f"  {name:8s}{r.deliveries_valid:>12d}{r.earning:>10.0f}{r.pruned:>8d}")

    hybrid, psd, ssd = results["hybrid"], results["psd"], results["ssd"]
    assert hybrid.deliveries_valid <= min(psd.deliveries_valid, ssd.deliveries_valid), (
        "hybrid bounds are the pairwise minimum, so hybrid deliveries can "
        "never exceed either single-sided scenario"
    )
    print(
        "\nHybrid applies min(publisher bound, subscriber bound) per pair —\n"
        f"its {hybrid.deliveries_valid} valid deliveries are <= PSD's "
        f"{psd.deliveries_valid} and <= SSD's {ssd.deliveries_valid}, as expected.\n"
        "Brokers prune copies that are hopeless under the *combined* bound,\n"
        f"hence the higher prune count ({hybrid.pruned} vs {psd.pruned}/{ssd.pruned})."
    )


if __name__ == "__main__":
    main()
