#!/usr/bin/env python
"""Link-parameter estimation: scheduling on measured, not oracle, bandwidth.

The paper assumes each broker estimates its links' N(mu, sigma^2)
transmission-rate parameters "by some tools of network measurement".  This
example runs the same congested workload twice — once with oracle
parameters, once with online Welford estimators that learn from every
completed transmission — and reports how much delivery quality the
estimation error costs, along with the per-link estimation accuracy.

Run:  python examples/adaptive_link_estimation.py
"""

from repro import Scenario, SimulationConfig
from repro.network.measurement import MeasurementMode
from repro.sim.runner import build_system, schedule_workload

BASE = SimulationConfig(
    seed=11,
    scenario=Scenario.PSD,
    strategy="eb",
    publishing_rate_per_min=12.0,
    duration_ms=8 * 60_000.0,
)


def run(mode: MeasurementMode):
    config = BASE.replace(measurement_mode=mode)
    system = build_system(config)
    schedule_workload(system, config)
    system.sim.run(until=config.horizon_ms)
    return system


def main() -> None:
    oracle = run(MeasurementMode.ORACLE)
    estimated = run(MeasurementMode.ESTIMATED)

    print("EB scheduling with oracle vs estimated link parameters (PSD)")
    print()
    print(f"  {'':22s}{'oracle':>10s}{'estimated':>10s}")
    print("  " + "-" * 42)
    for label, attr in [
        ("delivery rate", "delivery_rate"),
        ("valid deliveries", "deliveries_valid"),
        ("pruned in transit", "pruned"),
    ]:
        ov = getattr(oracle.metrics, attr)
        ev = getattr(estimated.metrics, attr)
        fmt = "10.3f" if isinstance(ov, float) else "10d"
        print(f"  {label:22s}{ov:>{fmt}}{ev:>{fmt}}")

    # How well did the estimators converge?
    errors = []
    for (src, dst), monitor in sorted(estimated.monitors.items()):
        if monitor.samples >= 2:
            errors.append((monitor.estimation_error(), monitor.samples, f"{src}->{dst}"))
    errors.sort(reverse=True)
    print()
    print(f"  links with >=2 samples : {len(errors)} / {len(estimated.monitors)}")
    if errors:
        mean_err = sum(e for e, _, _ in errors) / len(errors)
        print(f"  mean |mu error|        : {mean_err:.1f} ms/KB (true mu in [50, 100])")
        worst = errors[0]
        print(f"  worst link             : {worst[2]} off by {worst[0]:.1f} ms/KB after {worst[1]} samples")
    print(
        "\nBusy links converge quickly (every transmission is a sample), so\n"
        "the strategies lose little to estimation; idle links keep the\n"
        "conservative prior, which only matters if traffic suddenly shifts."
    )


if __name__ == "__main__":
    main()
