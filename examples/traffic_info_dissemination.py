#!/usr/bin/env python
"""Traffic-information dissemination (the paper's motivating PSD workload).

A city traffic authority publishes incident reports; each report carries a
publisher-chosen validity window (urgent incidents expire fast).  Subscribers
register interest in regions of an (x, y) road grid via content filters.
This example builds a *custom* overlay and workload on the public API —
no canned experiment harness — and compares all five strategies.

Run:  python examples/traffic_info_dissemination.py
"""

from repro import (
    PubSubSystem,
    RngStreams,
    Simulator,
    Subscription,
    SystemConfig,
    Topology,
    make_strategy,
    parse_filter,
)
from repro.stats.normal import Normal


def build_city_overlay() -> Topology:
    """A small metro overlay: one ingest broker, two district brokers,
    four neighbourhood brokers serving subscribers."""
    topo = Topology()
    for name in ("ingest", "north", "south", "n1", "n2", "s1", "s2"):
        topo.add_broker(name)
    links = [
        ("ingest", "north", 60.0), ("ingest", "south", 80.0),
        ("north", "n1", 55.0), ("north", "n2", 70.0),
        ("south", "s1", 65.0), ("south", "s2", 90.0),
        # A cross-link so routing has a real choice for s2's traffic.
        ("north", "s2", 60.0),
    ]
    for a, b, mean in links:
        topo.add_link(a, b, Normal(mean, 20.0**2))
    topo.attach_publisher("authority", "ingest")
    for sub, broker in [
        ("commuter-n1", "n1"), ("logistics-n2", "n2"),
        ("taxi-s1", "s1"), ("bus-s2", "s2"),
    ]:
        topo.attach_subscriber(sub, broker)
    return topo


# Region-of-interest filters over the road grid (x, y in [0, 10)).
FILTERS = {
    "commuter-n1": "x<5 & y<5",
    "logistics-n2": "x>=5 & y<5",
    "taxi-s1": "y>=5",
    "bus-s2": "x<8 & y>=3",
}

#: (grid position, severity -> validity window in ms)
INCIDENTS = [
    ({"x": 2.0, "y": 3.0}, 8_000.0),  # urgent: blocked junction, north-west
    ({"x": 7.0, "y": 1.0}, 20_000.0),  # slow lane closure, north-east
    ({"x": 3.0, "y": 8.0}, 12_000.0),  # accident in the south
    ({"x": 6.0, "y": 6.0}, 30_000.0),  # long roadworks notice
]


def run_strategy(name: str) -> dict:
    topo = build_city_overlay()
    system = PubSubSystem(
        topology=topo,
        strategy=make_strategy(name) if name != "ebpc" else make_strategy("ebpc", r=0.6),
        sim=Simulator(),
        streams=RngStreams(7),
        config=SystemConfig(default_size_kb=50.0),
    )
    handles = {
        sub: system.subscribe(Subscription(sub, parse_filter(expr)))
        for sub, expr in FILTERS.items()
    }

    # Publish a burst: all incidents in quick succession, which congests the
    # ingest links and forces a scheduling decision.
    for i, (position, validity_ms) in enumerate(INCIDENTS * 8):
        system.sim.schedule_at(
            i * 150.0,
            lambda p=position, v=validity_ms: system.publish("authority", p, deadline_ms=v),
        )
    system.sim.run()

    return {
        "delivery_rate": system.metrics.delivery_rate,
        "valid": system.metrics.deliveries_valid,
        "late": system.metrics.deliveries_late,
        "pruned": system.metrics.pruned,
        "per_subscriber": {s: h.valid_count for s, h in handles.items()},
    }


def main() -> None:
    print("Traffic-information dissemination (PSD, bursty incident feed)")
    print()
    rows = [("strategy", "delivery", "valid", "late", "pruned")]
    for name in ("eb", "pc", "ebpc", "fifo", "rl"):
        result = run_strategy(name)
        rows.append(
            (name, f"{result['delivery_rate']:.3f}", str(result["valid"]),
             str(result["late"]), str(result["pruned"]))
        )
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    for i, row in enumerate(rows):
        print("  " + "  ".join(c.rjust(widths[j]) for j, c in enumerate(row)))
        if i == 0:
            print("  " + "  ".join("-" * w for w in widths))
    print()
    best = run_strategy("eb")
    print("EB per-subscriber valid deliveries:", best["per_subscriber"])


if __name__ == "__main__":
    main()
