"""Experiment-point configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.core.chunked import DEFAULT_CHUNK_ROWS
from repro.core.pruning import DEFAULT_EPSILON, PruningPolicy
from repro.network.measurement import ESTIMATOR_FACTORIES, MeasurementMode
from repro.network.topology import LayeredMeshSpec
from repro.workload.dynamics import ScenarioScript
from repro.workload.generator import ArrivalProcess
from repro.workload.scenarios import Scenario

#: The paper's test period: 2 hours, in milliseconds.
PAPER_DURATION_MS = 2 * 60 * 60 * 1000.0


@dataclass(frozen=True)
class SimulationConfig:
    """One simulation run, fully specified.

    Defaults are the ICPP'06 evaluation setup.  ``grace_ms`` extends the
    run beyond the publication window so messages published near the end
    can still reach their subscribers (the longest allowed delay is 60 s);
    events after ``duration_ms + grace_ms`` are abandoned.
    """

    seed: int = 0
    scenario: Scenario = Scenario.PSD
    strategy: str = "eb"
    strategy_params: dict[str, Any] = field(default_factory=dict)
    publishing_rate_per_min: float = 10.0
    duration_ms: float = PAPER_DURATION_MS
    grace_ms: float = 60_000.0
    message_size_kb: float = 50.0
    arrival: ArrivalProcess = ArrivalProcess.POISSON
    topology_spec: LayeredMeshSpec = field(default_factory=LayeredMeshSpec)
    processing_delay_ms: float = 2.0
    epsilon: float = DEFAULT_EPSILON
    measurement_mode: MeasurementMode = MeasurementMode.ORACLE
    pruning_override: PruningPolicy | None = None
    scheduling_slack_per_hop_ms: float = 0.0
    routing_paths: int = 1  # 1 = the paper's single-path; >1 = multi-path
    psd_deadline_range_ms: tuple[float, float] = (10_000.0, 30_000.0)
    enable_trace: bool = False
    queue_backend: str = "auto"  # "scan" forces the legacy full-rescan oracle
    queue_validate: bool = False  # cross-check every queue decision (slow)
    matcher_backend: str = "vector"  # "oracle" forces the dict counting matcher
    metrics_backend: str = "ledger"  # "scalar" forces the per-delivery oracle collector
    #: Scripted runtime interventions (rate bursts, link degradation,
    #: churn waves, flash crowds).  The default empty script reproduces
    #: the paper's frozen world byte-for-byte.
    dynamics: ScenarioScript = field(default_factory=ScenarioScript)
    #: Estimator behind ``MeasurementMode.ESTIMATED`` monitors: "welford"
    #: (full history, the stationary-link default), "window" or "ewma"
    #: (forgetting — they track runtime rate changes).
    link_estimator: str = "welford"
    #: Bounded-memory scale tier: spill sealed delivery-/publication-log
    #: chunks to a temp ``.npz`` ring instead of keeping the whole run's
    #: history in RAM.  Decision- and byte-neutral — analysis reductions
    #: stream the same chunks either way.
    log_spill: bool = False
    #: Rows per sealed log chunk (the spill granularity and the memory
    #: high-water mark of the log under spill).
    log_chunk_rows: int = DEFAULT_CHUNK_ROWS
    #: Event-pipeline driver: "fused" drains the heap in event-time
    #: windows with batched match lookahead; "event" is the per-event
    #: kernel kept as the differential oracle.  Byte-identical outputs.
    engine_backend: str = "fused"
    #: Fused engine's event-time window (ms).  Any positive value is
    #: decision-neutral — it only controls execution micro-batching.
    engine_window_ms: float = 50.0
    #: Broker-partitioned parallel lookahead (``--shards``): 0 = off,
    #: N >= 1 partitions the overlay into N shards whose workers compute
    #: the pure match phase per epoch (see
    #: :mod:`repro.pubsub.shard_engine`).  Byte-identical outputs —
    #: result-neutral like spill — and composes with sentinel and
    #: checkpoints.  Requires the fused engine.
    shards: int = 0
    #: "process" forks one worker per shard (POSIX); "inline" runs the
    #: identical protocol in-process (portable, deterministic).
    shard_backend: str = "process"
    #: Run the invariant sentinel (analysis/sentinel.py) at window
    #: boundaries during the run.  Decision-neutral: the sentinel only
    #: reads, so results are byte-identical with it on or off.  The
    #: ``REPRO_SENTINEL`` env var ("1" or "deep") forces it on.
    sentinel: bool = False
    #: Sentinel boundary cadence (simulated ms between check sweeps).
    sentinel_every_ms: float = 20_000.0
    #: Run the deep pair-conservation heap scan at every boundary instead
    #: of only at end of run (slow; differential tests and the fuzzer).
    sentinel_deep: bool = False
    #: Fault layer: retry backoff bounds and the per-entry age past which
    #: traffic queued for a hard-down link is dead-lettered.  Inert
    #: unless the dynamics script downs a link or broker.
    fault_retry_backoff_ms: float = 1_000.0
    fault_retry_max_backoff_ms: float = 8_000.0
    dead_letter_timeout_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.sentinel_every_ms <= 0.0:
            raise ValueError("sentinel_every_ms must be positive")
        if (
            self.fault_retry_backoff_ms <= 0.0
            or self.fault_retry_max_backoff_ms < self.fault_retry_backoff_ms
        ):
            raise ValueError("retry backoff must be positive and <= its cap")
        if self.dead_letter_timeout_ms <= 0.0:
            raise ValueError("dead_letter_timeout_ms must be positive")
        if self.engine_backend not in ("fused", "event"):
            raise ValueError(
                f"engine_backend must be 'fused' or 'event', got {self.engine_backend!r}"
            )
        if self.engine_window_ms <= 0.0:
            raise ValueError("engine_window_ms must be positive")
        from repro.sim.shard import SHARD_BACKENDS, ShardConfigError

        if self.shards < 0:
            raise ShardConfigError(f"shards must be non-negative, got {self.shards}")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ShardConfigError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if self.shards and self.engine_backend != "fused":
            raise ShardConfigError(
                "--shards requires the fused engine (engine_backend='fused')"
            )
        if self.log_chunk_rows < 1:
            raise ValueError("log_chunk_rows must be >= 1")
        if self.publishing_rate_per_min < 0.0:
            raise ValueError("publishing_rate_per_min must be non-negative")
        if self.duration_ms <= 0.0:
            raise ValueError("duration_ms must be positive")
        if self.grace_ms < 0.0:
            raise ValueError("grace_ms must be non-negative")
        if self.link_estimator not in ESTIMATOR_FACTORIES:
            raise ValueError(
                f"link_estimator must be one of {sorted(ESTIMATOR_FACTORIES)}, "
                f"got {self.link_estimator!r}"
            )

    def replace(self, **changes: Any) -> "SimulationConfig":
        """A copy with the given fields changed (configs are frozen)."""
        return dataclasses.replace(self, **changes)

    @property
    def horizon_ms(self) -> float:
        return self.duration_ms + self.grace_ms

    def strategy_label(self) -> str:
        if self.strategy == "ebpc":
            r = self.strategy_params.get("r", 0.5)
            return f"ebpc(r={r:g})"
        return self.strategy
