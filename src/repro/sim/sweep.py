"""Parameter sweeps: the shapes of the paper's figures.

A *sweep* runs a grid of (strategy, parameter) points over paired
workloads.  Results come back as ``{series_label: [value per x]}`` plus
the x axis — exactly what the figure harnesses print and what the benches
time.

Every sweep decomposes into independent ``(strategy, x, seed)``
simulation points; the grid is built first and then executed by a *point
runner* — a callable mapping a list of configs to the list of results in
the same order.  The default runs sequentially in-process;
:func:`repro.sim.parallel.make_point_runner` supplies a process-pool
runner with an on-disk point cache, and either produces identical
results because :func:`run_simulation` is deterministic per config.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.runner import run_simulation

#: Executes a batch of independent simulation points, preserving order.
#: Runners that tolerate worker loss (see :mod:`repro.sim.parallel`) may
#: substitute :class:`PointFailure` placeholders for unrecoverable points.
PointRunner = Callable[[Sequence[SimulationConfig]], list[SimulationResult]]


@dataclass(frozen=True)
class PointFailure:
    """Placeholder result for a point lost to repeated worker crashes.

    A sweep whose pool kept dying (OOM killer, a segfaulting extension)
    completes with these in place of the unrecoverable points instead of
    aborting — callers can count, report, and re-run just the holes.
    """

    config: SimulationConfig
    error: str
    attempts: int

    @property
    def reason(self) -> str:
        """Short human label for sweep summaries."""
        return f"{self.config.strategy_label()} seed={self.config.seed}: {self.error}"


def run_points_serial(configs: Sequence[SimulationConfig]) -> list[SimulationResult]:
    """The default point runner: one point after another, in-process."""
    return [run_simulation(config) for config in configs]


@dataclass
class SweepResult:
    """A family of series over one x axis.

    Series slots normally hold :class:`SimulationResult`; a fault-tolerant
    point runner may leave :class:`PointFailure` placeholders instead.
    :meth:`metric` maps those to ``NaN`` (plots show a gap, stats skip
    them) and :meth:`failures` enumerates them for summaries.
    """

    x_label: str
    x_values: list[float]
    series: dict[str, list[SimulationResult]] = field(default_factory=dict)

    def metric(self, label: str, extract: Callable[[SimulationResult], float]) -> list[float]:
        return [
            extract(r) if isinstance(r, SimulationResult) else math.nan
            for r in self.series[label]
        ]

    def table(self, extract: Callable[[SimulationResult], float]) -> dict[str, list[float]]:
        return {label: self.metric(label, extract) for label in self.series}

    def failures(self) -> list[tuple[str, float, PointFailure]]:
        """Every failed point as ``(series_label, x_value, failure)``."""
        out: list[tuple[str, float, PointFailure]] = []
        for label, runs in self.series.items():
            for x, r in zip(self.x_values, runs):
                if isinstance(r, PointFailure):
                    out.append((label, x, r))
        return out


def failure_notes(sweep: SweepResult) -> list[str]:
    """Human-readable summary of a sweep's failed points (empty if none).

    One leading count line plus one line per hole — figure harnesses
    append these to their notes so a sweep that survived worker crashes
    says so in its rendered table instead of silently plotting gaps.
    """
    failed = sweep.failures()
    if not failed:
        return []
    lines = [f"{len(failed)} point(s) failed after worker crashes (values are NaN)"]
    for label, x, failure in failed:
        lines.append(
            f"failed point: {label} @ {sweep.x_label}={x:g} "
            f"({failure.attempts} attempt(s)): {failure.error}"
        )
    return lines


def _strategy_points(strategies: Sequence[str | tuple[str, dict[str, Any]]]):
    for item in strategies:
        if isinstance(item, str):
            yield item, {}
        else:
            name, params = item
            yield name, dict(params)


def _label(name: str, params: dict[str, Any]) -> str:
    if name == "ebpc":
        return f"ebpc(r={params.get('r', 0.5):g})"
    return name


def _collapse(per_seed: list[SimulationResult]) -> SimulationResult:
    # Failed replicas (PointFailure placeholders from a crash-tolerant
    # runner) are dropped before averaging; a point with no surviving
    # replica stays a PointFailure so summaries can report the hole.
    alive = [r for r in per_seed if isinstance(r, SimulationResult)]
    if not alive:
        return per_seed[0]
    return alive[0] if len(alive) == 1 else _mean_result(alive)


def sweep_publishing_rate(
    base: SimulationConfig,
    rates: Sequence[float],
    strategies: Sequence[str | tuple[str, dict[str, Any]]],
    seeds: Sequence[int] | None = None,
    point_runner: PointRunner | None = None,
) -> SweepResult:
    """Figures 5/6: strategies × publishing rates.

    With multiple ``seeds``, each point is re-run per seed and the stored
    result is the per-seed mean (:func:`_mean_result` — rounded means for
    count-like fields, identification from the first replica).
    Single-seed (the paper's protocol) is the default and stores the run
    itself.  ``point_runner`` overrides how the independent points are
    executed (see :mod:`repro.sim.parallel`).
    """
    runner = point_runner or run_points_serial
    seeds = list(seeds) if seeds is not None else [base.seed]
    points = list(_strategy_points(strategies))
    configs = [
        base.replace(
            strategy=name, strategy_params=params,
            publishing_rate_per_min=rate, seed=seed,
        )
        for name, params in points
        for rate in rates
        for seed in seeds
    ]
    results = runner(configs)
    out = SweepResult(x_label="publishing rate (msgs/min/publisher)", x_values=list(rates))
    i = 0
    for name, params in points:
        runs: list[SimulationResult] = []
        for _rate in rates:
            runs.append(_collapse(results[i : i + len(seeds)]))
            i += len(seeds)
        out.series[_label(name, params)] = runs
    return out


def sweep_r_weight(
    base: SimulationConfig,
    r_values: Sequence[float],
    seeds: Sequence[int] | None = None,
    point_runner: PointRunner | None = None,
) -> SweepResult:
    """Figure 4: EBPC across the EB weight ``r``, plus EB and PC baselines.

    EB and PC do not depend on ``r``; they are run once and replicated
    across the x axis as flat reference lines (as in the paper's plot).
    """
    runner = point_runner or run_points_serial
    seeds = list(seeds) if seeds is not None else [base.seed]
    points: list[tuple[str, dict[str, Any]]] = [("ebpc", {"r": r}) for r in r_values]
    points += [("eb", {}), ("pc", {})]
    configs = [
        base.replace(strategy=name, strategy_params=params, seed=seed)
        for name, params in points
        for seed in seeds
    ]
    results = runner(configs)
    collapsed = [
        _collapse(results[i : i + len(seeds)])
        for i in range(0, len(results), len(seeds))
    ]
    out = SweepResult(x_label="weight of EB, r", x_values=list(r_values))
    out.series["ebpc"] = collapsed[: len(r_values)]
    out.series["eb"] = [collapsed[len(r_values)]] * len(r_values)
    out.series["pc"] = [collapsed[len(r_values) + 1]] * len(r_values)
    return out


def _mean_result(results: list[SimulationResult]) -> SimulationResult:
    """Collapse replicas into one result carrying mean headline metrics.

    Count-like fields are rounded means; identification fields come from
    the first replica.
    """
    agg = aggregate_results(results)
    first = results[0]
    return SimulationResult(
        strategy=first.strategy,
        scenario=first.scenario,
        seed=first.seed,
        publishing_rate_per_min=first.publishing_rate_per_min,
        published=round(sum(r.published for r in results) / len(results)),
        message_number=round(agg["message_number"]),
        transmissions=round(sum(r.transmissions for r in results) / len(results)),
        deliveries_valid=round(agg["deliveries_valid"]),
        deliveries_late=round(sum(r.deliveries_late for r in results) / len(results)),
        pruned=round(agg["pruned"]),
        total_interested=round(sum(r.total_interested for r in results) / len(results)),
        delivery_rate=agg["delivery_rate"],
        earning=agg["earning"],
        mean_latency_ms=sum(r.mean_latency_ms for r in results) / len(results),
        residual_queued=round(sum(r.residual_queued for r in results) / len(results)),
        executed_events=sum(r.executed_events for r in results),
    )
