"""Parameter sweeps: the shapes of the paper's figures.

A *sweep* runs a grid of (strategy, parameter) points over paired
workloads.  Results come back as ``{series_label: [value per x]}`` plus
the x axis — exactly what the figure harnesses print and what the benches
time.

Every sweep decomposes into independent ``(strategy, x, seed)``
simulation points; the grid is built first and then executed by a *point
runner* — a callable mapping a list of configs to the list of results in
the same order.  The default runs sequentially in-process;
:func:`repro.sim.parallel.make_point_runner` supplies a process-pool
runner with an on-disk point cache, and either produces identical
results because :func:`run_simulation` is deterministic per config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.runner import run_simulation

#: Executes a batch of independent simulation points, preserving order.
PointRunner = Callable[[Sequence[SimulationConfig]], list[SimulationResult]]


def run_points_serial(configs: Sequence[SimulationConfig]) -> list[SimulationResult]:
    """The default point runner: one point after another, in-process."""
    return [run_simulation(config) for config in configs]


@dataclass
class SweepResult:
    """A family of series over one x axis."""

    x_label: str
    x_values: list[float]
    series: dict[str, list[SimulationResult]] = field(default_factory=dict)

    def metric(self, label: str, extract: Callable[[SimulationResult], float]) -> list[float]:
        return [extract(r) for r in self.series[label]]

    def table(self, extract: Callable[[SimulationResult], float]) -> dict[str, list[float]]:
        return {label: self.metric(label, extract) for label in self.series}


def _strategy_points(strategies: Sequence[str | tuple[str, dict[str, Any]]]):
    for item in strategies:
        if isinstance(item, str):
            yield item, {}
        else:
            name, params = item
            yield name, dict(params)


def _label(name: str, params: dict[str, Any]) -> str:
    if name == "ebpc":
        return f"ebpc(r={params.get('r', 0.5):g})"
    return name


def _collapse(per_seed: list[SimulationResult]) -> SimulationResult:
    return per_seed[0] if len(per_seed) == 1 else _mean_result(per_seed)


def sweep_publishing_rate(
    base: SimulationConfig,
    rates: Sequence[float],
    strategies: Sequence[str | tuple[str, dict[str, Any]]],
    seeds: Sequence[int] | None = None,
    point_runner: PointRunner | None = None,
) -> SweepResult:
    """Figures 5/6: strategies × publishing rates.

    With multiple ``seeds``, each point is re-run per seed and the stored
    result is the per-seed mean (:func:`_mean_result` — rounded means for
    count-like fields, identification from the first replica).
    Single-seed (the paper's protocol) is the default and stores the run
    itself.  ``point_runner`` overrides how the independent points are
    executed (see :mod:`repro.sim.parallel`).
    """
    runner = point_runner or run_points_serial
    seeds = list(seeds) if seeds is not None else [base.seed]
    points = list(_strategy_points(strategies))
    configs = [
        base.replace(
            strategy=name, strategy_params=params,
            publishing_rate_per_min=rate, seed=seed,
        )
        for name, params in points
        for rate in rates
        for seed in seeds
    ]
    results = runner(configs)
    out = SweepResult(x_label="publishing rate (msgs/min/publisher)", x_values=list(rates))
    i = 0
    for name, params in points:
        runs: list[SimulationResult] = []
        for _rate in rates:
            runs.append(_collapse(results[i : i + len(seeds)]))
            i += len(seeds)
        out.series[_label(name, params)] = runs
    return out


def sweep_r_weight(
    base: SimulationConfig,
    r_values: Sequence[float],
    seeds: Sequence[int] | None = None,
    point_runner: PointRunner | None = None,
) -> SweepResult:
    """Figure 4: EBPC across the EB weight ``r``, plus EB and PC baselines.

    EB and PC do not depend on ``r``; they are run once and replicated
    across the x axis as flat reference lines (as in the paper's plot).
    """
    runner = point_runner or run_points_serial
    seeds = list(seeds) if seeds is not None else [base.seed]
    points: list[tuple[str, dict[str, Any]]] = [("ebpc", {"r": r}) for r in r_values]
    points += [("eb", {}), ("pc", {})]
    configs = [
        base.replace(strategy=name, strategy_params=params, seed=seed)
        for name, params in points
        for seed in seeds
    ]
    results = runner(configs)
    collapsed = [
        _collapse(results[i : i + len(seeds)])
        for i in range(0, len(results), len(seeds))
    ]
    out = SweepResult(x_label="weight of EB, r", x_values=list(r_values))
    out.series["ebpc"] = collapsed[: len(r_values)]
    out.series["eb"] = [collapsed[len(r_values)]] * len(r_values)
    out.series["pc"] = [collapsed[len(r_values) + 1]] * len(r_values)
    return out


def _mean_result(results: list[SimulationResult]) -> SimulationResult:
    """Collapse replicas into one result carrying mean headline metrics.

    Count-like fields are rounded means; identification fields come from
    the first replica.
    """
    agg = aggregate_results(results)
    first = results[0]
    return SimulationResult(
        strategy=first.strategy,
        scenario=first.scenario,
        seed=first.seed,
        publishing_rate_per_min=first.publishing_rate_per_min,
        published=round(sum(r.published for r in results) / len(results)),
        message_number=round(agg["message_number"]),
        transmissions=round(sum(r.transmissions for r in results) / len(results)),
        deliveries_valid=round(agg["deliveries_valid"]),
        deliveries_late=round(sum(r.deliveries_late for r in results) / len(results)),
        pruned=round(agg["pruned"]),
        total_interested=round(sum(r.total_interested for r in results) / len(results)),
        delivery_rate=agg["delivery_rate"],
        earning=agg["earning"],
        mean_latency_ms=sum(r.mean_latency_ms for r in results) / len(results),
        residual_queued=round(sum(r.residual_queued for r in results) / len(results)),
        executed_events=sum(r.executed_events for r in results),
    )
