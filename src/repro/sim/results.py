"""Simulation outputs and aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Iterable

from repro.pubsub.metrics import LedgerMetricsCollector, MetricsCollector


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Snapshot of one finished run.

    ``message_number`` is the paper's network-traffic metric: the total
    number of messages received by all brokers over the run.
    """

    strategy: str
    scenario: str
    seed: int
    publishing_rate_per_min: float
    published: int
    message_number: int
    transmissions: int
    deliveries_valid: int
    deliveries_late: int
    pruned: int
    total_interested: int
    delivery_rate: float
    earning: float
    mean_latency_ms: float
    residual_queued: int
    executed_events: int

    @classmethod
    def from_metrics(
        cls,
        metrics: MetricsCollector | LedgerMetricsCollector,
        *,
        strategy: str,
        scenario: str,
        seed: int,
        publishing_rate_per_min: float,
        residual_queued: int,
        executed_events: int,
    ) -> "SimulationResult":
        metrics.check_invariants()
        return cls(
            strategy=strategy,
            scenario=scenario,
            seed=seed,
            publishing_rate_per_min=publishing_rate_per_min,
            published=metrics.published,
            message_number=metrics.receptions,
            transmissions=metrics.transmissions,
            deliveries_valid=metrics.deliveries_valid,
            deliveries_late=metrics.deliveries_late,
            pruned=metrics.pruned,
            total_interested=metrics.total_interested,
            delivery_rate=metrics.delivery_rate,
            earning=metrics.earning,
            mean_latency_ms=metrics.mean_latency_ms,
            residual_queued=residual_queued,
            executed_events=executed_events,
        )


def aggregate_results(results: Iterable[SimulationResult]) -> dict[str, float]:
    """Mean of the headline metrics over replicas (e.g. multiple seeds)."""
    results = list(results)
    if not results:
        raise ValueError("no results to aggregate")
    return {
        "delivery_rate": mean(r.delivery_rate for r in results),
        "earning": mean(r.earning for r in results),
        "message_number": mean(r.message_number for r in results),
        "deliveries_valid": mean(r.deliveries_valid for r in results),
        "pruned": mean(r.pruned for r in results),
        "replicas": float(len(results)),
    }
