"""Parallel sweep execution: independent points over a process pool.

Every sweep decomposes into independent ``(strategy, x, seed)`` points
(see :mod:`repro.sim.sweep`); each point is a pure function of its
:class:`~repro.sim.config.SimulationConfig`, so the grid parallelises
with no coordination beyond deterministic reassembly — results come back
in submission order regardless of which worker finished first, making
``--jobs N`` output byte-identical to a sequential run.

An optional on-disk **point cache** keyed by a config fingerprint lets
repeated sweeps (re-rendered figures, claim checks, benches at the same
scale) skip finished points entirely; cached results are exact because
:func:`~repro.sim.runner.run_simulation` is deterministic per config.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Sequence

from repro.sim.config import SimulationConfig
from repro.sim.io import result_from_dict, result_to_dict
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.sim.sweep import PointFailure, PointRunner, run_points_serial

__all__ = [
    "ParallelPointRunner",
    "PointCache",
    "PointFailure",  # historic home; canonical definition lives in sweep.py
    "config_fingerprint",
    "make_point_runner",
]

#: Bump when result semantics change so stale cache entries cannot leak
#: into new runs.
_CACHE_SCHEMA = 1


def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


#: Config fields that change *residency*, never results (the chunked-log
#: knobs are proven decision- and byte-neutral, and the sentinel only
#: reads): excluded from the fingerprint so equal-result configs share
#: cache entries — which also keeps fingerprints of pre-existing caches
#: valid.  The fault knobs (retry backoff, dead-letter timeout) stay in
#: the fingerprint: they change results whenever the script downs a link.
_RESULT_NEUTRAL_FIELDS = frozenset({
    "log_spill", "log_chunk_rows",
    "sentinel", "sentinel_every_ms", "sentinel_deep",
    # Sharding is placement of pure work, proven byte-identical; a run
    # may therefore be resumed under a different shard count/backend
    # (the restored system keeps its snapshot's engine settings).
    "shards", "shard_backend",
})


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable hash of everything that determines a point's result."""
    fields = {
        k: v for k, v in _jsonable(config).items()
        if k not in _RESULT_NEUTRAL_FIELDS
    }
    payload = {"schema": _CACHE_SCHEMA, "config": fields}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class PointCache:
    """One JSON file per finished simulation point, keyed by fingerprint."""

    #: Orphaned ``*.tmp`` files older than this are swept on open; younger
    #: ones may belong to a concurrent sweep's in-flight write (unlinking
    #: those would make its atomic replace fail), so age gates the sweep.
    _TMP_ORPHAN_AGE_S = 60.0

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"point cache path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove stale ``*.tmp`` files left by crashed writers."""
        # repro-lint: ignore[RL001] -- filesystem janitor age gate, never reaches sim state
        cutoff = time.time() - self._TMP_ORPHAN_AGE_S
        for tmp in self.root.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink(missing_ok=True)
            except OSError:
                pass  # already gone, or unreadable — never abort a sweep

    def _path(self, config: SimulationConfig) -> Path:
        return self.root / f"{config_fingerprint(config)}.json"

    def get(self, config: SimulationConfig) -> SimulationResult | None:
        path = self._path(config)
        if not path.exists():
            return None
        try:
            return result_from_dict(json.loads(path.read_text()))
        except (ValueError, TypeError, OSError):
            # A corrupt, truncated or unreadable entry (a killed run or a
            # full disk can leave either) is a cache MISS, never a sweep
            # abort: recompute the point, and delete the bad file so it
            # cannot poison later sweeps either.  JSONDecodeError and
            # UnicodeDecodeError are ValueErrors; TypeError covers
            # valid-JSON non-dict payloads; OSError covers unreadable
            # files.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def put(self, config: SimulationConfig, result: SimulationResult) -> None:
        # Writer-unique tmp name + fsync + atomic replace: a concurrent
        # reader (or a second sweep sharing the cache) never sees a torn
        # file, and a machine crash right after the replace cannot leave
        # the published name pointing at unflushed bytes.
        tmp = self._path(config).with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(result_to_dict(result), sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self._path(config))

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))


def _run_point(config: SimulationConfig) -> SimulationResult:
    # Module-level so it pickles for the process pool.
    return run_simulation(config)


#: Per-point retry budget: attempts = retries + 1.  Deterministic errors
#: (a bad config) just fail faster through the same path.
_POINT_RETRIES = 2
_POINT_BACKOFF_S = 0.05


def _run_point_retrying(
    config: SimulationConfig,
    retries: int = _POINT_RETRIES,
    backoff_s: float = _POINT_BACKOFF_S,
) -> SimulationResult:
    """Worker-side entry: bounded retry-with-backoff around one point.

    Transient failures (a flaky filesystem under a spilling run, memory
    pressure that clears) get ``retries`` more attempts; a persistent
    error re-raises and keeps the historic propagate-to-caller contract.
    Looks ``_run_point`` up dynamically so test monkeypatches apply.
    """
    attempt = 0
    while True:
        try:
            return _run_point(config)
        except Exception:
            attempt += 1
            if attempt > retries:
                raise
            time.sleep(backoff_s * (2 ** (attempt - 1)))


class ParallelPointRunner:
    """Run independent points over a :class:`ProcessPoolExecutor`.

    ``jobs=1`` (or a single pending point) degrades to the serial path;
    a pool that cannot start (restricted sandboxes) falls back to serial
    with a warning rather than failing the sweep.  A pool whose workers
    *die* mid-sweep (``BrokenProcessPool``) is respawned and the lost
    points resubmitted, up to ``max_respawns`` times; points still
    unfinished after the last respawn come back as :class:`PointFailure`
    entries rather than poisoning the whole sweep.  Results are always
    returned in submission order.
    """

    def __init__(
        self,
        jobs: int,
        cache: PointCache | None = None,
        retries: int = _POINT_RETRIES,
        backoff_s: float = _POINT_BACKOFF_S,
        max_respawns: int = 3,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.jobs = jobs
        self.cache = cache
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_respawns = max_respawns

    def __call__(self, configs: Sequence[SimulationConfig]) -> list[SimulationResult]:
        results: list[SimulationResult | None] = [None] * len(configs)
        pending: list[int] = []
        for i, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
        if pending:
            self._execute(configs, pending, results)
        return results  # type: ignore[return-value]

    def _store(self, i: int, config: SimulationConfig, result, results: list) -> None:
        results[i] = result
        # PointFailure placeholders must never enter the cache: the hole
        # should be recomputed, not replayed, on the next sweep.
        if self.cache is not None and isinstance(result, SimulationResult):
            self.cache.put(config, result)

    def _execute(
        self,
        configs: Sequence[SimulationConfig],
        pending: list[int],
        results: list,
    ) -> None:
        # Every finished point is cached the moment it completes — an
        # exception (or interrupt) partway through a long sweep keeps the
        # finished points' cache entries; only reassembly is deferred.
        if self.jobs == 1 or len(pending) == 1:
            for i in pending:
                self._store(
                    i, configs[i],
                    _run_point_retrying(configs[i], self.retries, self.backoff_s),
                    results,
                )
            return
        # Pool-creation OSError (restricted sandboxes) falls back to
        # serial.  BrokenProcessPool (a worker died: OOM kill, segfault)
        # respawns the pool and resubmits the lost points, boundedly.
        # An error raised by the point itself — after its worker-side
        # retries — or by a cache write (full disk) still propagates.
        remaining = list(pending)
        respawns = 0
        while remaining:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(remaining))
                )
            except OSError as exc:
                self._fallback_serial(configs, remaining, results, exc)
                return
            broken: BrokenProcessPool | None = None
            with pool:
                futures = {
                    pool.submit(
                        _run_point_retrying, configs[i], self.retries, self.backoff_s
                    ): i
                    for i in remaining
                }
                for future in as_completed(futures):
                    i = futures[future]
                    try:
                        self._store(i, configs[i], future.result(), results)
                    except BrokenProcessPool as exc:
                        # Consume every future (continue, not break):
                        # points that finished before the crash must
                        # still be stored and cached.
                        broken = exc
                        continue
            if broken is None:
                return
            remaining = [i for i in remaining if results[i] is None]
            respawns += 1
            if respawns > self.max_respawns:
                for i in remaining:
                    self._store(
                        i, configs[i],
                        PointFailure(
                            config=configs[i],
                            error=repr(broken),
                            attempts=respawns,
                        ),
                        results,
                    )
                warnings.warn(
                    f"process pool died {respawns} times; marking "
                    f"{len(remaining)} unrecoverable point(s) as failed",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return
            warnings.warn(
                f"process pool died ({broken}); respawning "
                f"({respawns}/{self.max_respawns}) to retry "
                f"{len(remaining)} lost point(s)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _fallback_serial(
        self,
        configs: Sequence[SimulationConfig],
        pending: list[int],
        results: list,
        exc: BaseException,
    ) -> None:
        warnings.warn(
            f"process pool unavailable ({exc}); running remaining points serially",
            RuntimeWarning,
            stacklevel=3,
        )
        for i in pending:
            if results[i] is None:
                self._store(
                    i, configs[i],
                    _run_point_retrying(configs[i], self.retries, self.backoff_s),
                    results,
                )


def make_point_runner(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> PointRunner:
    """Build the point runner for a sweep.

    ``jobs=None``/``1`` without a cache returns the plain serial runner;
    otherwise a :class:`ParallelPointRunner` (which itself degrades to
    serial execution when the pool is pointless or unavailable).
    """
    if (jobs is None or jobs <= 1) and cache_dir is None:
        return run_points_serial
    cache = PointCache(cache_dir) if cache_dir is not None else None
    return ParallelPointRunner(jobs=max(1, jobs or 1), cache=cache)
