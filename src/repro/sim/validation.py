"""Structural validation of an assembled system ("doctor").

Routing-state corruption (a row pointing at an unwired neighbour, a path
parameter that disagrees with the tree it came from, orphaned endpoints)
would silently distort every experiment.  ``validate_system`` checks the
invariants that must hold for *any* correctly assembled overlay and
returns human-readable findings; tests assert it is empty, and the CLI
exposes it as ``python -m repro doctor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True, slots=True)
class Finding:
    """One validation problem."""

    severity: str  # "error" | "warning"
    where: str
    what: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.where}: {self.what}"


def validate_system(system: PubSubSystem) -> list[Finding]:
    """All structural problems found (empty list = healthy)."""
    findings: list[Finding] = []
    findings.extend(_check_wiring(system))
    findings.extend(_check_rows(system))
    findings.extend(_check_endpoints(system))
    return findings


def _check_wiring(system: PubSubSystem) -> list[Finding]:
    out: list[Finding] = []
    topo = system.topology
    for name, broker in system.brokers.items():
        expected = set(topo.neighbors(name))
        wired = set(broker.queues)
        for missing in sorted(expected - wired):
            out.append(Finding("error", name, f"neighbor {missing!r} has no output queue"))
        for extra in sorted(wired - expected):
            out.append(Finding("error", name, f"output queue to non-neighbor {extra!r}"))
        for neighbor, queue in broker.queues.items():
            if queue.link.src != name or queue.link.dst != neighbor:
                out.append(
                    Finding("error", name, f"queue to {neighbor!r} holds link {queue.link.name}")
                )
    return out


def _check_rows(system: PubSubSystem) -> list[Finding]:
    out: list[Finding] = []
    for name, broker in system.brokers.items():
        for row in broker.table.rows():
            where = f"{name}/row[{row.subscriber},{row.path_id}]"
            if row.next_hop is not None:
                if row.next_hop not in broker.queues:
                    out.append(Finding("error", where, f"next hop {row.next_hop!r} unwired"))
                    continue
                # The next hop must hold a continuation row for the same
                # subscriber serving at least the same sources.
                next_table = system.brokers[row.next_hop].table
                if row.subscriber not in next_table:
                    out.append(
                        Finding("error", where, f"next hop {row.next_hop!r} has no row")
                    )
                if row.nn < 1:
                    out.append(Finding("error", where, "remote row with nn < 1"))
                if row.rate.mean <= 0.0:
                    out.append(Finding("error", where, "remote row with non-positive rate"))
            else:
                edge = system.topology.subscriber_brokers.get(row.subscriber)
                if edge != name:
                    out.append(
                        Finding("error", where, f"local row but subscriber attached to {edge!r}")
                    )
                if row.nn != 0:
                    out.append(Finding("error", where, "local row with nn != 0"))
            if not row.sources:
                out.append(Finding("warning", where, "row with empty source set"))
    return out


def _check_endpoints(system: PubSubSystem) -> list[Finding]:
    out: list[Finding] = []
    topo = system.topology
    for publisher, broker in topo.publisher_brokers.items():
        if publisher not in system.publishers:
            out.append(Finding("error", publisher, "attached publisher has no handle"))
        if broker not in system.brokers:
            out.append(Finding("error", publisher, f"attached to unknown broker {broker!r}"))
    for subscriber in system.subscribers:
        edge = topo.subscriber_brokers.get(subscriber)
        if edge is None:
            out.append(Finding("error", subscriber, "endpoint without topology attachment"))
            continue
        if subscriber not in system.brokers[edge].table:
            out.append(Finding("error", subscriber, f"no local row at edge broker {edge!r}"))
    return out
