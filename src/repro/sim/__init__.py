"""End-to-end simulation harness.

* :class:`~repro.sim.config.SimulationConfig` — one experiment point:
  seed, scenario, strategy, publishing rate, duration, topology and model
  parameters.  Defaults reproduce the paper's setup.
* :func:`~repro.sim.runner.run_simulation` — build everything from the
  config, run, return a :class:`~repro.sim.results.SimulationResult`.
* :mod:`~repro.sim.sweep` — strategy × parameter sweeps with paired
  workloads (identical topology / subscriptions / publications per seed)
  and multi-seed aggregation.
"""

from repro.sim.config import SimulationConfig
from repro.sim.io import (
    load_results_csv,
    load_results_json,
    save_results_csv,
    save_results_json,
)
from repro.sim.results import SimulationResult, aggregate_results
from repro.sim.runner import build_system, run_simulation, schedule_workload
from repro.sim.sweep import sweep_publishing_rate, sweep_r_weight
from repro.sim.validation import Finding, validate_system

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "aggregate_results",
    "build_system",
    "run_simulation",
    "schedule_workload",
    "sweep_publishing_rate",
    "sweep_r_weight",
    "save_results_json",
    "load_results_json",
    "save_results_csv",
    "load_results_csv",
    "validate_system",
    "Finding",
]
