"""Build-and-run: config in, result out.

The RNG stream layout makes comparisons *paired*: topology wiring,
subscription filters and the publication schedule are drawn from streams
keyed only by the seed, so two runs differing only in strategy see exactly
the same workload over exactly the same overlay — which is how the paper's
figures compare strategies.
"""

from __future__ import annotations

import os
import shutil
import signal
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.core.checkpoint import (
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    timed_save,
)
from repro.analysis.sentinel import InvariantSentinel
from repro.core.registry import make_strategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import Topology, build_layered_mesh
from repro.pubsub.system import PubSubSystem, RoutingMode, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.workload.dynamics import DynamicsDriver
from repro.pubsub.subscription import Subscription
from repro.workload.generator import generate_publications_piecewise
from repro.workload.scenarios import build_subscriptions

#: Population override hook: (subscriptions RNG stream, topology) -> subs.
SubscriptionBuilder = Callable[[np.random.Generator, Topology], list[Subscription]]


def build_system(
    config: SimulationConfig,
    topology: Topology | None = None,
    subscription_builder: "SubscriptionBuilder | None" = None,
) -> PubSubSystem:
    """Construct the fully wired system for a config (without running it).

    Exposed separately so tests and examples can poke at the assembled
    overlay; ``run_simulation`` goes through here.  ``subscription_builder``
    overrides the population (scale-family workloads); it receives the
    ``"subscriptions"`` RNG stream and the topology, and every
    ``SystemConfig`` knob still comes from the one config.
    """
    streams = RngStreams(config.seed)
    if topology is None:
        topology = build_layered_mesh(streams.get("topology"), config.topology_spec)
    strategy = make_strategy(config.strategy, **config.strategy_params)
    system = PubSubSystem(
        topology=topology,
        strategy=strategy,
        sim=Simulator(),
        streams=streams,
        config=SystemConfig(
            processing_delay_ms=config.processing_delay_ms,
            epsilon=config.epsilon,
            default_size_kb=config.message_size_kb,
            measurement_mode=config.measurement_mode,
            pruning_override=config.pruning_override,
            scheduling_slack_per_hop_ms=config.scheduling_slack_per_hop_ms,
            routing=RoutingMode(k=config.routing_paths),
            enable_trace=config.enable_trace,
            queue_backend=config.queue_backend,
            queue_validate=config.queue_validate,
            matcher_backend=config.matcher_backend,
            metrics_backend=config.metrics_backend,
            link_estimator=config.link_estimator,
            log_spill=config.log_spill,
            log_chunk_rows=config.log_chunk_rows,
            engine_backend=config.engine_backend,
            engine_window_ms=config.engine_window_ms,
            shards=config.shards,
            shard_backend=config.shard_backend,
            fault_retry_backoff_ms=config.fault_retry_backoff_ms,
            fault_retry_max_backoff_ms=config.fault_retry_max_backoff_ms,
            dead_letter_timeout_ms=config.dead_letter_timeout_ms,
        ),
    )
    rng = streams.get("subscriptions")
    if subscription_builder is not None:
        system.subscribe_all(subscription_builder(rng, topology))
    else:
        system.subscribe_all(build_subscriptions(config.scenario, rng, topology))
    # Compile tables/matchers now so first-match cost is a build cost.
    system.warm()
    return system


def schedule_workload(system: PubSubSystem, config: SimulationConfig) -> int:
    """Schedule every publication as a simulator event; returns the count.

    The schedule follows the config's dynamics script: rate bursts become
    segments of the piecewise arrival process.  An empty script compiles
    to the single homogeneous segment, whose draws are byte-identical to
    the historic generator.
    """
    if config.publishing_rate_per_min == 0.0:
        return 0
    streams = system.streams
    publications = generate_publications_piecewise(
        streams.get("workload"),
        publishers=sorted(system.topology.publisher_brokers),
        segments=config.dynamics.rate_segments(
            config.publishing_rate_per_min, config.duration_ms
        ),
        duration_ms=config.duration_ms,
        scenario=config.scenario,
        size_kb=config.message_size_kb,
        arrival=config.arrival,
        deadline_range_ms=config.psd_deadline_range_ms,
    )
    trace_on = config.enable_trace
    for pub in publications:
        system.sim.schedule_at(
            pub.time_ms,
            # partial (not a closure) so pending publications serialize
            # by reference inside a checkpoint's object graph.
            partial(
                system.publish,
                pub.publisher,
                pub.attributes,
                size_kb=pub.size_kb,
                deadline_ms=pub.deadline_ms,
            ),
            label=f"publish:{pub.publisher}" if trace_on else "",
        )
    return len(publications)


def schedule_dynamics(system: PubSubSystem, config: SimulationConfig) -> DynamicsDriver | None:
    """Compile the script's timed interventions into DES events.

    Returns the driver (for introspection), or None for a script with no
    timed interventions — in which case nothing was created or touched,
    not even the ``"dynamics"`` RNG stream.
    """
    if not config.dynamics.timed:
        return None
    driver = DynamicsDriver(system, scenario=config.scenario)
    driver.schedule(config.dynamics)
    return driver


# ---------------------------------------------------------------------- #
# Sentinel wiring.
# ---------------------------------------------------------------------- #
def make_sentinel(
    system: PubSubSystem, config: SimulationConfig
) -> InvariantSentinel | None:
    """The run's sentinel, or None when disabled.

    Enabled by ``config.sentinel`` or by the ``REPRO_SENTINEL`` env var
    ("1" = boundary checks + final pair conservation, "deep" = pair
    conservation at every boundary too).  The env override is how the
    test suite and CI force invariant checking onto every run without
    threading a flag through each call site.
    """
    env = os.environ.get("REPRO_SENTINEL", "")
    if not config.sentinel and env in ("", "0"):
        return None
    deep = config.sentinel_deep or env == "deep"
    return InvariantSentinel(system, deep=deep)


def _run_with_sentinel(
    system: PubSubSystem,
    horizon_ms: float,
    sentinel: InvariantSentinel,
    every_ms: float,
) -> None:
    """Drive to the horizon in boundary-sized segments, checking at each.

    The engine is segment-invariant (the checkpoint-identity suite proves
    splitting ``run(until=...)`` changes nothing), and the sentinel only
    reads — so this loop executes the exact same events as one
    uninterrupted ``run(until=horizon)``.
    """
    k = int(system.sim.now // every_ms) + 1
    while True:
        target = min(horizon_ms, k * every_ms)
        k += 1
        system.run(until=target)
        sentinel.check()
        if target >= horizon_ms:
            return


def run_to_horizon(
    system: PubSubSystem,
    config: SimulationConfig,
    sentinel: InvariantSentinel | None,
) -> None:
    """Run an assembled system to the horizon, sentinel-aware.

    The shared non-checkpointed execution path for every harness (the
    runner, the dynamics family, the scale tier): plain ``run`` when no
    sentinel is armed, the boundary-check loop plus the final
    pair-conservation pass when one is.
    """
    if sentinel is None:
        system.run(until=config.horizon_ms)
    else:
        _run_with_sentinel(
            system, config.horizon_ms, sentinel, config.sentinel_every_ms
        )
        sentinel.final()


# ---------------------------------------------------------------------- #
# Checkpointed execution.
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CheckpointPolicy:
    """How a run snapshots itself: a root directory, a simulated-time
    cadence, and how many snapshots to retain."""

    directory: Path
    every_ms: float
    keep: int = 3

    def __post_init__(self) -> None:
        if self.every_ms <= 0.0:
            raise ValueError(f"every_ms must be positive, got {self.every_ms}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")
        object.__setattr__(self, "directory", Path(self.directory))


@dataclass
class CheckpointStats:
    """Accounting for the snapshots one run wrote."""

    snapshots: int = 0
    write_s: float = 0.0
    bytes: int = 0
    paths: list[Path] = field(default_factory=list)

    def note(self, path: Path, seconds: float, size: int) -> None:
        self.snapshots += 1
        self.write_s += seconds
        self.bytes = size  # latest snapshot size (they supersede each other)
        self.paths.append(path)


class CheckpointInterrupted(RuntimeError):
    """SIGTERM/SIGINT arrived: the current window was drained and a final
    checkpoint written; ``checkpoint`` names the snapshot to resume from."""

    def __init__(self, checkpoint: Path, executed: int) -> None:
        super().__init__(
            f"interrupted; resume from checkpoint {checkpoint}"
        )
        self.checkpoint = checkpoint
        self.executed = executed


@contextmanager
def _interrupt_flag() -> Iterator[Callable[[], bool]]:
    """Install SIGTERM/SIGINT handlers that *request* a graceful stop.

    The DES loop cannot be torn down mid-event: the handler only raises a
    flag, and the checkpoint loop acts on it at the next window boundary.
    Outside the main thread (where ``signal.signal`` refuses) the flag
    simply never fires.
    """
    hit = False

    def _handler(signum, frame):  # pragma: no cover - signal delivery
        nonlocal hit
        hit = True

    previous: list[tuple[int, object]] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous.append((signum, signal.signal(signum, _handler)))
        except ValueError:  # not the main thread
            pass
    try:
        yield lambda: hit
    finally:
        for signum, old in previous:
            signal.signal(signum, old)


def save_run_checkpoint(
    system: PubSubSystem,
    config: SimulationConfig,
    directory: Path | str,
    *,
    name: str | None = None,
    extras: dict | None = None,
) -> tuple[Path, float, int]:
    """Snapshot a (paused) run under ``directory``; returns
    ``(path, seconds, bytes)``.

    Snapshots are named by cumulative executed events so lexicographic
    order is execution order and :func:`repro.core.checkpoint.latest_checkpoint`
    needs no timestamps.  ``extras`` ride along in the state for callers
    with run-side objects outside the system graph (e.g. the dynamics
    queue-depth sampler).
    """
    # Lazy import: parallel.py imports this module at top level.
    from repro.sim.parallel import config_fingerprint

    name = name or f"ckpt-{system.sim.executed_events:012d}"
    return timed_save(
        {"system": system, "config": config, "extras": dict(extras or {})},
        Path(directory) / name,
        fingerprints={"config": config_fingerprint(config)},
        meta={
            "sim_now_ms": system.sim.now,
            "executed_events": system.sim.executed_events,
            "strategy": config.strategy_label(),
            "scenario": config.scenario.value,
            "seed": config.seed,
            "horizon_ms": config.horizon_ms,
        },
        overwrite=True,
    )


def resume_run(
    path: Path | str,
    *,
    config: SimulationConfig | None = None,
    allow_code_mismatch: bool = False,
) -> tuple[PubSubSystem, SimulationConfig, dict]:
    """Restore ``(system, config, extras)`` from a snapshot (or the
    newest one under a checkpoint root).

    When the caller supplies a ``config`` (a CLI rebuild from flags), its
    fingerprint must match the snapshot's — resuming under different
    decisions would silently break the identity guarantee, so it refuses
    with :class:`~repro.core.checkpoint.CheckpointMismatch` instead.
    Result-neutral knobs (spill settings) are excluded from the
    fingerprint; the restored system keeps its original spill mode.
    """
    path = Path(path)
    if path.is_dir() and not (path / "MANIFEST.json").exists():
        newest = latest_checkpoint(path)
        if newest is None:
            raise CheckpointError(f"no checkpoints under {path}")
        path = newest
    fingerprints = None
    if config is not None:
        from repro.sim.parallel import config_fingerprint

        fingerprints = {"config": config_fingerprint(config)}
    state, _ = load_checkpoint(
        path, fingerprints=fingerprints, allow_code_mismatch=allow_code_mismatch
    )
    return state["system"], state["config"], state.get("extras") or {}


def _prune_checkpoints(directory: Path, keep: int) -> None:
    snaps = sorted(p for p in directory.glob("ckpt-*") if p.is_dir())
    for old in snaps[:-keep] if keep else snaps:
        shutil.rmtree(old, ignore_errors=True)


def run_checkpointed(
    system: PubSubSystem,
    config: SimulationConfig,
    policy: CheckpointPolicy,
    *,
    extras: dict | None = None,
    sentinel: InvariantSentinel | None = None,
) -> CheckpointStats:
    """Run to the horizon, snapshotting every ``policy.every_ms`` of
    simulated time.

    The window-drain engine is segment-invariant (proven by the engine
    differential tests), so splitting ``run(until=horizon)`` at snapshot
    boundaries cannot change any decision.  On SIGTERM/SIGINT the current
    segment finishes, a final checkpoint is written, and
    :class:`CheckpointInterrupted` carries its path to the caller.
    """
    stats = CheckpointStats()
    horizon = config.horizon_ms
    every = policy.every_ms
    with _interrupt_flag() as interrupted:
        # Boundary index, not `now + every`: when every remaining event
        # lies beyond the next boundary the clock stalls below it, and a
        # time-derived target would re-run a zero-event segment forever.
        k = int(system.sim.now // every) + 1
        while True:
            target = min(horizon, k * every)
            k += 1
            system.run(until=target)
            if sentinel is not None:
                sentinel.check()
            if interrupted():
                path, seconds, size = save_run_checkpoint(
                    system, config, policy.directory, extras=extras
                )
                stats.note(path, seconds, size)
                raise CheckpointInterrupted(path, system.sim.executed_events)
            if target >= horizon:
                return stats
            path, seconds, size = save_run_checkpoint(
                system, config, policy.directory, extras=extras
            )
            stats.note(path, seconds, size)
            _prune_checkpoints(policy.directory, policy.keep)


def run_simulation(
    config: SimulationConfig,
    topology: Topology | None = None,
    *,
    checkpoint: CheckpointPolicy | None = None,
    resume: Path | str | None = None,
) -> SimulationResult:
    """Run one experiment point to completion and collect the metrics.

    ``checkpoint`` enables periodic snapshots; ``resume`` restores a
    snapshot (verifying the config fingerprint) and continues to the
    horizon.  Both together give crash-safe marathon runs.
    """
    if resume is not None:
        if topology is not None:
            raise ValueError("resume restores its own topology; cannot override")
        system, config, _ = resume_run(resume, config=config)
    else:
        system = build_system(config, topology)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
    sentinel = make_sentinel(system, config)
    if checkpoint is not None:
        run_checkpointed(system, config, checkpoint, sentinel=sentinel)
        if sentinel is not None:
            sentinel.final()
    else:
        run_to_horizon(system, config, sentinel)
    return SimulationResult.from_metrics(
        system.metrics,
        strategy=config.strategy_label(),
        scenario=config.scenario.value,
        seed=config.seed,
        publishing_rate_per_min=config.publishing_rate_per_min,
        residual_queued=system.total_queued(),
        # Cumulative, not per-call: a resumed run must report the same
        # total as the uninterrupted one.
        executed_events=system.sim.executed_events,
    )
