"""Build-and-run: config in, result out.

The RNG stream layout makes comparisons *paired*: topology wiring,
subscription filters and the publication schedule are drawn from streams
keyed only by the seed, so two runs differing only in strategy see exactly
the same workload over exactly the same overlay — which is how the paper's
figures compare strategies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.registry import make_strategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import Topology, build_layered_mesh
from repro.pubsub.system import PubSubSystem, RoutingMode, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.workload.dynamics import DynamicsDriver
from repro.pubsub.subscription import Subscription
from repro.workload.generator import generate_publications_piecewise
from repro.workload.scenarios import build_subscriptions

#: Population override hook: (subscriptions RNG stream, topology) -> subs.
SubscriptionBuilder = Callable[[np.random.Generator, Topology], list[Subscription]]


def build_system(
    config: SimulationConfig,
    topology: Topology | None = None,
    subscription_builder: "SubscriptionBuilder | None" = None,
) -> PubSubSystem:
    """Construct the fully wired system for a config (without running it).

    Exposed separately so tests and examples can poke at the assembled
    overlay; ``run_simulation`` goes through here.  ``subscription_builder``
    overrides the population (scale-family workloads); it receives the
    ``"subscriptions"`` RNG stream and the topology, and every
    ``SystemConfig`` knob still comes from the one config.
    """
    streams = RngStreams(config.seed)
    if topology is None:
        topology = build_layered_mesh(streams.get("topology"), config.topology_spec)
    strategy = make_strategy(config.strategy, **config.strategy_params)
    system = PubSubSystem(
        topology=topology,
        strategy=strategy,
        sim=Simulator(),
        streams=streams,
        config=SystemConfig(
            processing_delay_ms=config.processing_delay_ms,
            epsilon=config.epsilon,
            default_size_kb=config.message_size_kb,
            measurement_mode=config.measurement_mode,
            pruning_override=config.pruning_override,
            scheduling_slack_per_hop_ms=config.scheduling_slack_per_hop_ms,
            routing=RoutingMode(k=config.routing_paths),
            enable_trace=config.enable_trace,
            queue_backend=config.queue_backend,
            queue_validate=config.queue_validate,
            matcher_backend=config.matcher_backend,
            metrics_backend=config.metrics_backend,
            link_estimator=config.link_estimator,
            log_spill=config.log_spill,
            log_chunk_rows=config.log_chunk_rows,
            engine_backend=config.engine_backend,
            engine_window_ms=config.engine_window_ms,
        ),
    )
    rng = streams.get("subscriptions")
    if subscription_builder is not None:
        system.subscribe_all(subscription_builder(rng, topology))
    else:
        system.subscribe_all(build_subscriptions(config.scenario, rng, topology))
    # Compile tables/matchers now so first-match cost is a build cost.
    system.warm()
    return system


def schedule_workload(system: PubSubSystem, config: SimulationConfig) -> int:
    """Schedule every publication as a simulator event; returns the count.

    The schedule follows the config's dynamics script: rate bursts become
    segments of the piecewise arrival process.  An empty script compiles
    to the single homogeneous segment, whose draws are byte-identical to
    the historic generator.
    """
    if config.publishing_rate_per_min == 0.0:
        return 0
    streams = system.streams
    publications = generate_publications_piecewise(
        streams.get("workload"),
        publishers=sorted(system.topology.publisher_brokers),
        segments=config.dynamics.rate_segments(
            config.publishing_rate_per_min, config.duration_ms
        ),
        duration_ms=config.duration_ms,
        scenario=config.scenario,
        size_kb=config.message_size_kb,
        arrival=config.arrival,
        deadline_range_ms=config.psd_deadline_range_ms,
    )
    trace_on = config.enable_trace
    for pub in publications:
        system.sim.schedule_at(
            pub.time_ms,
            # Bind loop variable via default argument.
            lambda p=pub: system.publish(
                p.publisher, p.attributes, size_kb=p.size_kb, deadline_ms=p.deadline_ms
            ),
            label=f"publish:{pub.publisher}" if trace_on else "",
        )
    return len(publications)


def schedule_dynamics(system: PubSubSystem, config: SimulationConfig) -> DynamicsDriver | None:
    """Compile the script's timed interventions into DES events.

    Returns the driver (for introspection), or None for a script with no
    timed interventions — in which case nothing was created or touched,
    not even the ``"dynamics"`` RNG stream.
    """
    if not config.dynamics.timed:
        return None
    driver = DynamicsDriver(system, scenario=config.scenario)
    driver.schedule(config.dynamics)
    return driver


def run_simulation(
    config: SimulationConfig,
    topology: Topology | None = None,
) -> SimulationResult:
    """Run one experiment point to completion and collect the metrics."""
    system = build_system(config, topology)
    schedule_workload(system, config)
    schedule_dynamics(system, config)
    executed = system.run(until=config.horizon_ms)
    return SimulationResult.from_metrics(
        system.metrics,
        strategy=config.strategy_label(),
        scenario=config.scenario.value,
        seed=config.seed,
        publishing_rate_per_min=config.publishing_rate_per_min,
        residual_queued=system.total_queued(),
        executed_events=executed,
    )
