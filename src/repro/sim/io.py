"""Result persistence: JSON and CSV round-trips.

Sweeps at paper scale take minutes; persisting results lets the figure
renderers, EXPERIMENTS.md generator and notebooks consume a finished run
without re-simulating.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.sim.results import SimulationResult

#: Column order for CSV output (matches the dataclass field order).
_FIELDS = [f.name for f in dataclasses.fields(SimulationResult)]


def result_to_dict(result: SimulationResult) -> dict:
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> SimulationResult:
    unknown = set(data) - set(_FIELDS)
    if unknown:
        raise ValueError(f"unknown result fields: {sorted(unknown)}")
    missing = set(_FIELDS) - set(data)
    if missing:
        raise ValueError(f"missing result fields: {sorted(missing)}")
    return SimulationResult(**data)


def save_results_json(results: Iterable[SimulationResult], path: str | Path) -> None:
    payload = [result_to_dict(r) for r in results]
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results_json(path: str | Path) -> list[SimulationResult]:
    payload = json.loads(Path(path).read_text())
    return [result_from_dict(d) for d in payload]


def save_results_csv(results: Iterable[SimulationResult], path: str | Path) -> None:
    results = list(results)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for r in results:
            writer.writerow(result_to_dict(r))


_FLOAT_FIELDS = {
    "publishing_rate_per_min",
    "delivery_rate",
    "earning",
    "mean_latency_ms",
}
_STR_FIELDS = {"strategy", "scenario"}


def load_results_csv(path: str | Path) -> list[SimulationResult]:
    out: list[SimulationResult] = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            coerced: dict = {}
            for key, value in row.items():
                if key in _STR_FIELDS:
                    coerced[key] = value
                elif key in _FLOAT_FIELDS:
                    coerced[key] = float(value)
                else:
                    coerced[key] = int(value)
            out.append(result_from_dict(coerced))
    return out
