"""Broker-overlay partitioning for the sharded in-run engine.

The conservative-parallel-DES opening (ROADMAP item 1): each broker owns
its queues, table shard and local deliveries, and cross-broker traffic
only travels over links with known latency.  This module turns the
static overlay into a :class:`ShardPlan` — a deterministic, balanced
partition of the broker set into N shards that greedily minimises the
expected traffic crossing shard boundaries — which the
:class:`~repro.pubsub.shard_engine.ShardedEngine` uses to place each
broker's pure match work on a worker.

Everything here is a pure function of the topology: the same topology
and shard count always produce the same plan, so a sharded run's
partition (and therefore its worker placement) is reproducible, and the
hypothesis differential can inject arbitrary alternative plans to prove
placement cannot change results.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.network.topology import Topology, TopologyError

#: Recognised ``shard_backend`` selectors: ``"process"`` runs each
#: shard's match phase in a forked worker process (POSIX only);
#: ``"inline"`` runs the identical batching/encode/decode protocol in
#: the coordinator thread — the deterministic testing backend and the
#: portable fallback.
SHARD_BACKENDS: tuple[str, ...] = ("process", "inline")


class ShardConfigError(ValueError):
    """A shard configuration the engine refuses to run (typed so callers
    and tests can distinguish refusal from accidental misuse)."""


@dataclass(frozen=True)
class ShardPlan:
    """A partition of the broker set into shards.

    ``assignments[i]`` is shard ``i``'s broker names (sorted);
    ``cut_weight`` is the summed traffic weight of links crossing shard
    boundaries (the quantity the partitioner minimises) and
    ``min_cut_ms_per_kb`` the smallest mean per-KB transmission time of
    any crossing link — the conservative lookahead bound: a message
    needs at least ``min_cut_ms_per_kb * size_kb`` simulated ms to hop
    between shards, so epochs at that granularity cannot miss a
    boundary crossing.  ``inf`` when nothing crosses (single shard).
    """

    assignments: tuple[tuple[str, ...], ...]
    cut_weight: float = 0.0
    min_cut_ms_per_kb: float = math.inf
    _shard_of: dict[str, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        seen: dict[str, int] = {}
        for idx, names in enumerate(self.assignments):
            for name in names:
                if name in seen:
                    raise ShardConfigError(
                        f"broker {name!r} assigned to shards {seen[name]} and {idx}"
                    )
                seen[name] = idx
        self._shard_of.update(seen)

    @property
    def n_shards(self) -> int:
        return len(self.assignments)

    @property
    def brokers(self) -> frozenset[str]:
        return frozenset(self._shard_of)

    def shard_of(self, broker: str) -> int:
        return self._shard_of[broker]

    def lookahead_ms(self, size_kb: float) -> float:
        """Minimum simulated time for a ``size_kb`` message to cross a
        shard boundary (``inf`` when no link crosses)."""
        return self.min_cut_ms_per_kb * size_kb

    def validate_against(self, topology: Topology) -> None:
        """Refuse plans that do not cover the topology exactly."""
        want = set(topology.brokers)
        have = set(self._shard_of)
        if want != have:
            missing = sorted(want - have)
            extra = sorted(have - want)
            raise ShardConfigError(
                f"shard plan does not cover the topology exactly "
                f"(missing={missing[:5]}, extra={extra[:5]})"
            )


def _link_weight(mean_ms_per_kb: float) -> float:
    """Expected-traffic proxy for one link: fast links (small mean per-KB
    time) sit on more routed paths and carry proportionally more
    messages per simulated second, so weight ~ 1/mean."""
    return 1.0 / max(mean_ms_per_kb, 1e-9)


def partition_brokers(topology: Topology, n_shards: int) -> ShardPlan:
    """Deterministic balanced min-cut partition of the broker overlay.

    Three phases, all order-stable:

    1. *Seeding*: farthest-point heuristic over hop distance — spread
       the N seeds across the overlay so initial regions don't collide.
    2. *Growth*: balanced multi-source BFS; shards claim unassigned
       neighbours round-robin, preferring the heaviest connecting link
       (keep chatty pairs together), capped at ``ceil(n / n_shards)``.
    3. *Refinement*: greedy single-move passes — move a broker to an
       adjacent shard when that strictly lowers the crossing weight and
       keeps both shards' sizes within the balance cap.
    """
    brokers = topology.brokers  # sorted
    if not brokers:
        raise TopologyError("cannot partition an empty topology")
    if n_shards < 1:
        raise ShardConfigError(f"shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, len(brokers))

    weight: dict[tuple[str, str], float] = {}
    mean_ms: dict[tuple[str, str], float] = {}
    adjacency: dict[str, list[str]] = {name: [] for name in brokers}
    for a, b, rate in topology.links():
        weight[(a, b)] = _link_weight(rate.mean)
        mean_ms[(a, b)] = rate.mean
        adjacency[a].append(b)
        adjacency[b].append(a)
    for name in brokers:
        adjacency[name].sort()

    if n_shards == 1:
        return ShardPlan(assignments=(tuple(brokers),))

    # -- 1. farthest-point seeds over hop distance ---------------------- #
    def hop_distances(src: str) -> dict[str, int]:
        dist = {src: 0}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nxt in adjacency[node]:
                if nxt not in dist:
                    dist[nxt] = dist[node] + 1
                    queue.append(nxt)
        return dist

    seeds = [brokers[0]]
    min_dist = hop_distances(seeds[0])
    while len(seeds) < n_shards:
        # Max-min-distance; name-sorted iteration breaks ties low.
        best, best_d = None, -1
        for name in brokers:
            if name in seeds:
                continue
            d = min_dist.get(name, 0)
            if d > best_d:
                best, best_d = name, d
        seeds.append(best)
        for name, d in hop_distances(best).items():
            if d < min_dist.get(name, math.inf):
                min_dist[name] = d

    # -- 2. balanced round-robin BFS growth ----------------------------- #
    cap = math.ceil(len(brokers) / n_shards)
    assign: dict[str, int] = {seed: idx for idx, seed in enumerate(seeds)}
    sizes = [1] * n_shards

    def edge_w(a: str, b: str) -> float:
        return weight.get((a, b) if a < b else (b, a), 0.0)

    unassigned = [name for name in brokers if name not in assign]
    while unassigned:
        progressed = False
        for idx in range(n_shards):
            if sizes[idx] >= cap:
                continue
            # The unassigned broker most strongly attached to shard idx
            # (heaviest total connecting weight; name breaks ties).
            best, best_w = None, -1.0
            for name in unassigned:
                w = sum(
                    edge_w(name, nb)
                    for nb in adjacency[name]
                    if assign.get(nb) == idx
                )
                if w > best_w:
                    best, best_w = name, w
            if best is None:
                continue
            if best_w <= 0.0 and progressed:
                # Nothing touches this shard yet; let others grow first.
                continue
            assign[best] = idx
            sizes[idx] += 1
            unassigned.remove(best)
            progressed = True
            if not unassigned:
                break
        if not progressed:
            # Capacity exhausted everywhere (can't happen with the ceil
            # cap) — assign leftovers to the smallest shard defensively.
            for name in unassigned:
                idx = sizes.index(min(sizes))
                assign[name] = idx
                sizes[idx] += 1
            break

    # -- 3. greedy refinement ------------------------------------------- #
    floor = max(1, len(brokers) // n_shards - 1)

    def move_gain(name: str, dst: int) -> float:
        src = assign[name]
        gain = 0.0
        for nb in adjacency[name]:
            w = edge_w(name, nb)
            if assign[nb] == src:
                gain -= w  # would start crossing
            elif assign[nb] == dst:
                gain += w  # would stop crossing
        return gain

    for _ in range(4):
        moved = False
        for name in brokers:
            src = assign[name]
            if sizes[src] <= floor:
                continue
            candidates = sorted({assign[nb] for nb in adjacency[name]} - {src})
            best_dst, best_gain = None, 0.0
            for dst in candidates:
                if sizes[dst] >= cap:
                    continue
                gain = move_gain(name, dst)
                if gain > best_gain + 1e-12:
                    best_dst, best_gain = dst, gain
            if best_dst is not None:
                assign[name] = best_dst
                sizes[src] -= 1
                sizes[best_dst] += 1
                moved = True
        if not moved:
            break

    assignments = tuple(
        tuple(sorted(name for name, idx in assign.items() if idx == shard))
        for shard in range(n_shards)
    )
    cut = 0.0
    min_cut_ms = math.inf
    for (a, b), w in weight.items():
        if assign[a] != assign[b]:
            cut += w
            min_cut_ms = min(min_cut_ms, mean_ms[(a, b)])
    return ShardPlan(
        assignments=assignments, cut_weight=cut, min_cut_ms_per_kb=min_cut_ms
    )
