"""Headline-claim checks: does the reproduction show the paper's *shape*?

Absolute numbers are not expected to match (our substrate is a simulator
with its own randomness, and several workload details are under-specified
in the paper), but the qualitative findings should hold.  Each claim is
checked programmatically and reported pass/fail; EXPERIMENTS.md records a
full run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figure5, figure6
from repro.experiments.common import FigureResult, ScaleSpec


@dataclass(frozen=True, slots=True)
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    detail: str


def _at(result: FigureResult, series: str, x: float) -> float:
    return result.series[series][result.x_values.index(x)]


def check_ssd_claims(panel_a: FigureResult, panel_b: FigureResult) -> list[ClaimResult]:
    """Figure 5 claims (SSD)."""
    out: list[ClaimResult] = []
    top_rate = max(panel_a.x_values)

    eb, pc = _at(panel_a, "eb", top_rate), _at(panel_a, "pc", top_rate)
    fifo, rl = _at(panel_a, "fifo", top_rate), _at(panel_a, "rl", top_rate)
    out.append(
        ClaimResult(
            "ssd-ordering",
            "at the highest rate, earning: EB > PC ≥ FIFO > RL",
            eb > pc >= fifo > rl,
            f"EB={eb:.4g} PC={pc:.4g} FIFO={fifo:.4g} RL={rl:.4g}",
        )
    )
    out.append(
        ClaimResult(
            "ssd-eb-vs-fifo-factor",
            "EB earns a large multiple of FIFO at the highest rate (paper: ≈5x)",
            fifo == 0 or eb / fifo >= 2.0,
            f"ratio EB/FIFO = {eb / fifo if fifo else float('inf'):.2f}",
        )
    )
    out.append(
        ClaimResult(
            "ssd-eb-vs-rl-factor",
            "EB earns a large multiple of RL at the highest rate (paper: ≈10x)",
            rl == 0 or eb / rl >= 3.0,
            f"ratio EB/RL = {eb / rl if rl else float('inf'):.2f}",
        )
    )

    # Monotone-ish growth for EB: last point is its maximum.
    eb_series = panel_a.series["eb"]
    out.append(
        ClaimResult(
            "ssd-eb-monotone",
            "EB earning keeps growing with publishing rate",
            eb_series[-1] == max(eb_series),
            f"series={['%.3g' % v for v in eb_series]}",
        )
    )
    # FIFO/RL peak before the end (earning declines past the knee).
    for s in ("fifo", "rl"):
        series = panel_a.series[s]
        out.append(
            ClaimResult(
                f"ssd-{s}-peaks",
                f"{s.upper()} earning peaks below the highest rate",
                max(series) > series[-1],
                f"series={['%.3g' % v for v in series]}",
            )
        )

    traffic_eb = _at(panel_b, "eb", top_rate)
    traffic_fifo = _at(panel_b, "fifo", top_rate)
    traffic_rl = _at(panel_b, "rl", top_rate)
    out.append(
        ClaimResult(
            "ssd-traffic-modest",
            "EB carries more traffic than FIFO/RL, but less than ~2x (paper: +23 % / +64 %)",
            traffic_fifo <= traffic_eb <= 2.0 * traffic_rl
            and traffic_eb <= 2.0 * traffic_fifo,
            f"EB={traffic_eb:.4g} FIFO={traffic_fifo:.4g} RL={traffic_rl:.4g}",
        )
    )
    return out


def check_psd_claims(panel_a: FigureResult, panel_b: FigureResult) -> list[ClaimResult]:
    """Figure 6 claims (PSD)."""
    out: list[ClaimResult] = []
    top_rate = max(panel_a.x_values)
    eb, pc = _at(panel_a, "eb", top_rate), _at(panel_a, "pc", top_rate)
    fifo, rl = _at(panel_a, "fifo", top_rate), _at(panel_a, "rl", top_rate)
    out.append(
        ClaimResult(
            "psd-ordering",
            "at the highest rate, delivery rate: {EB, PC} > FIFO > RL",
            min(eb, pc) > fifo > rl,
            f"EB={eb:.4g} PC={pc:.4g} FIFO={fifo:.4g} RL={rl:.4g}",
        )
    )
    for s in ("eb", "pc", "fifo", "rl"):
        series = panel_a.series[s]
        non_increasing = all(a >= b - 0.02 for a, b in zip(series, series[1:]))
        out.append(
            ClaimResult(
                f"psd-{s}-decreasing",
                f"{s.upper()} delivery rate decreases with publishing rate",
                non_increasing,
                f"series={['%.3g' % v for v in series]}",
            )
        )
    traffic_eb = _at(panel_b, "eb", top_rate)
    traffic_fifo = _at(panel_b, "fifo", top_rate)
    traffic_rl = _at(panel_b, "rl", top_rate)
    out.append(
        ClaimResult(
            "psd-traffic-modest",
            "EB traffic exceeds FIFO/RL only modestly (paper: +17 % / +60 %)",
            traffic_fifo <= traffic_eb <= 2.0 * traffic_rl
            and traffic_eb <= 2.0 * traffic_fifo,
            f"EB={traffic_eb:.4g} FIFO={traffic_fifo:.4g} RL={traffic_rl:.4g}",
        )
    )
    return out


def run_all(scale: ScaleSpec | None = None) -> list[ClaimResult]:
    """Run Figures 5 and 6 and evaluate every claim."""
    scale = scale or ScaleSpec(scale=0.1)
    f5a, f5b = figure5.run_both_panels(scale)
    f6a, f6b = figure6.run_both_panels(scale)
    return check_ssd_claims(f5a, f5b) + check_psd_claims(f6a, f6b)


def format_report(claims: list[ClaimResult]) -> str:
    lines = ["Headline-claim check", "====================", ""]
    for c in claims:
        status = "PASS" if c.passed else "FAIL"
        lines.append(f"[{status}] {c.claim_id}: {c.description}")
        lines.append(f"        {c.detail}")
    passed = sum(c.passed for c in claims)
    lines.append("")
    lines.append(f"{passed}/{len(claims)} claims hold")
    return "\n".join(lines)
