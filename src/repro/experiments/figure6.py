"""Figure 6: the PSD scenario across publishing rates.

Panel (a): delivery rate — decreasing in load for every strategy (system
capacity is fixed); EB ≈ PC well above FIFO, RL worst (paper at rate 15:
40.1 % / 22.5 % / 11.6 % for EB / FIFO / RL).

Panel (b): message number — EB slightly above FIFO (paper: +17 % at rate
15) and above RL (+60 %).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import FIGURE56_RATES, FigureResult, ScaleSpec, paper_base_config
from repro.sim.parallel import make_point_runner
from repro.sim.sweep import failure_notes, sweep_publishing_rate
from repro.workload.scenarios import Scenario

STRATEGIES: tuple[str, ...] = ("eb", "pc", "fifo", "rl")


def run_both_panels(
    scale: ScaleSpec | None = None,
    rates: Sequence[float] = FIGURE56_RATES,
    seeds: Sequence[int] | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> tuple[FigureResult, FigureResult]:
    """Run the PSD rate sweep once; derive both panels from it."""
    scale = scale or ScaleSpec()
    sweep = sweep_publishing_rate(
        paper_base_config(Scenario.PSD, scale), rates, STRATEGIES, seeds=seeds,
        point_runner=make_point_runner(jobs, cache_dir),
    )
    notes = [f"scale={scale.scale:g} of the paper's 2-hour period, seed={scale.seed}"]
    notes += failure_notes(sweep)
    panel_a = FigureResult(
        figure_id="fig6a",
        title="Fig 6(a) — PSD: delivery rate vs publishing rate",
        x_label="publishing rate (msgs/min/publisher)",
        y_label="delivery rate",
        x_values=list(rates),
        series={s: sweep.metric(s, lambda r: r.delivery_rate) for s in STRATEGIES},
        notes=list(notes),
    )
    panel_b = FigureResult(
        figure_id="fig6b",
        title="Fig 6(b) — PSD: message number vs publishing rate",
        x_label="publishing rate (msgs/min/publisher)",
        y_label="message number (broker receptions)",
        x_values=list(rates),
        series={s: sweep.metric(s, lambda r: float(r.message_number)) for s in STRATEGIES},
        notes=list(notes),
    )
    return panel_a, panel_b


def run_panel_a(scale: ScaleSpec | None = None, **kw) -> FigureResult:
    return run_both_panels(scale, **kw)[0]


def run_panel_b(scale: ScaleSpec | None = None, **kw) -> FigureResult:
    return run_both_panels(scale, **kw)[1]
