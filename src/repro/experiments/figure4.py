"""Figure 4: EB vs PC vs EBPC across the EB weight ``r``.

Panel (a): SSD total earning at publishing rate 10.
Panel (b): PSD delivery rate at publishing rate 10.

The paper's reading: in SSD the PC strategy trails EB, and EBPC beats both
for ``r`` roughly in (23 %, 100 %); in PSD, EB ≈ PC and the combination is
consistently at least as good.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import FIGURE4_R_VALUES, FigureResult, ScaleSpec, paper_base_config
from repro.sim.parallel import make_point_runner
from repro.sim.sweep import failure_notes, sweep_r_weight
from repro.workload.scenarios import Scenario


def run_panel_a(
    scale: ScaleSpec | None = None,
    r_values: Sequence[float] = FIGURE4_R_VALUES,
    seeds: Sequence[int] | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> FigureResult:
    """Fig. 4(a): SSD total earning vs r."""
    scale = scale or ScaleSpec()
    sweep = sweep_r_weight(
        paper_base_config(Scenario.SSD, scale), r_values, seeds=seeds,
        point_runner=make_point_runner(jobs, cache_dir),
    )
    return FigureResult(
        figure_id="fig4a",
        title="Fig 4(a) — SSD: total earning vs EB weight (publishing rate 10)",
        x_label="weight of EB, r",
        y_label="total earning",
        x_values=list(r_values),
        series={label: sweep.metric(label, lambda r: r.earning) for label in ("ebpc", "eb", "pc")},
        notes=[f"scale={scale.scale:g} of the paper's 2-hour period, seed={scale.seed}"]
        + failure_notes(sweep),
    )


def run_panel_b(
    scale: ScaleSpec | None = None,
    r_values: Sequence[float] = FIGURE4_R_VALUES,
    seeds: Sequence[int] | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> FigureResult:
    """Fig. 4(b): PSD delivery rate vs r."""
    scale = scale or ScaleSpec()
    sweep = sweep_r_weight(
        paper_base_config(Scenario.PSD, scale), r_values, seeds=seeds,
        point_runner=make_point_runner(jobs, cache_dir),
    )
    return FigureResult(
        figure_id="fig4b",
        title="Fig 4(b) — PSD: delivery rate vs EB weight (publishing rate 10)",
        x_label="weight of EB, r",
        y_label="delivery rate",
        x_values=list(r_values),
        series={
            label: sweep.metric(label, lambda r: r.delivery_rate)
            for label in ("ebpc", "eb", "pc")
        },
        notes=[f"scale={scale.scale:g} of the paper's 2-hour period, seed={scale.seed}"]
        + failure_notes(sweep),
    )
