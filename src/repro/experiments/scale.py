"""Scale-tier experiment points: 100k+-subscriber runs, bounded memory.

Builds a member of the :data:`~repro.workload.scenarios.SCALE_SCENARIOS`
family on the paper's stretched mesh, runs it with the chunked delivery
log (optionally spilling sealed chunks to disk), and reports the
figures that matter at this tier: wall time per phase, peak RSS, rows
logged, chunks spilled — plus a digest of the windowed time series so
spill-on and spill-off runs can be proven identical.

Shared by ``python -m repro scale`` and ``benchmarks/bench_scale.py``
(which runs each mode in a fresh subprocess so the ``ru_maxrss``
high-water marks don't contaminate each other).
"""

from __future__ import annotations

import hashlib
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.timeseries import windowed_metrics
from repro.core.chunked import DEFAULT_CHUNK_ROWS
from repro.pubsub.system import PubSubSystem
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    CheckpointPolicy,
    build_system,
    make_sentinel,
    resume_run,
    run_checkpointed,
    run_to_horizon,
    schedule_dynamics,
    schedule_workload,
)
from repro.workload.dynamics import ScenarioScript
from repro.workload.scenarios import (
    SCALE_SCENARIOS,
    Scenario,
    ScaleScenarioSpec,
    build_scale_subscriptions,
)


def peak_rss_kb() -> int:
    """The process's resident-set high-water mark, in KiB (0 if the
    platform doesn't expose it).

    ``ru_maxrss`` is kilobytes on Linux but **bytes** on macOS — the
    one getrusage field with platform-dependent units."""
    try:
        import resource

        raw = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return raw // 1024 if sys.platform == "darwin" else raw
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return 0


@dataclass(frozen=True, slots=True)
class ScalePointResult:
    """Everything one scale run reports."""

    scenario: str
    strategy: str
    subscribers: int
    seed: int
    spill: bool
    chunk_rows: int
    published: int
    deliveries: int
    deliveries_valid: int
    earning: float
    delivery_rate: float
    log_rows: int
    spilled_chunks: int
    build_s: float
    run_s: float
    analysis_s: float
    peak_rss_kb: int
    series_sha256: str
    engine: str = "fused"
    shards: int = 0
    shard_backend: str = "process"
    checkpoints: int = 0
    checkpoint_write_s: float = 0.0
    checkpoint_mb: float = 0.0
    resumed: bool = False

    @property
    def deliveries_per_s(self) -> float:
        """Delivered records per wall-second of the run phase — the
        scale tier's throughput figure (guarded by the bench floor)."""
        return self.deliveries / self.run_s if self.run_s > 0.0 else 0.0

    def as_dict(self) -> dict:
        return {
            "scenario": f"scale-{self.scenario}",
            "strategy": self.strategy,
            "subscriptions": self.subscribers,
            "seed": self.seed,
            "log_spill": self.spill,
            "log_chunk_rows": self.chunk_rows,
            "published": self.published,
            "deliveries": self.deliveries,
            "deliveries_valid": self.deliveries_valid,
            "earning": self.earning,
            "delivery_rate": self.delivery_rate,
            "log_rows": self.log_rows,
            "spilled_chunks": self.spilled_chunks,
            "engine": self.engine,
            "shards": self.shards,
            "shard_backend": self.shard_backend,
            "build_s": round(self.build_s, 3),
            "run_s": round(self.run_s, 3),
            "analysis_s": round(self.analysis_s, 3),
            "deliveries_per_s": round(self.deliveries_per_s, 1),
            # Total measured wall, matching what wall_s means in every
            # other BENCH_e2e.json record.
            "wall_s": round(self.build_s + self.run_s + self.analysis_s, 4),
            "peak_rss_kb": self.peak_rss_kb,
            "series_sha256": self.series_sha256,
            "checkpoints": self.checkpoints,
            "checkpoint_write_s": round(self.checkpoint_write_s, 3),
            "checkpoint_mb": round(self.checkpoint_mb, 2),
            "resumed": self.resumed,
        }


def scale_config(
    spec: ScaleScenarioSpec,
    strategy: str = "eb",
    seed: int = 1,
    rate_per_min: float = 10.0,
    minutes: float = 2.0,
    spill: bool = False,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    engine: str = "fused",
    shards: int = 0,
    shard_backend: str = "process",
    sentinel: bool = False,
    script: ScenarioScript | None = None,
) -> SimulationConfig:
    """The simulation config of one scale point (small messages keep the
    links fast, so fanout — not transmission — dominates)."""
    return SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate_per_min,
        duration_ms=minutes * 60_000.0,
        grace_ms=30_000.0,
        message_size_kb=5.0,
        topology_spec=spec.topology_spec(),
        log_spill=spill,
        log_chunk_rows=chunk_rows,
        engine_backend=engine,
        shards=shards,
        shard_backend=shard_backend,
        sentinel=sentinel,
        dynamics=script if script is not None else ScenarioScript(),
    )


def build_scale_system(spec: ScaleScenarioSpec, config: SimulationConfig) -> PubSubSystem:
    """Assemble the stretched mesh with the spec's skewed population.

    Goes through :func:`repro.sim.runner.build_system` with a population
    override, so *every* ``SystemConfig`` knob (backends, measurement
    mode, routing, log spill...) is honoured from the one config — the
    only scale-specific part is who subscribes with which filter.
    """
    return build_system(
        config,
        subscription_builder=lambda rng, topology: build_scale_subscriptions(
            rng, topology, spec
        ),
    )


def series_digest(ts) -> str:
    """Stable digest of a windowed time series (the spill-identity probe)."""
    h = hashlib.sha256()
    for arr in (
        ts.edges, ts.published, ts.interested, ts.deliveries_valid,
        ts.deliveries_late, ts.earning, ts.latency_sum_ms,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def run_scale_point(
    scenario: str,
    strategy: str = "eb",
    seed: int = 1,
    rate_per_min: float = 10.0,
    minutes: float = 2.0,
    spill: bool = False,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    window_s: float = 30.0,
    engine: str = "fused",
    shards: int = 0,
    shard_backend: str = "process",
    sentinel: bool = False,
    script: ScenarioScript | None = None,
    checkpoint: CheckpointPolicy | None = None,
    resume: Path | str | None = None,
) -> ScalePointResult:
    """Build, run and analyse one scale point, timing each phase.

    The analysis phase intentionally exercises the streaming reductions
    (windowed series over the possibly-spilled log) — at this tier the
    *analysis* is as memory-dangerous as the run, and the point of the
    chunked spine is that both stay bounded.  ``checkpoint`` snapshots
    the run on a simulated-time cadence; ``resume`` restores a snapshot
    (config-fingerprint-checked against the flags given here) and runs
    it to the horizon.  Checkpoint write time is accounted separately
    from ``run_s`` so the throughput floor stays comparable.
    """
    spec = SCALE_SCENARIOS[scenario]
    config = scale_config(
        spec, strategy=strategy, seed=seed, rate_per_min=rate_per_min,
        minutes=minutes, spill=spill, chunk_rows=chunk_rows, engine=engine,
        shards=shards, shard_backend=shard_backend,
        sentinel=sentinel, script=script,
    )
    t0 = time.perf_counter()  # repro-lint: ignore[RL001] -- phase stopwatch (build/run/analysis), decision-neutral
    if resume is not None:
        system, config, _ = resume_run(resume, config=config)
    else:
        system = build_scale_system(spec, config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
    t1 = time.perf_counter()  # repro-lint: ignore[RL001] -- phase stopwatch, decision-neutral
    run_sentinel = make_sentinel(system, config)
    ck_count, ck_write_s, ck_bytes = 0, 0.0, 0
    if checkpoint is not None:
        stats = run_checkpointed(system, config, checkpoint, sentinel=run_sentinel)
        ck_count, ck_write_s, ck_bytes = stats.snapshots, stats.write_s, stats.bytes
        if run_sentinel is not None:
            run_sentinel.final()
    else:
        run_to_horizon(system, config, run_sentinel)
    t2 = time.perf_counter()  # repro-lint: ignore[RL001] -- phase stopwatch, decision-neutral
    live_engine = getattr(system, "_engine", None)
    if live_engine is not None and hasattr(live_engine, "close"):
        # Reap shard workers before analysis: their copy-on-write pages
        # would otherwise count against this phase's RSS high-water mark.
        live_engine.close()
    ts = windowed_metrics(system, window_s * 1000.0, config.horizon_ms)
    digest = series_digest(ts)
    t3 = time.perf_counter()  # repro-lint: ignore[RL001] -- phase stopwatch, decision-neutral
    m = system.metrics
    return ScalePointResult(
        scenario=scenario,
        strategy=strategy,
        subscribers=len(system.topology.subscriber_brokers),
        seed=seed,
        spill=spill,
        chunk_rows=chunk_rows,
        published=m.published,
        deliveries=m.deliveries_valid + m.deliveries_late,
        deliveries_valid=m.deliveries_valid,
        earning=m.earning,
        delivery_rate=m.delivery_rate,
        log_rows=len(system.delivery_log),
        spilled_chunks=system.delivery_log.spilled_chunks,
        build_s=t1 - t0,
        run_s=(t2 - t1) - ck_write_s,
        analysis_s=t3 - t2,
        peak_rss_kb=peak_rss_kb(),
        series_sha256=digest,
        engine=engine,
        shards=shards,
        shard_backend=shard_backend,
        checkpoints=ck_count,
        checkpoint_write_s=ck_write_s,
        checkpoint_mb=ck_bytes / 1e6,
        resumed=resume is not None,
    )
