"""Terminal line charts for figure results (no plotting dependency).

Renders a :class:`~repro.experiments.common.FigureResult` as a fixed-size
character grid: one marker per series, y axis auto-scaled, legend below.
Good enough to eyeball the crossovers the paper's figures show.
"""

from __future__ import annotations

from repro.experiments.common import FigureResult

#: Series markers, assigned in iteration order.
MARKERS = "ox+*#@%&"


def render_ascii_chart(
    result: FigureResult,
    width: int = 60,
    height: int = 16,
) -> str:
    """Plot every series of ``result`` on one grid."""
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4")
    if not result.x_values:
        raise ValueError("nothing to plot")

    xs = result.x_values
    all_y = [v for series in result.series.values() for v in series]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:  # flat chart: pad so everything sits mid-height
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - row  # terminal rows grow downward
        cell = grid[row][col]
        grid[row][col] = "*" if cell not in (" ", marker) else marker

    legend = []
    for i, (label, series) in enumerate(result.series.items()):
        marker = MARKERS[i % len(MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in zip(xs, series):
            place(x, y, marker)

    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    gutter = max(len(y_hi_label), len(y_lo_label))
    lines = [result.title, ""]
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = y_hi_label.rjust(gutter)
        elif row_idx == height - 1:
            prefix = y_lo_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}|")
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * gutter + "  " + x_axis)
    lines.append(" " * gutter + "  " + result.x_label)
    lines.append("legend: " + "   ".join(legend) + "   (* = overlap)")
    return "\n".join(lines)
