"""Scenario fuzzer: hunt the fault space for invariant breaks and upsets.

Random fault scripts — link kills, broker outages, partitions, cascades,
load bursts — are generated against the run's actual topology and played
through a full simulation with the **deep** invariant sentinel armed
(pair conservation re-proven at every boundary, not just at the end).
Two kinds of findings come back:

* **sentinel violations** — an :class:`InvariantViolation` raised during
  the run.  These are bugs by definition; the fuzzer *shrinks* the
  triggering script (greedy one-at-a-time intervention removal, re-run
  after each candidate removal) and writes a replayable counterexample
  file (:func:`repro.workload.registry.save_script`) so the minimal
  script becomes a regression scenario.  Any violation fails the run
  (exit 1 from the CLI).
* **ranking inversions** — a fault script under which the strategy pair's
  frozen-world ranking flips (e.g. FIFO out-earns EB once the backbone
  partitions).  These are *findings*, not failures: the paper's claims
  are explicitly about the healthy overlay, and knowing where they stop
  holding is the point of the fuzzer.

Everything is deterministic per ``--seed``: the script generator draws
from its own ``numpy`` generator, and each simulation is a pure function
of its config, so ``fuzz --smoke`` in CI replays the identical search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.sentinel import InvariantViolation
from repro.des.rng import RngStreams
from repro.network.topology import Topology, build_layered_mesh
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.workload.dynamics import (
    BrokerOutage,
    BrokerRecover,
    CascadeOutage,
    LinkFailure,
    LinkPartition,
    LinkRestore,
    RateBurst,
    ScenarioScript,
)
from repro.workload.registry import save_script
from repro.workload.scenarios import Scenario


@dataclass(frozen=True, slots=True)
class FuzzSpec:
    """One fuzzing campaign, fully specified (deterministic per seed)."""

    seed: int = 0
    budget: int = 12
    duration_ms: float = 120_000.0
    rate_per_min: float = 20.0
    scenario: Scenario = Scenario.SSD
    #: Strategy pair probed for ranking inversions (baseline order is
    #: whatever the frozen world says, not an assumption).
    pair: tuple[str, str] = ("eb", "fifo")
    max_interventions: int = 4
    #: Where shrunk counterexample scripts are written (None: don't).
    out_dir: str | None = "fuzz-findings"
    #: Shard count for the sharded-engine differential probe: each clean
    #: script is re-run under the broker-partitioned engine and the two
    #: serialized results must be byte-identical (0 disables the probe).
    shards: int = 2
    shard_backend: str = "inline"

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.duration_ms <= 0.0:
            raise ValueError("duration_ms must be positive")
        if self.max_interventions < 1:
            raise ValueError("max_interventions must be >= 1")
        if len(self.pair) != 2 or self.pair[0] == self.pair[1]:
            raise ValueError("pair must name two distinct strategies")
        if self.shards < 0:
            raise ValueError("shards must be >= 0 (0 disables the probe)")

    @classmethod
    def smoke(
        cls,
        seed: int = 0,
        out_dir: str | None = "fuzz-findings",
        shards: int = 2,
    ) -> "FuzzSpec":
        """The CI-sized campaign: fixed seed, small budget, short runs."""
        return cls(
            seed=seed, budget=4, duration_ms=90_000.0, rate_per_min=15.0,
            out_dir=out_dir, shards=shards,
        )


@dataclass(slots=True)
class Violation:
    """One sentinel violation, with its shrunk reproducer."""

    script: ScenarioScript
    shrunk: ScenarioScript
    error: str
    strategy: str
    replay_path: str | None = None


@dataclass(slots=True)
class Divergence:
    """A fault script under which the sharded engine's serialized result
    differs from the sequential engine's — an identity bug by definition,
    shrunk to a 1-minimal reproducer like a sentinel violation."""

    script: ScenarioScript
    shrunk: ScenarioScript
    strategy: str
    detail: str
    replay_path: str | None = None


@dataclass(slots=True)
class Inversion:
    """A fault script under which the strategy pair's ranking flips."""

    script: ScenarioScript
    winner_baseline: str
    winner_faulted: str
    baseline_values: tuple[float, float]
    faulted_values: tuple[float, float]


@dataclass(slots=True)
class FuzzReport:
    """Everything one campaign found."""

    spec: FuzzSpec
    scripts_tried: int = 0
    runs: int = 0
    violations: list[Violation] = field(default_factory=list)
    inversions: list[Inversion] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    #: Scripts whose sharded re-run came back byte-identical.
    shard_probes_identical: int = 0

    @property
    def ok(self) -> bool:
        """True when no sentinel violation and no sharded-engine
        divergence survived (inversions are findings, not failures)."""
        return not self.violations and not self.divergences


def generate_script(
    rng: np.random.Generator,
    topology: Topology,
    duration_ms: float,
    max_interventions: int = 4,
) -> ScenarioScript:
    """Draw one random fault script against a concrete topology.

    Fault times land inside the publication window (so faults bite while
    traffic flows); every hard fault gets a recovery with probability
    1/2, leaving the other half to run broken into the grace period —
    the dead-letter path only drains when a link stays down past the
    timeout.  Churn interventions are deliberately excluded: a mid-run
    leave voids the pair-conservation identity by design, and the fuzzer
    exists to prove that identity under faults.
    """
    brokers = topology.brokers
    edges = [(a, b) for a, b, _rate in topology.links()]
    items: list = []
    count = int(rng.integers(1, max_interventions + 1))
    for _ in range(count):
        at = float(rng.uniform(0.1, 0.75) * duration_ms)
        kind = int(rng.integers(0, 5))
        if kind == 0:
            a, b = edges[int(rng.integers(0, len(edges)))]
            items.append(LinkFailure(at_ms=at, a=a, b=b))
            if rng.random() < 0.5:
                back = float(rng.uniform(0.05, 0.2) * duration_ms)
                items.append(LinkRestore(at_ms=at + back, a=a, b=b))
        elif kind == 1:
            broker = brokers[int(rng.integers(0, len(brokers)))]
            items.append(BrokerOutage(at_ms=at, broker=broker))
            if rng.random() < 0.5:
                back = float(rng.uniform(0.05, 0.2) * duration_ms)
                items.append(BrokerRecover(at_ms=at + back, broker=broker))
        elif kind == 2:
            size = int(rng.integers(1, max(2, len(brokers) // 4)))
            picks = rng.choice(len(brokers), size=size, replace=False)
            group = tuple(sorted(brokers[i] for i in picks))
            heal = (
                at + float(rng.uniform(0.05, 0.2) * duration_ms)
                if rng.random() < 0.5 else None
            )
            items.append(LinkPartition(at_ms=at, group=group, heal_ms=heal))
        elif kind == 3:
            origin = brokers[int(rng.integers(0, len(brokers)))]
            items.append(CascadeOutage(
                at_ms=at,
                origin=origin,
                spread_prob=float(rng.uniform(0.3, 0.9)),
                decay=float(rng.uniform(0.3, 0.8)),
                max_depth=int(rng.integers(1, 4)),
                step_ms=float(rng.uniform(0.02, 0.08) * duration_ms),
                recover_after_ms=(
                    float(rng.uniform(0.1, 0.3) * duration_ms)
                    if rng.random() < 0.5 else None
                ),
            ))
        else:
            end = min(at + float(rng.uniform(0.1, 0.3) * duration_ms), duration_ms)
            items.append(RateBurst(
                start_ms=at, end_ms=end,
                multiplier=float(rng.uniform(1.5, 4.0)),
            ))
    return ScenarioScript(interventions=tuple(items))


def _config(
    spec: FuzzSpec, strategy: str, script: ScenarioScript, shards: int = 0
) -> SimulationConfig:
    return SimulationConfig(
        seed=spec.seed,
        scenario=spec.scenario,
        strategy=strategy,
        publishing_rate_per_min=spec.rate_per_min,
        duration_ms=spec.duration_ms,
        dynamics=script,
        sentinel=True,
        sentinel_deep=True,
        sentinel_every_ms=10_000.0,
        shards=shards,
        shard_backend=spec.shard_backend,
    )


def _probe(spec: FuzzSpec, strategy: str, script: ScenarioScript, report: FuzzReport):
    """One sentinel-armed run; the violation (or None) and the result."""
    report.runs += 1
    try:
        return None, run_simulation(_config(spec, strategy, script))
    except InvariantViolation as err:
        return err, None


def _result_bytes(result) -> bytes:
    import dataclasses
    import json

    return json.dumps(dataclasses.asdict(result), sort_keys=True).encode()


def _shard_probe(
    spec: FuzzSpec, strategy: str, script: ScenarioScript, report: FuzzReport
) -> str | None:
    """Differential: sequential fused vs sharded under this fault script.

    Returns a human-readable mismatch description, or None when the two
    serialized results are byte-identical.  A sentinel violation raised
    only by the sharded run counts as a divergence too (the sequential
    leg already passed when this is called)."""
    report.runs += 1
    sequential = run_simulation(_config(spec, strategy, script))
    report.runs += 1
    try:
        sharded = run_simulation(
            _config(spec, strategy, script, shards=spec.shards)
        )
    except InvariantViolation as err:
        return f"sharded run violated the sentinel: {err}"
    if _result_bytes(sequential) != _result_bytes(sharded):
        deltas = [
            f"{name}: {getattr(sequential, name)} != {getattr(sharded, name)}"
            for name in ("published", "deliveries_valid", "deliveries_late",
                         "earning", "delivery_rate")
            if getattr(sequential, name, None) != getattr(sharded, name, None)
        ]
        return ("serialized results differ ("
                + ("; ".join(deltas) if deltas else "field-level tie; "
                   "divergence is in the remaining serialized fields") + ")")
    return None


def shrink_divergence(
    spec: FuzzSpec,
    strategy: str,
    script: ScenarioScript,
    report: FuzzReport,
) -> ScenarioScript:
    """Greedy 1-minimal shrink of a sharded-engine divergence, mirroring
    :func:`shrink_script` with "still diverges" as the predicate."""
    items = list(script.interventions)
    changed = True
    while changed and len(items) > 1:
        changed = False
        for i in range(len(items)):
            candidate = ScenarioScript(interventions=tuple(items[:i] + items[i + 1:]))
            try:
                detail = _shard_probe(spec, strategy, candidate, report)
            except InvariantViolation:
                continue  # sequential leg broke: not the divergence we chase
            if detail is not None:
                items = list(candidate.interventions)
                changed = True
                break
    return ScenarioScript(interventions=tuple(items))


def shrink_script(
    spec: FuzzSpec,
    strategy: str,
    script: ScenarioScript,
    report: FuzzReport,
) -> ScenarioScript:
    """Greedy 1-minimal shrink: drop interventions that aren't needed.

    Repeatedly tries removing each intervention; a removal is kept when
    the remaining script still violates.  Terminates at a script where
    every single removal makes the violation disappear (1-minimal) —
    small enough to read, cheap enough for CI (O(n²) runs, n ≤ a few).
    """
    items = list(script.interventions)
    changed = True
    while changed and len(items) > 1:
        changed = False
        for i in range(len(items)):
            candidate = ScenarioScript(interventions=tuple(items[:i] + items[i + 1:]))
            err, _ = _probe(spec, strategy, candidate, report)
            if err is not None:
                items = list(candidate.interventions)
                changed = True
                break
    return ScenarioScript(interventions=tuple(items))


def _metric(result) -> float:
    """The ranking metric: earning for SSD, delivery rate otherwise."""
    return result.earning if result.scenario == "ssd" else result.delivery_rate


def run_fuzz(spec: FuzzSpec) -> FuzzReport:
    """Run one campaign: generate, probe, shrink, compare, report."""
    report = FuzzReport(spec=spec)
    rng = np.random.default_rng(spec.seed + 0xF0_55)
    # The exact topology every run at this seed will build — scripts must
    # name real brokers and links.
    topology = build_layered_mesh(RngStreams(spec.seed).get("topology"))

    # Frozen-world baseline for the inversion probe (sentinel armed too:
    # the empty script must be violation-free or everything else is moot).
    baseline: dict[str, float] = {}
    empty = ScenarioScript()
    for strategy in spec.pair:
        err, result = _probe(spec, strategy, empty, report)
        if err is not None:
            report.violations.append(Violation(
                script=empty, shrunk=empty, error=str(err), strategy=strategy,
            ))
            return report
        baseline[strategy] = _metric(result)
    base_winner = max(spec.pair, key=baseline.__getitem__)

    out_dir = Path(spec.out_dir) if spec.out_dir else None
    for n in range(spec.budget):
        script = generate_script(
            rng, topology, spec.duration_ms, spec.max_interventions
        )
        report.scripts_tried += 1
        faulted: dict[str, float] = {}
        violated = False
        for strategy in spec.pair:
            err, result = _probe(spec, strategy, script, report)
            if err is not None:
                shrunk = shrink_script(spec, strategy, script, report)
                err2, _ = _probe(spec, strategy, shrunk, report)
                finding = Violation(
                    script=script,
                    shrunk=shrunk,
                    error=str(err2 if err2 is not None else err),
                    strategy=strategy,
                )
                if out_dir is not None:
                    out_dir.mkdir(parents=True, exist_ok=True)
                    path = save_script(
                        out_dir / f"violation-{spec.seed}-{n}-{strategy}.json",
                        shrunk,
                        seed=spec.seed,
                        strategy=strategy,
                        scenario=spec.scenario.value,
                        duration_ms=spec.duration_ms,
                        rate_per_min=spec.rate_per_min,
                        error=finding.error,
                    )
                    finding.replay_path = str(path)
                report.violations.append(finding)
                violated = True
                break
            faulted[strategy] = _metric(result)
        if violated:
            continue
        if spec.shards > 0:
            detail = _shard_probe(spec, spec.pair[0], script, report)
            if detail is not None:
                shrunk = shrink_divergence(spec, spec.pair[0], script, report)
                detail2 = _shard_probe(spec, spec.pair[0], shrunk, report)
                finding = Divergence(
                    script=script,
                    shrunk=shrunk,
                    strategy=spec.pair[0],
                    detail=detail2 if detail2 is not None else detail,
                )
                if out_dir is not None:
                    out_dir.mkdir(parents=True, exist_ok=True)
                    path = save_script(
                        out_dir / f"divergence-{spec.seed}-{n}-{spec.pair[0]}.json",
                        shrunk,
                        seed=spec.seed,
                        strategy=spec.pair[0],
                        scenario=spec.scenario.value,
                        duration_ms=spec.duration_ms,
                        rate_per_min=spec.rate_per_min,
                        error=f"sharded-engine divergence: {finding.detail}",
                    )
                    finding.replay_path = str(path)
                report.divergences.append(finding)
                continue
            report.shard_probes_identical += 1
        fault_winner = max(spec.pair, key=faulted.__getitem__)
        if fault_winner != base_winner and faulted[fault_winner] > faulted[base_winner]:
            report.inversions.append(Inversion(
                script=script,
                winner_baseline=base_winner,
                winner_faulted=fault_winner,
                baseline_values=(baseline[spec.pair[0]], baseline[spec.pair[1]]),
                faulted_values=(faulted[spec.pair[0]], faulted[spec.pair[1]]),
            ))
    return report


def _describe(script: ScenarioScript) -> str:
    names = [type(i).__name__ for i in script.interventions]
    return ", ".join(names) if names else "(empty)"


def format_report(report: FuzzReport) -> str:
    """Human-readable campaign summary for the CLI."""
    spec = report.spec
    lines = [
        f"fuzz campaign: seed={spec.seed} budget={spec.budget} "
        f"scenario={spec.scenario.value} pair={spec.pair[0]}/{spec.pair[1]}",
        f"scripts tried     : {report.scripts_tried}",
        f"simulations run   : {report.runs}",
        f"sentinel verdict  : "
        + ("all invariants held" if report.ok
           else f"{len(report.violations)} VIOLATION(S)"),
    ]
    for v in report.violations:
        lines.append(f"  VIOLATION [{v.strategy}] {_describe(v.shrunk)}")
        lines.append(f"    {v.error}")
        if v.replay_path:
            lines.append(f"    replay: {v.replay_path}")
    if spec.shards > 0:
        lines.append(
            f"shard differential: "
            + (f"{report.shard_probes_identical} script(s) byte-identical at "
               f"{spec.shards} shards ({spec.shard_backend})"
               if not report.divergences
               else f"{len(report.divergences)} DIVERGENCE(S)")
        )
        for d in report.divergences:
            lines.append(f"  DIVERGENCE [{d.strategy}] {_describe(d.shrunk)}")
            lines.append(f"    {d.detail}")
            if d.replay_path:
                lines.append(f"    replay: {d.replay_path}")
    lines.append(f"ranking inversions: {len(report.inversions)}")
    for inv in report.inversions:
        a, b = report.spec.pair
        lines.append(
            f"  {inv.winner_baseline} -> {inv.winner_faulted} under "
            f"[{_describe(inv.script)}] "
            f"(baseline {a}={inv.baseline_values[0]:.4g} {b}={inv.baseline_values[1]:.4g}; "
            f"faulted {a}={inv.faulted_values[0]:.4g} {b}={inv.faulted_values[1]:.4g})"
        )
    return "\n".join(lines)
