"""The dynamics experiment family: strategy trajectories under a script.

The paper's figures compare strategies on one aggregate number per run;
this harness compares them on *time series* under a scripted scenario
(diurnal load, a flash crowd, a degraded backbone link...).  All five
strategies run against the identical world — same topology, same
subscriptions, same piecewise publication schedule, same intervention
times — and the windowed metric of choice becomes one series per
strategy, rendered with the ordinary figure tooling (ascii chart /
series table).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.analysis.timeseries import MetricsTimeSeries, QueueDepthSampler, windowed_metrics
from repro.core.checkpoint import latest_checkpoint
from repro.des.rng import RngStreams
from repro.experiments.common import FigureResult
from repro.network.topology import build_layered_mesh
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    CheckpointPolicy,
    build_system,
    make_sentinel,
    resume_run,
    run_checkpointed,
    run_to_horizon,
    schedule_dynamics,
    schedule_workload,
)
from repro.workload.dynamics import PRESETS
from repro.workload.scenarios import Scenario

#: The five disciplines, in the paper's order.
ALL_STRATEGIES: tuple[str, ...] = ("fifo", "rl", "eb", "pc", "ebpc")

#: metric name -> (y axis label, series extractor).
METRICS: dict[str, tuple[str, Callable[[MetricsTimeSeries], np.ndarray]]] = {
    "delivery-rate": ("delivery rate per window", lambda ts: ts.delivery_rate),
    "earning": ("earning per window", lambda ts: ts.earning),
    "queue-depth": ("mean queued entries", lambda ts: ts.queue_depth_mean),
    "latency": ("mean delivery latency (ms)", lambda ts: ts.mean_latency_ms),
}


def run_dynamics_point(
    config: SimulationConfig,
    window_ms: float,
    sample_queue: bool = True,
    checkpoint: CheckpointPolicy | None = None,
    resume: Path | str | None = None,
) -> MetricsTimeSeries:
    """One instrumented run: build, script, run, bucket.

    Windows cover the full horizon (publication window + grace), so
    deliveries resolving in the grace period fold into the totals exactly
    like the aggregate metrics count them.  The queue-depth sampler is
    checkpointed alongside the system (its pending sampling events and
    accumulated samples are part of the run's state), so a resumed run
    buckets exactly what the uninterrupted one would.
    """
    if resume is not None:
        system, config, extras = resume_run(resume, config=config)
        sampler = extras.get("queue_sampler")
    else:
        system = build_system(config)
        schedule_workload(system, config)
        schedule_dynamics(system, config)
        sampler = (
            QueueDepthSampler(system, every_ms=window_ms / 4.0, horizon_ms=config.horizon_ms)
            if sample_queue
            else None
        )
    sentinel = make_sentinel(system, config)
    if checkpoint is not None:
        run_checkpointed(
            system, config, checkpoint,
            extras={"queue_sampler": sampler}, sentinel=sentinel,
        )
        if sentinel is not None:
            sentinel.final()
    else:
        run_to_horizon(system, config, sentinel)
    return windowed_metrics(
        system, window_ms, horizon_ms=config.horizon_ms, queue_sampler=sampler
    )


def run_dynamics_comparison(
    preset: str,
    scenario: Scenario = Scenario.SSD,
    minutes: float = 10.0,
    rate_per_min: float = 10.0,
    seed: int = 0,
    window_s: float = 60.0,
    metric: str = "delivery-rate",
    strategies: Sequence[str] = ALL_STRATEGIES,
    measurement: str = "oracle",
    link_estimator: str = "welford",
    sentinel: bool = False,
    checkpoint: CheckpointPolicy | None = None,
    resume: Path | str | None = None,
) -> FigureResult:
    """All strategies under one preset script, as windowed series.

    The preset is compiled against the same topology every run sees
    (identical seed → identical wiring), so e.g. ``degrade-worst-link``
    names the same link in every strategy's world.  With ``checkpoint``
    each strategy snapshots under its own subdirectory of the policy
    root; ``resume`` points back at that root and picks up whichever
    strategy was in flight (finished strategies simply re-run).
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
    from repro.network.measurement import MeasurementMode

    duration_ms = minutes * 60_000.0
    window_ms = window_s * 1_000.0
    # A throwaway build of the topology stream yields the exact overlay
    # every run will construct — used only to parameterise the preset.
    topology = build_layered_mesh(RngStreams(seed).get("topology"))
    script = PRESETS[preset](topology, duration_ms)

    y_label, extract = METRICS[metric]
    result = FigureResult(
        figure_id=f"dynamics-{preset}",
        title=f"Dynamics [{preset}]: {metric} over time ({scenario.value})",
        x_label="time (minutes)",
        y_label=y_label,
        x_values=[],
    )
    for strategy in strategies:
        config = SimulationConfig(
            seed=seed,
            scenario=scenario,
            strategy=strategy,
            publishing_rate_per_min=rate_per_min,
            duration_ms=duration_ms,
            dynamics=script,
            measurement_mode=MeasurementMode(measurement),
            link_estimator=link_estimator,
            sentinel=sentinel,
        )
        sub_ck = None
        if checkpoint is not None:
            sub_ck = CheckpointPolicy(
                Path(checkpoint.directory) / config.strategy_label(),
                checkpoint.every_ms,
                checkpoint.keep,
            )
        sub_resume = None
        if resume is not None:
            cand = Path(resume) / config.strategy_label()
            if latest_checkpoint(cand) is not None:
                sub_resume = cand
        ts = run_dynamics_point(
            config, window_ms,
            sample_queue=metric == "queue-depth",
            checkpoint=sub_ck, resume=sub_resume,
        )
        if not result.x_values:
            result.x_values = [t / 60_000.0 for t in ts.centers_ms.tolist()]
        result.series[config.strategy_label()] = extract(ts).tolist()
    result.notes.append(
        f"script: {len(script.interventions)} intervention(s); "
        f"window {window_s:g}s; rate {rate_per_min:g}/min/publisher"
    )
    return result
