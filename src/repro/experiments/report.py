"""ASCII rendering of figure results."""

from __future__ import annotations

from repro.experiments.common import FigureResult


def format_series_table(result: FigureResult, precision: int = 4) -> str:
    """One aligned table: x column plus one column per series."""
    labels = list(result.series)
    header = [result.x_label] + labels
    rows: list[list[str]] = [header]
    for i, x in enumerate(result.x_values):
        row = [f"{x:g}"]
        for label in labels:
            value = result.series[label][i]
            row.append(f"{value:.{precision}g}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [result.title, ""]
    for j, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_comparison(
    label_a: str, value_a: float, label_b: str, value_b: float, what: str
) -> str:
    """One-line ratio summary, e.g. 'EB earns 4.8x FIFO at rate 15'."""
    if value_b == 0:
        ratio = float("inf")
    else:
        ratio = value_a / value_b
    return f"{label_a} {what} = {value_a:.4g}, {label_b} = {value_b:.4g} (ratio {ratio:.2f}x)"
