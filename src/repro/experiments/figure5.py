"""Figure 5: the SSD scenario across publishing rates.

Panel (a): total earning — EB and PC keep climbing with load while FIFO
and RL peak and then *fall* (congestion lets low-value/expired messages
crowd out deliverable ones); EB earns the most (paper: ≈5× FIFO and ≈10×
RL at rate 15).

Panel (b): message number — EB/PC carry slightly more traffic than FIFO
(paper: +23 % at rate 15) and more than RL (+64 %), the price of actually
delivering more messages end-to-end.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import FIGURE56_RATES, FigureResult, ScaleSpec, paper_base_config
from repro.sim.parallel import make_point_runner
from repro.sim.sweep import failure_notes, sweep_publishing_rate
from repro.workload.scenarios import Scenario

STRATEGIES: tuple[str, ...] = ("eb", "pc", "fifo", "rl")


def run_both_panels(
    scale: ScaleSpec | None = None,
    rates: Sequence[float] = FIGURE56_RATES,
    seeds: Sequence[int] | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> tuple[FigureResult, FigureResult]:
    """Run the SSD rate sweep once; derive both panels from it."""
    scale = scale or ScaleSpec()
    sweep = sweep_publishing_rate(
        paper_base_config(Scenario.SSD, scale), rates, STRATEGIES, seeds=seeds,
        point_runner=make_point_runner(jobs, cache_dir),
    )
    notes = [f"scale={scale.scale:g} of the paper's 2-hour period, seed={scale.seed}"]
    notes += failure_notes(sweep)
    panel_a = FigureResult(
        figure_id="fig5a",
        title="Fig 5(a) — SSD: total earning vs publishing rate",
        x_label="publishing rate (msgs/min/publisher)",
        y_label="total earning",
        x_values=list(rates),
        series={s: sweep.metric(s, lambda r: r.earning) for s in STRATEGIES},
        notes=list(notes),
    )
    panel_b = FigureResult(
        figure_id="fig5b",
        title="Fig 5(b) — SSD: message number vs publishing rate",
        x_label="publishing rate (msgs/min/publisher)",
        y_label="message number (broker receptions)",
        x_values=list(rates),
        series={s: sweep.metric(s, lambda r: float(r.message_number)) for s in STRATEGIES},
        notes=list(notes),
    )
    return panel_a, panel_b


def run_panel_a(scale: ScaleSpec | None = None, **kw) -> FigureResult:
    return run_both_panels(scale, **kw)[0]


def run_panel_b(scale: ScaleSpec | None = None, **kw) -> FigureResult:
    return run_both_panels(scale, **kw)[1]
