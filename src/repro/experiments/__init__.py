"""Reproduction harnesses for every table and figure in the paper.

One module per artefact:

========  =====================================================  ==========================
artefact  content                                                module
========  =====================================================  ==========================
Fig 4(a)  SSD total earning vs EB weight r (EB/PC/EBPC)          :mod:`~repro.experiments.figure4`
Fig 4(b)  PSD delivery rate vs EB weight r                       :mod:`~repro.experiments.figure4`
Fig 5(a)  SSD total earning vs publishing rate (4 strategies)    :mod:`~repro.experiments.figure5`
Fig 5(b)  SSD message number vs publishing rate                  :mod:`~repro.experiments.figure5`
Fig 6(a)  PSD delivery rate vs publishing rate                   :mod:`~repro.experiments.figure6`
Fig 6(b)  PSD message number vs publishing rate                  :mod:`~repro.experiments.figure6`
Table 1   related-work taxonomy (static, rendered for record)    :mod:`~repro.experiments.table1`
claims    headline shape checks (who wins, by what factor)       :mod:`~repro.experiments.claims`
========  =====================================================  ==========================

Each module exposes ``run(scale=...) -> FigureResult`` and the CLI prints
the series as aligned tables.  ``scale`` shrinks the simulated test period
(1.0 = the paper's 2 hours) so CI-sized runs stay fast; shapes are stable
from ``scale≈0.05`` upward.
"""

from repro.experiments.common import FigureResult, ScaleSpec, paper_base_config
from repro.experiments.report import format_series_table

__all__ = [
    "FigureResult",
    "ScaleSpec",
    "paper_base_config",
    "format_series_table",
]
