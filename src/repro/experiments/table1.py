"""Table 1: taxonomy of delay-bound mechanisms (Section 2).

Not an experiment — a static classification of representative related
work by protocol layer × mechanism, with the paper's own position
(overlay layer, priority control).  Rendered so the reproduction record
covers every table in the paper.
"""

from __future__ import annotations

TABLE1_ROWS: list[tuple[str, str, str, str]] = [
    # (mechanism, MAC, IP, Overlay)
    ("Resource reservation", "—", "IntServ/RSVP [4]", "QRON [5]"),
    ("Priority control", "IEEE 802.11e [6]", "DiffServ [7]", "OverQoS [8]"),
]

PAPER_POSITION = ("Priority control", "Overlay")


def render() -> str:
    """Aligned-text rendering of Table 1."""
    header = ("", "MAC", "IP", "Overlay")
    rows = [header] + [tuple(r) for r in TABLE1_ROWS]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = ["Table 1: representative works on delay bound"]
    for j, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * widths[i] for i in range(4)))
    lines.append("")
    lines.append(
        f"This work: {PAPER_POSITION[1]} layer, {PAPER_POSITION[0].lower()} mechanism "
        "(scheduling on the distribution parameters of measured bandwidth)."
    )
    return "\n".join(lines)
