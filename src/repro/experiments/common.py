"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.config import PAPER_DURATION_MS, SimulationConfig
from repro.workload.scenarios import Scenario

#: Publishing rates on the x axis of Figures 5 and 6.  The paper's axis
#: runs 0..15; rate 0 publishes nothing, so the first sampled point is 1.
FIGURE56_RATES: tuple[float, ...] = (1.0, 3.0, 6.0, 9.0, 12.0, 15.0)

#: EB-weight grid of Figure 4 (0 %, 10 %, ..., 100 %).
FIGURE4_R_VALUES: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass(frozen=True, slots=True)
class ScaleSpec:
    """How much of the paper's 2-hour test period to simulate.

    ``scale=1.0`` is the full evaluation; smaller values shrink the
    publication window proportionally (the grace window is unchanged so
    late messages still resolve).  Metrics that are totals (earning,
    message number) shrink roughly linearly; rates are scale-free.
    """

    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")

    @property
    def duration_ms(self) -> float:
        return PAPER_DURATION_MS * self.scale


def paper_base_config(scenario: Scenario, scale: ScaleSpec | None = None) -> SimulationConfig:
    """The ICPP'06 setup at the requested scale."""
    scale = scale or ScaleSpec()
    return SimulationConfig(
        seed=scale.seed,
        scenario=scenario,
        publishing_rate_per_min=10.0,
        duration_ms=scale.duration_ms,
    )


@dataclass
class FigureResult:
    """A rendered experiment: x axis plus named series of y values."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: list[float]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def winner_at(self, x: float) -> str:
        """Series with the highest y at the given x (shape checks)."""
        i = self.x_values.index(x)
        return max(self.series, key=lambda label: self.series[label][i])
