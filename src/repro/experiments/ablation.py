"""Programmatic ablation studies (DESIGN.md Section 5).

Each study perturbs one design knob of the EB pipeline on a congested PSD
workload and reports the standard metrics as a :class:`FigureResult`-style
table, so the same renderers (tables, ASCII charts) apply.  The benches in
``benchmarks/bench_ablation.py`` run these with shape assertions; the CLI
exposes them as ``python -m repro ablate <study>``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.pruning import PruningPolicy
from repro.experiments.common import FigureResult, ScaleSpec
from repro.network.measurement import MeasurementMode
from repro.sim.config import PAPER_DURATION_MS, SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.workload.generator import ArrivalProcess
from repro.workload.scenarios import Scenario


def _base(scale: ScaleSpec) -> SimulationConfig:
    return SimulationConfig(
        seed=scale.seed,
        scenario=Scenario.PSD,
        strategy="eb",
        publishing_rate_per_min=12.0,
        duration_ms=PAPER_DURATION_MS * scale.scale,
    )


def _study(
    study_id: str,
    title: str,
    scale: ScaleSpec,
    points: list[tuple[str, SimulationConfig]],
) -> FigureResult:
    """Run labelled config points and tabulate the three core metrics."""
    results: list[tuple[str, SimulationResult]] = [
        (label, run_simulation(cfg)) for label, cfg in points
    ]
    return FigureResult(
        figure_id=study_id,
        title=title,
        x_label="variant",
        y_label="metric",
        x_values=list(range(len(results))),
        series={
            "delivery_rate": [r.delivery_rate for _, r in results],
            "message_number": [float(r.message_number) for _, r in results],
            "pruned": [float(r.pruned) for _, r in results],
        },
        notes=[f"variants: {', '.join(label for label, _ in results)}",
               f"scale={scale.scale:g}, seed={scale.seed}, EB on congested PSD (rate 12)"],
    )


def epsilon_study(scale: ScaleSpec) -> FigureResult:
    """Invalid-message detection: off / expiry-only / paper ε / aggressive."""
    base = _base(scale)
    return _study(
        "ablate-epsilon",
        "Ablation — pruning rule (Eq. 11)",
        scale,
        [
            ("off", base.replace(pruning_override=PruningPolicy.NONE)),
            ("expired-only", base.replace(pruning_override=PruningPolicy.EXPIRED)),
            ("paper-5e-4", base),
            ("eps-0.05", base.replace(epsilon=0.05)),
        ],
    )


def slack_study(scale: ScaleSpec) -> FigureResult:
    """Downstream scheduling allowance inside fdl (paper assumes 0)."""
    base = _base(scale)
    return _study(
        "ablate-slack",
        "Ablation — per-hop scheduling slack in fdl",
        scale,
        [
            ("paper-0ms", base),
            ("500ms", base.replace(scheduling_slack_per_hop_ms=500.0)),
            ("2000ms", base.replace(scheduling_slack_per_hop_ms=2_000.0)),
        ],
    )


def measurement_study(scale: ScaleSpec) -> FigureResult:
    """Oracle vs online-estimated link parameters."""
    base = _base(scale)
    return _study(
        "ablate-measurement",
        "Ablation — link parameter source",
        scale,
        [
            ("oracle", base),
            ("estimated", base.replace(measurement_mode=MeasurementMode.ESTIMATED)),
        ],
    )


def routing_study(scale: ScaleSpec) -> FigureResult:
    """Single-path (paper) vs DCP-style multi-path."""
    base = _base(scale)
    return _study(
        "ablate-routing",
        "Ablation — single-path vs multi-path routing",
        scale,
        [
            ("single", base),
            ("two-paths", base.replace(routing_paths=2)),
        ],
    )


def arrival_study(scale: ScaleSpec) -> FigureResult:
    """Arrival-process sensitivity."""
    base = _base(scale)
    return _study(
        "ablate-arrival",
        "Ablation — publication arrival process",
        scale,
        [
            ("poisson", base),
            ("fixed", base.replace(arrival=ArrivalProcess.FIXED)),
            ("uniform", base.replace(arrival=ArrivalProcess.UNIFORM)),
        ],
    )


STUDIES: dict[str, Callable[[ScaleSpec], FigureResult]] = {
    "epsilon": epsilon_study,
    "slack": slack_study,
    "measurement": measurement_study,
    "routing": routing_study,
    "arrival": arrival_study,
}
