"""Windowed time-series metrics over the columnar delivery spine.

The paper reports one number per 2-hour run; under a dynamics script
(load bursts, link degradation, churn) the *trajectory* is the result.
This module buckets the run into fixed windows and computes, as
**streaming per-chunk reductions** over the system's chunked column
stores — no per-delivery Python, no whole-log gather, O(chunk +
settled-pair keys) memory even when the logs are spilled to disk (the
cross-chunk first-arrival settlement keeps one int64 per pair, ~4x
leaner than the 5-column rows it replaces holding) —

* **published / interested** per window (by publish time, from the
  system's publication log),
* **valid / late deliveries, earning, latency sum** per window (by
  arrival time, from the shared :class:`~repro.pubsub.client.DeliveryLog`
  with the metrics layer's first-arrival-wins pair settlement replayed
  as one ``np.unique`` pass), and
* optionally **queue depth** per window (mean/max of a
  :class:`QueueDepthSampler`'s probes).

Every series *folds back* to the run's aggregate metrics: counts sum
exactly, ``earning`` sums exactly (prices are settled per delivery, the
same contributions the metrics ledger logs), and
``sum(valid) / sum(interested)`` is exactly the aggregate delivery rate.
The integration tests assert those folds against both metrics backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.chunked import sorted_contains
from repro.core.folds import fold_sum_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True)
class MetricsTimeSeries:
    """Per-window metric columns over ``[0, horizon)``.

    ``edges`` has ``windows + 1`` entries; window ``w`` covers
    ``[edges[w], edges[w+1])`` except the last, which also absorbs events
    landing exactly on the horizon (the simulator's closed interval).
    """

    window_ms: float
    edges: np.ndarray
    published: np.ndarray
    interested: np.ndarray
    deliveries_valid: np.ndarray
    deliveries_late: np.ndarray
    earning: np.ndarray
    latency_sum_ms: np.ndarray
    queue_depth_mean: np.ndarray | None = None
    queue_depth_max: np.ndarray | None = None

    @property
    def windows(self) -> int:
        return int(self.published.shape[0])

    @property
    def centers_ms(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def delivery_rate(self) -> np.ndarray:
        """Windowed Eq. 1: valid deliveries arriving in the window over
        interested population published in it (0 where nothing was
        publishable, matching the aggregate convention).

        Numerator and denominator are bucketed on different clocks
        (arrival vs publish), which is what makes the fold exact — but it
        also means a single window can transiently exceed 1.0 when a
        backlog of earlier messages drains into it."""
        out = np.zeros(self.windows)
        np.divide(
            self.deliveries_valid, self.interested,
            out=out, where=self.interested > 0,
        )
        return out

    @property
    def mean_latency_ms(self) -> np.ndarray:
        out = np.zeros(self.windows)
        np.divide(
            self.latency_sum_ms, self.deliveries_valid,
            out=out, where=self.deliveries_valid > 0,
        )
        return out

    def totals(self) -> dict[str, float]:
        """The aggregate folds (what the run-level metrics report)."""
        interested = int(self.interested.sum())
        valid = int(self.deliveries_valid.sum())
        return {
            "published": int(self.published.sum()),
            "total_interested": interested,
            "deliveries_valid": valid,
            "deliveries_late": int(self.deliveries_late.sum()),
            # Sequential fold, not .sum(): deliveries land in time order,
            # so folding window subtotals left-to-right is the same
            # grouped chain the ledger's arrival-order fold performs.
            "earning": fold_sum_array(self.earning),
            "delivery_rate": valid / interested if interested else 0.0,
        }


def _window_index(times: np.ndarray, window_ms: float, windows: int) -> np.ndarray:
    idx = (times / window_ms).astype(np.int64)
    # Events exactly at the horizon belong to the last window (run(until)
    # executes them); clip also tolerates float edge jitter.  Events
    # *beyond* the horizon must be masked out by the caller first — clip
    # would silently fold them into the last window.
    return np.clip(idx, 0, windows - 1)


class _SettledKeys:
    """The cross-chunk pair-settlement state: a sorted-set of int keys
    with amortised consolidation.

    A consolidated sorted array plus a short list of sorted per-chunk
    batches; novelty probes binary-search all of them, and batches fold
    into the big array only when they rival it in size (or pile up) —
    doubling-style, so the total sort work over a run is O(P log P) in
    the settled-pair count instead of one full re-sort per chunk.
    """

    __slots__ = ("_seen", "_pending", "_pending_rows")

    _MAX_PENDING = 16

    def __init__(self) -> None:
        self._seen = np.empty(0, dtype=np.int64)
        self._pending: list[np.ndarray] = []
        self._pending_rows = 0

    def novel(self, uniq: np.ndarray) -> np.ndarray:
        """Mask of ``uniq`` (sorted unique) keys not settled yet."""
        mask = ~sorted_contains(self._seen, uniq)
        for batch in self._pending:
            mask &= ~sorted_contains(batch, uniq)
        return mask

    def add(self, fresh: np.ndarray) -> None:
        """Record sorted keys known to be disjoint from the state."""
        if not fresh.shape[0]:
            return
        self._pending.append(fresh)
        self._pending_rows += fresh.shape[0]
        if (
            len(self._pending) >= self._MAX_PENDING
            or self._pending_rows >= max(self._seen.shape[0], 1)
        ):
            self._seen = np.concatenate([self._seen, *self._pending])
            self._seen.sort(kind="mergesort")  # disjoint parts: plain sort
            self._pending.clear()
            self._pending_rows = 0


def windowed_metrics(
    system: "PubSubSystem",
    window_ms: float,
    horizon_ms: float | None = None,
    queue_sampler: "QueueDepthSampler | None" = None,
) -> MetricsTimeSeries:
    """Bucket a finished system's run into ``window_ms`` windows.

    ``horizon_ms`` defaults to the simulator clock (the run's end).  Pair
    settlement mirrors the metrics layer exactly: the first arrival of
    each (message, endpoint) pair decides valid/late, later duplicates
    (multi-path routing) are ignored.  Events strictly beyond the horizon
    are **excluded** (not clipped into the last window), so a truncated
    horizon folds to the truncated aggregates.

    The whole computation is a streaming reduction over the chunked
    publication and delivery logs — per-chunk partial bincounts and
    ``np.add.at`` into carried accumulators, with cross-chunk pair
    settlement as a sorted-key merge — so peak memory is O(chunk +
    settled pairs) even when the logs live on disk.  Counts and earnings
    are exact in any chunking (integer-valued sums); carried ``add.at``
    accumulation reproduces the whole-array bincount's addition order,
    bit for bit, within each chunking.
    """
    if window_ms <= 0.0:
        raise ValueError("window_ms must be positive")
    horizon = float(horizon_ms if horizon_ms is not None else system.sim.now)
    if horizon <= 0.0:
        raise ValueError("horizon must be positive (has the run started?)")
    windows = max(1, int(np.ceil(horizon / window_ms)))
    edges = np.minimum(np.arange(windows + 1, dtype=np.float64) * window_ms, horizon)

    published = np.zeros(windows, dtype=np.int64)
    interested_f = np.zeros(windows, dtype=np.float64)
    for pub_time, interested in system.publication_chunks():
        inside = pub_time <= horizon
        if not inside.all():
            pub_time, interested = pub_time[inside], interested[inside]
        if not pub_time.shape[0]:
            continue
        w = _window_index(pub_time, window_ms, windows)
        published += np.bincount(w, minlength=windows)
        np.add.at(interested_f, w, interested)
    interested_w = interested_f.astype(np.int64)

    valid_w = np.zeros(windows, dtype=np.int64)
    late_w = np.zeros(windows, dtype=np.int64)
    earning_w = np.zeros(windows, dtype=np.float64)
    latency_w = np.zeros(windows, dtype=np.float64)
    prices = system.endpoint_prices()
    endpoints = np.int64(max(system.delivery_log.endpoint_count, 1))
    # Settled (message, endpoint) keys — the cross-chunk dedup state.
    # First-arrival-wins: the log is append-ordered by simulated time,
    # so the first occurrence of a key (earliest chunk, then np.unique's
    # first index within it) is the arrival the metrics layer settled.
    seen = _SettledKeys()
    for sub, _msg, time, latency, valid in system.delivery_log.iter_chunks():
        if not sub.shape[0]:
            continue
        keys = _msg * endpoints + sub
        uniq, first = np.unique(keys, return_index=True)
        novel = seen.novel(uniq)
        if not novel.all():
            uniq, first = uniq[novel], first[novel]
        seen.add(uniq)
        # Settlement happens wherever the first arrival lands; only the
        # bucketing is horizon-masked, so a truncated horizon excludes
        # out-of-horizon events instead of corrupting the last window.
        inside = time[first] <= horizon
        first = first[inside]
        if not first.shape[0]:
            continue
        s, t, lat, v = sub[first], time[first], latency[first], valid[first]
        w = _window_index(t, window_ms, windows)
        valid_w += np.bincount(w[v], minlength=windows)
        late_w += np.bincount(w[~v], minlength=windows)
        np.add.at(earning_w, w[v], prices[s[v]])
        np.add.at(latency_w, w[v], lat[v])

    depth_mean = depth_max = None
    if queue_sampler is not None:
        depth_mean, depth_max = queue_sampler.bucketed(window_ms, windows, horizon_ms=horizon)

    return MetricsTimeSeries(
        window_ms=window_ms,
        edges=edges,
        published=published,
        interested=interested_w,
        deliveries_valid=valid_w,
        deliveries_late=late_w,
        earning=earning_w,
        latency_sum_ms=latency_w,
        queue_depth_mean=depth_mean,
        queue_depth_max=depth_max,
    )


class QueueDepthSampler:
    """Periodic probe of the system's total queued entries.

    Attach *before* running: the sampler schedules itself every
    ``every_ms`` from t=0 to the horizon.  Probes only read state — they
    never touch RNG streams or queues, so an instrumented run makes
    exactly the same decisions as a bare one (only the simulator's
    executed-event count grows).
    """

    def __init__(self, system: "PubSubSystem", every_ms: float, horizon_ms: float) -> None:
        if every_ms <= 0.0:
            raise ValueError("every_ms must be positive")
        if horizon_ms <= 0.0:
            raise ValueError("horizon_ms must be positive")
        self.system = system
        self.every_ms = every_ms
        self.horizon_ms = horizon_ms
        self.times: list[float] = []
        self.depths: list[int] = []
        system.sim.schedule_at(0.0, self._sample)

    def _sample(self) -> None:
        sim = self.system.sim
        self.times.append(sim.now)
        self.depths.append(self.system.total_queued())
        if sim.now + self.every_ms <= self.horizon_ms:
            sim.schedule(self.every_ms, self._sample)

    def bucketed(
        self, window_ms: float, windows: int, horizon_ms: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(mean, max) depth per window; windows without probes hold 0.

        Probes beyond ``horizon_ms`` (when given) are excluded rather
        than clipped into the last window."""
        mean = np.zeros(windows)
        mx = np.zeros(windows)
        if not self.times:
            return mean, mx
        times = np.asarray(self.times)
        depths = np.asarray(self.depths, dtype=np.float64)
        if horizon_ms is not None:
            inside = times <= horizon_ms
            times, depths = times[inside], depths[inside]
            if not times.shape[0]:
                return mean, mx
        w = _window_index(times, window_ms, windows)
        counts = np.bincount(w, minlength=windows)
        sums = np.bincount(w, weights=depths, minlength=windows)
        np.divide(sums, counts, out=mean, where=counts > 0)
        np.maximum.at(mx, w, depths)
        return mean, mx
