"""Link utilisation and capacity analysis.

The overlay saturates when some link's offered load (messages routed
through it × mean transmission time) exceeds the wall clock.  In the
paper's layered mesh the first-layer fan-out links saturate first, which
is why FIFO/RL earnings peak and fall in Fig. 5(a): past the knee, queues
grow without bound and most messages expire in transit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True, slots=True)
class LinkUtilisation:
    """One link direction's share of the simulated period spent busy."""

    src: str
    dst: str
    transmissions: int
    kilobytes: float
    utilisation: float


def utilisation_report(system: PubSubSystem, elapsed_ms: float) -> list[LinkUtilisation]:
    """Per-direction utilisation, busiest first.

    Only directions that carried at least one message appear.
    """
    if elapsed_ms <= 0.0:
        raise ValueError("elapsed_ms must be positive")
    rows: list[LinkUtilisation] = []
    for broker in system.brokers.values():
        for queue in broker.queues.values():
            stats = queue.link.stats
            if stats.transmissions == 0:
                continue
            rows.append(
                LinkUtilisation(
                    src=queue.link.src,
                    dst=queue.link.dst,
                    transmissions=stats.transmissions,
                    kilobytes=stats.kilobytes,
                    utilisation=stats.utilisation(elapsed_ms),
                )
            )
    rows.sort(key=lambda r: (-r.utilisation, r.src, r.dst))
    return rows


def bottleneck(system: PubSubSystem, elapsed_ms: float) -> LinkUtilisation | None:
    """The busiest link direction, or None if nothing was transmitted."""
    report = utilisation_report(system, elapsed_ms)
    return report[0] if report else None


def saturation_rate_per_publisher(
    system: PubSubSystem,
    selectivity: float = 0.25,
    size_kb: float = 50.0,
) -> float:
    """Analytic estimate of the publishing rate (msgs/min/publisher) at
    which the busiest link direction saturates.

    For each direction, the expected load per published message is the
    probability that at least one subscriber routed through that direction
    matches (a copy traverses the link at most once per message):
    ``P(copy) = 1 − (1 − selectivity)^k`` with ``k`` subscribers routed
    through it from the message's source.  Summed over publishers and
    multiplied by the mean transmission time this gives busy-ms per
    message-minute; saturation is where it reaches 60 000 ms.

    This is a mean-field estimate — queueing variance makes the real knee
    slightly earlier — but it lands within the right rate bucket of
    Figures 5/6 and the analysis tests assert exactly that.
    """
    if not 0.0 < selectivity <= 1.0:
        raise ValueError("selectivity must be in (0, 1]")
    publishers = sorted(set(system.topology.publisher_brokers.values()))
    worst_busy_ms_per_msg = 0.0
    for broker in system.brokers.values():
        for neighbor, queue in broker.queues.items():
            mean_tx_ms = queue.link.true_rate.mean * size_kb
            busy = 0.0
            for source in publishers:
                k = sum(  # repro-lint: ignore[RL006] -- exact integer tally
                    1
                    for row in broker.table.rows()
                    if row.next_hop == neighbor and source in row.sources
                )
                if k:
                    busy += (1.0 - (1.0 - selectivity) ** k) * mean_tx_ms
            worst_busy_ms_per_msg = max(worst_busy_ms_per_msg, busy)
    if worst_busy_ms_per_msg == 0.0:
        return float("inf")
    # busy ms accumulated per (publisher-minute of publishing at rate 1)
    # equals worst_busy_ms_per_msg; saturation at 60 000 ms per minute.
    return 60_000.0 / worst_busy_ms_per_msg
