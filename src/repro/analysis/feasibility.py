"""Publish-time success prediction and its calibration.

The schedulers' ``success(s, m)`` machinery can be evaluated once at
publish time, from the source broker, over the *whole* routed path — an
analytic prediction of the delivery probability for each (message,
subscriber) pair under zero queueing.  Comparing predictions with outcomes
measures both model calibration and how much queueing (which the model
ignores — the paper sets downstream scheduling delay to 0) erodes
delivery under load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunked import grouped_runs
from repro.pubsub.message import Message
from repro.pubsub.system import PubSubSystem


def predict_success(system: PubSubSystem, message: Message, subscriber: str) -> float:
    """P(delivery within bound) for one pair, assuming no queueing.

    Uses the source broker's installed row for the subscriber (the same
    ``(NN_p, μ_p, σ_p²)`` the EB scheduler consults), so prediction and
    scheduling are provably consistent.
    """
    from repro.core.success import success_probability

    source = system.brokers[message.source_broker]
    if subscriber not in source.table:
        raise KeyError(f"no row for {subscriber!r} at {message.source_broker!r}")
    row = source.table.row(subscriber)
    return success_probability(
        row, message, message.publish_time, source.processing_delay_ms
    )


@dataclass(frozen=True, slots=True)
class CalibrationReport:
    """Predicted vs achieved delivery over a finished run."""

    pairs: int
    predicted_mean: float
    achieved_rate: float

    @property
    def queueing_erosion(self) -> float:
        """How much of the zero-queueing prediction was lost to contention
        (0 = none; values near 1 mean the network was hopelessly loaded)."""
        if self.predicted_mean == 0.0:
            return 0.0
        return max(0.0, 1.0 - self.achieved_rate / self.predicted_mean)


def calibrate(
    system: PubSubSystem,
    messages: list[Message],
) -> CalibrationReport:
    """Score the zero-queueing prediction against a finished run.

    For every (message, interested subscriber) pair with a row at the
    source broker, accumulate the predicted probability; compare with the
    fraction of those pairs actually delivered in time.
    """
    predicted = 0.0
    pairs = 0
    delivered = 0
    # Valid-reception sets built in ONE streaming pass over the chunked
    # delivery log (the old per-handle gathers scanned the whole log once
    # per subscriber), vectorised: per-chunk (endpoint, message) keys are
    # deduped in numpy and only the unique pairs — grouped by endpoint
    # with one stable argsort — touch Python.  Endpoint ids translate
    # back through the live handles; departed endpoints are skipped.
    id_to_name = {h.log_id: name for name, h in system.subscribers.items()}
    received: dict[str, set[int]] = {name: set() for name in system.subscribers}
    endpoints = np.int64(max(system.delivery_log.endpoint_count, 1))
    key_parts: list[np.ndarray] = []
    for sub, msg, valid in system.delivery_log.iter_chunks(("sub_id", "msg_id", "valid")):
        if valid.any():
            key_parts.append(np.unique(msg[valid] * endpoints + sub[valid]))
    if key_parts:
        keys = np.unique(np.concatenate(key_parts)) if len(key_parts) > 1 else key_parts[0]
        order, sub_sorted, starts, stops = grouped_runs(keys % endpoints)
        msg_sorted = (keys // endpoints)[order]
        for a, b in zip(starts.tolist(), stops.tolist()):
            name = id_to_name.get(int(sub_sorted[a]))
            if name is not None:
                received[name] = set(msg_sorted[a:b].tolist())
    for message in messages:
        source = system.brokers[message.source_broker]
        for row in source.table.match(message):
            pairs += 1
            predicted += predict_success(system, message, row.subscriber)
            if message.msg_id in received.get(row.subscriber, ()):
                delivered += 1
    if pairs == 0:
        return CalibrationReport(pairs=0, predicted_mean=0.0, achieved_rate=0.0)
    return CalibrationReport(
        pairs=pairs,
        predicted_mean=predicted / pairs,
        achieved_rate=delivered / pairs,
    )
