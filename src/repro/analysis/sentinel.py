"""Runtime invariant sentinel: cheap streaming checks *during* the run.

Every accounting invariant the test suite proves post-hoc is worthless in
a long production run that silently corrupted itself at minute three.
:class:`InvariantSentinel` runs the checks while the simulation is live,
at window boundaries, raising a typed :class:`InvariantViolation` with
full context the moment an identity breaks:

* **clock/heap monotonicity** — simulated time never runs backwards and
  no pending event is scheduled in the past;
* **counter monotonicity** — published/receptions/transmissions/
  deliveries/pruned/ledger counters never decrease between boundaries;
* **metrics accounting** — the backend's own ``check_invariants``
  (``ds_i <= ts_i`` per message, valid-total consistency, non-negative
  counters), surfaced as a sentinel violation;
* **entry conservation** — every queue entry ever created is sent,
  pruned, dead-lettered, or still queued: exact at any instant;
* **monitor-rate sanity** — every link monitor exposes a finite,
  positive mean rate (a zero/NaN rate would silently poison scheduling
  scores downstream).

The **pair conservation** identity — published = delivered + expired +
dead-lettered + in-flight, at the (message, subscriber) granularity — is
exact under single-path routing with no mid-run unsubscribes (a leave
orphans in-flight pairs by design; joins are watermarked and safe).  It
needs a heap scan plus a pure re-match per pending processing step, so it
runs at :meth:`final` by default and at every boundary under ``deep``.

The sentinel is *decision-neutral*: it only reads.  It never schedules
events, never touches an RNG stream, and never mutates broker state, so
a sentinel-on run is byte-identical to a sentinel-off run (the
checkpoint-identity suite's ``executed_events`` comparison would catch
any slip).  It is wired as ``--sentinel`` on ``run``/``scale``/
``dynamics`` and forced on in the test suite via ``REPRO_SENTINEL``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.system import PubSubSystem

#: Counters that must never decrease between boundary checks, read off
#: the metrics backend (attribute name -> human label).
_MONOTONE_METRICS = (
    "published", "receptions", "transmissions",
    "deliveries_valid", "deliveries_late", "pruned", "total_interested",
)

#: Same discipline for the fault ledger's counters.
_MONOTONE_FAULTS = (
    "enqueued_entries", "enqueued_pairs", "sent_entries", "sent_pairs",
    "pruned_entries", "pruned_pairs", "dead_entries", "dead_pairs",
    "publish_drops", "publish_drop_pairs", "retries",
)


class InvariantViolation(AssertionError):
    """A runtime invariant does not hold.

    Carries the failed check's name, the simulated time, and a context
    dict with every quantity that entered the comparison, so a violation
    in a long run is diagnosable from the exception alone.
    """

    def __init__(self, check: str, time_ms: float, context: dict, message: str) -> None:
        self.check = check
        self.time_ms = time_ms
        self.context = dict(context)
        super().__init__(
            f"[sentinel:{check}] t={time_ms:.3f} ms: {message} | context={self.context}"
        )


class InvariantSentinel:
    """Streaming invariant checks over one live :class:`PubSubSystem`.

    ``deep=True`` additionally runs the pair-conservation scan at every
    boundary (heap walk + pure re-match of pending processing steps);
    otherwise that identity is checked once, at :meth:`final`.
    """

    def __init__(self, system: "PubSubSystem", deep: bool = False) -> None:
        self.system = system
        self.deep = deep
        self.checks_run = 0
        self._last_now = -math.inf
        self._last_metrics: dict[str, int] = {}
        self._last_faults: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Individual checks.
    # ------------------------------------------------------------------ #
    def _fail(self, check: str, context: dict, message: str) -> None:
        raise InvariantViolation(check, self.system.sim.now, context, message)

    def _check_clock(self) -> None:
        now = self.system.sim.now
        if now < self._last_now:
            self._fail(
                "clock-monotonic",
                {"now": now, "last": self._last_now},
                "simulated clock ran backwards",
            )
        self._last_now = now
        heap = self.system.sim._heap
        if heap and not heap[0].cancelled and heap[0].time < now:
            self._fail(
                "heap-monotonic",
                {"now": now, "head_time": heap[0].time, "head_label": heap[0].label},
                "pending event scheduled in the past",
            )

    def _check_metrics(self) -> None:
        m = self.system.metrics
        try:
            m.check_invariants()
        except AssertionError as err:
            self._fail("metrics-accounting", {"backend": m.backend}, str(err))
        current = {name: int(getattr(m, name)) for name in _MONOTONE_METRICS}
        for name, value in current.items():
            if value < self._last_metrics.get(name, 0):
                self._fail(
                    "counter-monotonic",
                    {"counter": name, "value": value, "previous": self._last_metrics[name]},
                    "metrics counter decreased",
                )
        self._last_metrics = current

    def _check_fault_ledger(self) -> None:
        f = self.system.faults
        current = {name: int(getattr(f, name)) for name in _MONOTONE_FAULTS}
        for name, value in current.items():
            if value < self._last_faults.get(name, 0):
                self._fail(
                    "counter-monotonic",
                    {"counter": name, "value": value, "previous": self._last_faults[name]},
                    "fault-ledger counter decreased",
                )
        self._last_faults = current
        if f.sent_pairs > f.enqueued_pairs or f.sent_entries > f.enqueued_entries:
            self._fail(
                "entry-conservation", f.summary(), "sent more entries than enqueued"
            )

    def _check_entry_conservation(self) -> None:
        f = self.system.faults
        queued = self.system.total_queued()
        accounted = f.sent_entries + f.pruned_entries + f.dead_entries + queued
        if f.enqueued_entries != accounted:
            self._fail(
                "entry-conservation",
                {**f.summary(), "live_queued": queued},
                f"enqueued {f.enqueued_entries} != sent+pruned+dead+queued {accounted}",
            )

    def _check_monitor_rates(self) -> None:
        for (src, dst), monitor in self.system.monitors.items():
            rate = monitor.rate()
            if (
                not math.isfinite(rate.mean)
                or rate.mean <= 0.0
                or not math.isfinite(rate.variance)
                or rate.variance < 0.0
            ):
                self._fail(
                    "monitor-rate",
                    {"link": f"{src}->{dst}", "mean": rate.mean, "variance": rate.variance},
                    "monitor exposes a non-positive or non-finite rate",
                )

    # ------------------------------------------------------------------ #
    # Pair conservation (the deep check).
    # ------------------------------------------------------------------ #
    @property
    def pair_conservation_applicable(self) -> bool:
        """Exact only under single-path routing with no mid-run leaves:
        a multi-path copy or an unsubscribe can orphan in-flight pairs."""
        return (
            self.system.config.routing.is_single_path
            and self.system.unsubscribe_count == 0
        )

    def _pending_pairs(self) -> tuple[int, int]:
        """(processing, in-transit) pairs owned by pending heap events.

        A pending ``process`` event owns every pair its broker's table
        will resolve when it fires (re-matched here purely — the memo
        cache is not consulted or touched); a pending ``transmit`` event
        owns the pairs of its in-flight entry.
        """
        process_pairs = 0
        transit_pairs = 0
        for ev in self.system.sim._heap:
            if ev.cancelled:
                continue
            if ev.kind == "process":
                broker, message = ev.payload
                local, remote = broker.table.match_grouped(message)
                process_pairs += len(local)
                for group in remote.values():
                    process_pairs += len(group)
            elif ev.kind == "transmit":
                _broker, _neighbor, entry = ev.payload
                transit_pairs += len(entry.arrays)
        return process_pairs, transit_pairs

    def _check_pair_conservation(self) -> None:
        if not self.pair_conservation_applicable:
            return
        m = self.system.metrics
        f = self.system.faults
        queued_pairs = sum(  # repro-lint: ignore[RL006] -- exact integer tally
            len(entry.arrays)
            for broker in self.system.brokers.values()
            for queue in broker.queues.values()
            for entry in queue.sched.entries()
        )
        process_pairs, transit_pairs = self._pending_pairs()
        settled = m.deliveries_valid + m.deliveries_late
        dropped = f.pruned_pairs + f.dead_pairs + f.publish_drop_pairs
        in_flight = queued_pairs + transit_pairs + process_pairs
        accounted = settled + dropped + in_flight
        if m.total_interested != accounted:
            self._fail(
                "pair-conservation",
                {
                    "total_interested": m.total_interested,
                    "deliveries_valid": m.deliveries_valid,
                    "deliveries_late": m.deliveries_late,
                    "pruned_pairs": f.pruned_pairs,
                    "dead_pairs": f.dead_pairs,
                    "publish_drop_pairs": f.publish_drop_pairs,
                    "queued_pairs": queued_pairs,
                    "transit_pairs": transit_pairs,
                    "process_pairs": process_pairs,
                },
                f"published pairs {m.total_interested} != delivered+expired+"
                f"dead-lettered+in-flight {accounted}",
            )

    # ------------------------------------------------------------------ #
    # Entry points.
    # ------------------------------------------------------------------ #
    def check(self) -> None:
        """Run the cheap boundary checks (plus the deep scan if enabled)."""
        self._check_clock()
        self._check_metrics()
        self._check_fault_ledger()
        self._check_entry_conservation()
        self._check_monitor_rates()
        if self.deep:
            self._check_pair_conservation()
        self.checks_run += 1

    def final(self) -> None:
        """End-of-run check: everything, including pair conservation."""
        self.check()
        if not self.deep:
            self._check_pair_conservation()
