"""Post-hoc analysis of finished simulations.

The paper reports three aggregate metrics; operators of a real deployment
need more:

* :mod:`~repro.analysis.capacity` — per-link utilisation, bottleneck
  identification, and an analytic saturation estimate that predicts where
  Figures 5/6 bend (the knee where FIFO/RL earnings collapse).
* :mod:`~repro.analysis.latency` — delivery-latency distributions per
  subscriber/tier (percentiles, deadline-margin histograms).
* :mod:`~repro.analysis.feasibility` — publish-time success prediction:
  the same ``success(s, m)`` machinery the schedulers use, applied end to
  end from the source broker, and its calibration against what actually
  happened.
"""

from repro.analysis.capacity import (
    LinkUtilisation,
    saturation_rate_per_publisher,
    utilisation_report,
)
from repro.analysis.feasibility import CalibrationReport, calibrate, predict_success
from repro.analysis.latency import LatencyStats, latency_by_subscriber, latency_stats
from repro.analysis.revenue import TierRevenue, premium_share, revenue_by_tier

__all__ = [
    "TierRevenue",
    "revenue_by_tier",
    "premium_share",
    "LinkUtilisation",
    "utilisation_report",
    "saturation_rate_per_publisher",
    "LatencyStats",
    "latency_stats",
    "latency_by_subscriber",
    "predict_success",
    "calibrate",
    "CalibrationReport",
]
