"""Post-hoc analysis of finished simulations.

The paper reports three aggregate metrics; operators of a real deployment
need more:

* :mod:`~repro.analysis.capacity` — per-link utilisation, bottleneck
  identification, and an analytic saturation estimate that predicts where
  Figures 5/6 bend (the knee where FIFO/RL earnings collapse).
* :mod:`~repro.analysis.latency` — delivery-latency distributions per
  subscriber/tier (percentiles, deadline-margin histograms).
* :mod:`~repro.analysis.feasibility` — publish-time success prediction:
  the same ``success(s, m)`` machinery the schedulers use, applied end to
  end from the source broker, and its calibration against what actually
  happened.
* :mod:`~repro.analysis.timeseries` — windowed delivery-rate / earning /
  queue-depth trajectories over the columnar delivery log (the dynamics
  scripts' output format); every series folds exactly to the run's
  aggregate metrics.
"""

from repro.analysis.capacity import (
    LinkUtilisation,
    saturation_rate_per_publisher,
    utilisation_report,
)
from repro.analysis.feasibility import CalibrationReport, calibrate, predict_success
from repro.analysis.latency import LatencyStats, latency_by_subscriber, latency_stats
from repro.analysis.revenue import TierRevenue, premium_share, revenue_by_tier
from repro.analysis.timeseries import (
    MetricsTimeSeries,
    QueueDepthSampler,
    windowed_metrics,
)

__all__ = [
    "MetricsTimeSeries",
    "QueueDepthSampler",
    "windowed_metrics",
    "TierRevenue",
    "revenue_by_tier",
    "premium_share",
    "LinkUtilisation",
    "utilisation_report",
    "saturation_rate_per_publisher",
    "LatencyStats",
    "latency_stats",
    "latency_by_subscriber",
    "predict_success",
    "calibrate",
    "CalibrationReport",
]
