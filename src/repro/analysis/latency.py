"""Delivery-latency distributions."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pubsub.client import SubscriberHandle


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Summary of a latency sample (milliseconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_quantile(ordered, 0.50),
            p90=_quantile(ordered, 0.90),
            p99=_quantile(ordered, 0.99),
            maximum=ordered[-1],
        )


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile on a pre-sorted sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _latency_samples(handle: SubscriberHandle, valid_only: bool) -> list[float]:
    """One endpoint's latency column (optionally valid-filtered), straight
    off the columnar delivery log — no record materialisation."""
    _, _, latency, valid = handle.columns()
    if valid_only:
        latency = latency[valid]
    return latency.tolist()


def latency_stats(
    handles: list[SubscriberHandle], valid_only: bool = True
) -> LatencyStats:
    """Pooled latency stats over a set of subscriber endpoints."""
    samples = [
        sample
        for h in handles
        for sample in _latency_samples(h, valid_only)
    ]
    return LatencyStats.from_samples(samples)


def latency_by_subscriber(
    handles: list[SubscriberHandle], valid_only: bool = True
) -> dict[str, LatencyStats]:
    """Per-subscriber latency stats (subscribers with no deliveries included
    with an empty summary, so tier comparisons stay total)."""
    return {
        h.name: LatencyStats.from_samples(_latency_samples(h, valid_only))
        for h in handles
    }


def deadline_margins(
    handles: list[SubscriberHandle], deadline_ms: float
) -> list[float]:
    """``deadline − latency`` per valid delivery against a common deadline.

    Positive margins are slack; the left tail shows how close the scheduler
    runs to the bound (EB runs much closer than FIFO — it spends slack on
    rescuing other messages).
    """
    if deadline_ms <= 0.0:
        raise ValueError("deadline_ms must be positive")
    return [
        deadline_ms - sample
        for h in handles
        for sample in _latency_samples(h, valid_only=True)
    ]
