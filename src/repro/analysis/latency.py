"""Delivery-latency distributions.

Pooled statistics stream the shared chunked :class:`DeliveryLog` in one
pass (per-chunk filters, no per-endpoint rescans and no whole-log
gather); quantiles sort the pooled sample, so the result is independent
of chunk boundaries and byte-identical to the pre-chunking gathers.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.chunked import grouped_runs, sorted_contains
from repro.core.folds import fold_mean
from repro.pubsub.client import DeliveryLog, SubscriberHandle


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Summary of a latency sample (milliseconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=fold_mean(ordered),
            p50=_quantile(ordered, 0.50),
            p90=_quantile(ordered, 0.90),
            p99=_quantile(ordered, 0.99),
            maximum=ordered[-1],
        )


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile on a pre-sorted sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _pooled_samples_by_log(
    handles: list[SubscriberHandle], valid_only: bool
) -> dict[int, np.ndarray]:
    """One streaming pass per distinct backing log: latency samples of
    each requested endpoint, keyed by endpoint id.

    Replaces the old per-handle gathers (E scans of an N-row log) with a
    single chunk stream per log — the per-chunk group-by costs one
    boolean mask and one fancy-index per endpoint *with rows in that
    chunk* only.
    """
    by_log: dict[int, tuple[DeliveryLog, set[int]]] = {}
    for h in handles:
        log = h.log
        entry = by_log.setdefault(id(log), (log, set()))
        entry[1].add(h.log_id)
    out: dict[tuple[int, int], list[np.ndarray]] = defaultdict(list)
    for log_key, (log, wanted) in by_log.items():
        wanted_arr = np.fromiter(wanted, dtype=np.int64, count=len(wanted))
        wanted_arr.sort()
        for sub, latency, valid in log.iter_chunks(("sub_id", "latency", "valid")):
            if valid_only:
                sub, latency = sub[valid], latency[valid]
            if not sub.shape[0]:
                continue
            hit = sorted_contains(wanted_arr, sub)
            if not hit.any():
                continue
            sub, latency = sub[hit], latency[hit]
            # One stable grouped argsort per chunk — arrival order kept
            # within each endpoint, O(k log k) in the chunk's matching
            # rows instead of one whole-chunk mask per endpoint.
            order, s_sorted, starts, stops = grouped_runs(sub)
            lat_sorted = latency[order]
            for a, b in zip(starts.tolist(), stops.tolist()):
                out[(log_key, int(s_sorted[a]))].append(lat_sorted[a:b])
    return {
        key: np.concatenate(parts) if len(parts) > 1 else parts[0]
        for key, parts in out.items()
    }


def latency_stats(
    handles: list[SubscriberHandle], valid_only: bool = True
) -> LatencyStats:
    """Pooled latency stats over a set of subscriber endpoints.

    Streams each backing log once; the pooled sample is sorted before
    summarising, so the chunk-order pooling is result-identical to the
    old handle-order gathers."""
    pooled = _pooled_samples_by_log(handles, valid_only)
    samples = [s for arr in pooled.values() for s in arr.tolist()]
    return LatencyStats.from_samples(samples)


def _pooled_key(handle: SubscriberHandle) -> tuple[int, int]:
    return (id(handle.log), handle.log_id)


def latency_by_subscriber(
    handles: list[SubscriberHandle], valid_only: bool = True
) -> dict[str, LatencyStats]:
    """Per-subscriber latency stats (subscribers with no deliveries included
    with an empty summary, so tier comparisons stay total).  One chunk
    stream per backing log, not one log scan per subscriber."""
    pooled = _pooled_samples_by_log(handles, valid_only)
    empty = np.empty(0)
    return {
        h.name: LatencyStats.from_samples(pooled.get(_pooled_key(h), empty).tolist())
        for h in handles
    }


def deadline_margins(
    handles: list[SubscriberHandle], deadline_ms: float
) -> list[float]:
    """``deadline − latency`` per valid delivery against a common deadline.

    Positive margins are slack; the left tail shows how close the scheduler
    runs to the bound (EB runs much closer than FIFO — it spends slack on
    rescuing other messages).
    """
    if deadline_ms <= 0.0:
        raise ValueError("deadline_ms must be positive")
    pooled = _pooled_samples_by_log(handles, valid_only=True)
    empty = np.empty(0)
    # Handle-major, arrival order within each handle — exactly the order
    # the old per-handle gathers produced, from one log pass.
    return [
        deadline_ms - sample
        for h in handles
        for sample in pooled.get(_pooled_key(h), empty).tolist()
    ]
