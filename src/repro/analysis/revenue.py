"""Per-tier revenue breakdown for the SSD scenario.

The paper's total-earning objective (Eq. 2) hides *where* the money comes
from.  Splitting revenue by price tier shows the EB scheduler's implicit
bandwidth pricing: under congestion, contended capacity migrates to the
premium tier because each premium delivery contributes 3× an economy one
to the expected benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.folds import fold_sum
from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True, slots=True)
class TierRevenue:
    """Revenue and delivery counts for one price tier."""

    price: float
    deadline_ms: float | None
    subscribers: int
    valid_deliveries: int
    revenue: float

    @property
    def revenue_per_subscriber(self) -> float:
        return self.revenue / self.subscribers if self.subscribers else 0.0


def revenue_by_tier(system: PubSubSystem) -> list[TierRevenue]:
    """Split a finished run's earning by subscription price tier.

    Tiers are keyed by ``(price, deadline)``; unpriced subscriptions (PSD)
    fall into a single ``price=1.0`` tier, so the function is total over
    scenarios.  Sorted by descending price.

    Per-endpoint valid counts come from the delivery log's cached
    one-pass chunk-stream tallies, so the whole breakdown costs one log
    pass plus O(subscribers) — no per-endpoint log scans, no whole-log
    gather, spill-compatible.
    """
    buckets: dict[tuple[float, float | None], dict[str, float]] = {}
    for name, handle in system.subscribers.items():
        edge = system.topology.subscriber_brokers[name]
        row = system.brokers[edge].table.row(name)
        price = row.price if row.price is not None else 1.0
        key = (price, row.deadline_ms)
        bucket = buckets.setdefault(key, {"subs": 0, "valid": 0})
        bucket["subs"] += 1
        bucket["valid"] += handle.valid_count
    out = [
        TierRevenue(
            price=price,
            deadline_ms=deadline,
            subscribers=int(b["subs"]),
            valid_deliveries=int(b["valid"]),
            revenue=price * b["valid"],
        )
        for (price, deadline), b in buckets.items()
    ]
    out.sort(key=lambda t: (-t.price, t.deadline_ms if t.deadline_ms is not None else 0.0))
    return out


def premium_share(tiers: list[TierRevenue]) -> float:
    """Fraction of total revenue earned by the highest-priced tier."""
    total = fold_sum(t.revenue for t in tiers)
    if total == 0.0 or not tiers:
        return 0.0
    top_price = max(t.price for t in tiers)
    return fold_sum(t.revenue for t in tiers if t.price == top_price) / total
