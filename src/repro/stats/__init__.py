"""Probability substrate for the bounded-delay pub/sub reproduction.

The scheduling strategies of Wang et al. (ICPP 2006) consume only two
statistical facts about the overlay: per-link transmission rates are
normally distributed and independent, so per-path rates are normal with
additive mean and variance.  This package provides:

* :class:`~repro.stats.normal.Normal` — the normal distribution with exact
  erf-based CDF (no scipy required on the hot path) and the additive algebra
  used for path composition.
* :class:`~repro.stats.gamma.ShiftedGamma` — the shifted-gamma one-way IP
  delay model the paper cites (Bovy et al. / Corlett et al.) to justify the
  stability assumption; used by the measurement substrate to synthesise
  realistic link samples.
* Online estimators (:mod:`~repro.stats.estimators`) reproducing the
  "parameters estimated from measured data" pipeline: Welford, sliding
  window, and EWMA.
* Truncated sampling helpers (:mod:`~repro.stats.sampling`) so that sampled
  transmission times are always positive.
"""

from repro.stats.estimators import (
    EwmaEstimator,
    RateEstimator,
    SlidingWindowEstimator,
    WelfordEstimator,
)
from repro.stats.gamma import ShiftedGamma
from repro.stats.normal import Normal, normal_cdf, normal_sf
from repro.stats.sampling import TruncatedNormalSampler, sample_positive_normal

__all__ = [
    "Normal",
    "normal_cdf",
    "normal_sf",
    "ShiftedGamma",
    "RateEstimator",
    "WelfordEstimator",
    "SlidingWindowEstimator",
    "EwmaEstimator",
    "TruncatedNormalSampler",
    "sample_positive_normal",
]
