"""Shifted-gamma one-way IP packet delay model.

The paper (Section 3.2) cites measurement studies [17, 18] showing that
one-way Internet packet delay follows a *shifted gamma* distribution with
surprisingly small variation (e.g. a 22-hop transatlantic path with mean
108.2 ms and standard error 3.083 ms).  The scheduling strategies never use
this distribution directly — they work on the normal approximation of TCP
throughput — but the measurement substrate uses it to synthesise realistic
per-packet delay samples when emulating the "estimate link parameters from
measured data" pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special


@dataclass(frozen=True, slots=True)
class ShiftedGamma:
    """``shift + Gamma(shape, scale)`` with shape/scale parameterisation.

    ``mean = shift + shape * scale`` and ``variance = shape * scale^2``.
    """

    shape: float
    scale: float
    shift: float = 0.0

    def __post_init__(self) -> None:
        if self.shape <= 0.0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    # ------------------------------------------------------------------ #
    # Moments.
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        return self.shift + self.shape * self.scale

    @property
    def variance(self) -> float:
        return self.shape * self.scale * self.scale

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    # ------------------------------------------------------------------ #
    # Distribution functions.
    # ------------------------------------------------------------------ #
    def pdf(self, x: float) -> float:
        y = x - self.shift
        if y <= 0.0:
            return 0.0
        k, theta = self.shape, self.scale
        return (
            y ** (k - 1.0)
            * math.exp(-y / theta)
            / (math.gamma(k) * theta**k)
        )

    def cdf(self, x: float) -> float:
        y = x - self.shift
        if y <= 0.0:
            return 0.0
        return float(special.gammainc(self.shape, y / self.scale))

    def sf(self, x: float) -> float:
        return 1.0 - self.cdf(x)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.shift + rng.gamma(self.shape, self.scale, size=size)

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #
    @classmethod
    def from_moments(cls, mean: float, std: float, shift: float = 0.0) -> "ShiftedGamma":
        """Fit shape/scale from target (mean, std) above a known shift.

        This is the method-of-moments fit one would apply to measured
        one-way delays after subtracting the deterministic propagation
        floor (the shift).
        """
        excess = mean - shift
        if excess <= 0.0:
            raise ValueError("mean must exceed shift")
        if std <= 0.0:
            raise ValueError("std must be positive")
        scale = std * std / excess
        shape = excess / scale
        return cls(shape=shape, scale=scale, shift=shift)

    @classmethod
    def transatlantic_path(cls) -> "ShiftedGamma":
        """The reference path from Corlett et al. quoted in the paper:
        mean 108.2 ms, standard error 3.083 ms, 22 hops.  We take the shift
        as the speed-of-light floor at ~90 ms."""
        return cls.from_moments(mean=108.2, std=3.083, shift=90.0)
