"""Online estimators of link transmission-rate parameters.

Section 3.2 of the paper: *"Each broker estimates the parameters of the
probability distribution of the transmission rate to each neighbor by some
tools of network measurement."*  The strategies only ever consume the
resulting ``(mean, variance)`` pair, so any consistent online estimator
plugs in.  Three classic choices are provided:

* :class:`WelfordEstimator` — numerically stable running mean/variance over
  the full history (best when the link is stationary, as the paper assumes).
* :class:`SlidingWindowEstimator` — mean/variance over the last ``window``
  samples (adapts if the link drifts).
* :class:`EwmaEstimator` — exponentially weighted moments (cheap, smooth).

All satisfy the :class:`RateEstimator` protocol used by
:class:`repro.network.measurement.LinkMonitor`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol, runtime_checkable

from repro.stats.normal import Normal


@runtime_checkable
class RateEstimator(Protocol):
    """Anything that ingests samples and exposes running (mean, variance)."""

    def observe(self, sample: float) -> None:
        """Ingest one measured sample."""

    @property
    def count(self) -> int:
        """Number of samples observed so far."""

    @property
    def mean(self) -> float:
        """Current mean estimate."""

    @property
    def variance(self) -> float:
        """Current (population-style) variance estimate."""


class _EstimatorBase:
    """Shared conveniences for the concrete estimators."""

    count: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def distribution(self) -> Normal:
        """Snapshot the current estimate as a :class:`Normal`."""
        return Normal(self.mean, self.variance)

    def observe_many(self, samples) -> None:
        for sample in samples:
            self.observe(sample)


class WelfordEstimator(_EstimatorBase):
    """Numerically stable streaming mean/variance (Welford 1962).

    ``variance`` is the *sample* variance (``n - 1`` denominator) once two
    or more samples have been seen, and 0 before that.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, sample: float) -> None:
        sample = float(sample)
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample}")
        self._count += 1
        delta = sample - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (sample - self._mean)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)


class SlidingWindowEstimator(_EstimatorBase):
    """Mean/variance over the most recent ``window`` samples.

    Running sums are kept relative to an *offset* (re-anchored to the
    current mean at periodic resyncs), so the variance formula cancels
    against the window spread rather than the absolute magnitude — the
    naive sum-of-squares form loses all precision when ``mean >> std``.
    Variance uses the ``n − 1`` denominator.
    """

    __slots__ = ("_window", "_samples", "_offset", "_dsum", "_dsumsq", "_evictions")

    def __init__(self, window: int = 64) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._window = window
        self._samples: deque[float] = deque()
        self._offset = 0.0
        self._dsum = 0.0
        self._dsumsq = 0.0
        self._evictions = 0

    @property
    def window(self) -> int:
        return self._window

    def observe(self, sample: float) -> None:
        sample = float(sample)
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample}")
        if not self._samples:
            self._offset = sample
        self._samples.append(sample)
        d = sample - self._offset
        self._dsum += d
        self._dsumsq += d * d
        if len(self._samples) > self._window:
            old = self._samples.popleft() - self._offset
            self._dsum -= old
            self._dsumsq -= old * old
            self._evictions += 1
            if self._evictions >= 2 * self._window:
                self._resync()

    def _resync(self) -> None:
        self._offset = sum(self._samples) / len(self._samples)
        self._dsum = sum(s - self._offset for s in self._samples)
        self._dsumsq = sum((s - self._offset) ** 2 for s in self._samples)
        self._evictions = 0

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        n = len(self._samples)
        return self._offset + self._dsum / n if n else 0.0

    @property
    def variance(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        var = (self._dsumsq - self._dsum * self._dsum / n) / (n - 1)
        return max(var, 0.0)


class EwmaEstimator(_EstimatorBase):
    """Exponentially weighted moving mean and variance.

    Uses the standard recursion (West 1979): with weight ``alpha`` on the
    newest sample,

    ``mean_t = (1 - alpha) * mean_{t-1} + alpha * x_t``
    ``var_t  = (1 - alpha) * (var_{t-1} + alpha * (x_t - mean_{t-1})^2)``

    The first sample initialises the mean with zero variance.
    """

    __slots__ = ("_alpha", "_count", "_mean", "_var")

    def __init__(self, alpha: float = 0.125) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._count = 0
        self._mean = 0.0
        self._var = 0.0

    @property
    def alpha(self) -> float:
        return self._alpha

    def observe(self, sample: float) -> None:
        sample = float(sample)
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample}")
        self._count += 1
        if self._count == 1:
            self._mean = sample
            self._var = 0.0
            return
        delta = sample - self._mean
        self._var = (1.0 - self._alpha) * (self._var + self._alpha * delta * delta)
        self._mean += self._alpha * delta

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._var
