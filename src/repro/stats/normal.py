"""Normal distribution with the additive algebra used for overlay paths.

The paper models the transmission rate of overlay link ``l_i`` (time in
milliseconds to push one kilobyte) as ``TR_i ~ N(mu_i, sigma_i^2)`` and
assumes link rates are independent, so a path ``p = l_1 .. l_n`` has
``TR_p ~ N(sum mu_i, sum sigma_i^2)``.  :class:`Normal` implements exactly
that algebra plus the CDF evaluations needed by the ``success(s, m)``
probability of Section 5.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.fastpath import erf_array

_SQRT2 = math.sqrt(2.0)


def normal_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Exact CDF of ``N(mean, std^2)`` evaluated at ``x`` via ``erf``.

    For a degenerate distribution (``std == 0``) this is the step function,
    which arises legitimately when a path has zero measured variance.
    """
    if std < 0.0:
        raise ValueError(f"std must be non-negative, got {std}")
    if std == 0.0:
        return 1.0 if x >= mean else 0.0
    return 0.5 * (1.0 + math.erf((x - mean) / (std * _SQRT2)))


def normal_sf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Survival function ``P(X > x)`` of ``N(mean, std^2)``."""
    return 1.0 - normal_cdf(x, mean, std)


def normal_cdf_vec(x: np.ndarray, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Vectorised normal CDF over numpy arrays (degenerate stds allowed).

    Used by the vectorised EB/PC metric kernels where one message is scored
    against every matching subscription at once.
    """
    x = np.asarray(x, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    if np.any(std < 0.0):
        raise ValueError("std must be non-negative")
    if not (std == 0.0).any():
        # Hot path: no degenerate stds (the overwhelmingly common case on
        # the scoring kernels) — same operations, fewer array passes and
        # no where/broadcast scaffolding.  In-place arithmetic on the
        # freshly allocated intermediates changes no result bits.
        z = (x - mean) / (std * _SQRT2)
        out = _erf_vec(z)
        out += 1.0
        out *= 0.5
        return out
    out = np.empty(np.broadcast_shapes(x.shape, mean.shape, std.shape), dtype=np.float64)
    x, mean, std = np.broadcast_arrays(x, mean, std)
    degenerate = std == 0.0
    safe_std = np.where(degenerate, 1.0, std)
    z = (x - mean) / (safe_std * _SQRT2)
    np.multiply(0.5, 1.0 + _erf_vec(z), out=out)
    out[degenerate] = (x[degenerate] >= mean[degenerate]).astype(np.float64)
    return out


# Elementwise erf lives in core.fastpath: portable frompyfunc wrapper (or
# the numba-compiled ufunc under the [fast] extra), with the verified
# saturation cut that skips per-element calls for |z| >= 6.  math.erf is
# scalar-only, and scipy.special.erf is NOT bit-compatible with it.
_erf_vec = erf_array


@dataclass(frozen=True, slots=True)
class Normal:
    """An immutable normal distribution ``N(mean, variance)``.

    ``variance`` may be zero (degenerate / deterministic), which shows up
    when a path estimate has not accumulated any spread yet.
    """

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance < 0.0:
            raise ValueError(f"variance must be non-negative, got {self.variance}")
        if not math.isfinite(self.mean):
            raise ValueError(f"mean must be finite, got {self.mean}")

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    # ------------------------------------------------------------------ #
    # Algebra: the operations path composition needs.
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Normal | float") -> "Normal":
        """Sum of independent normals, or a deterministic shift."""
        if isinstance(other, Normal):
            return Normal(self.mean + other.mean, self.variance + other.variance)
        return Normal(self.mean + float(other), self.variance)

    __radd__ = __add__

    def scale(self, k: float) -> "Normal":
        """Distribution of ``k * X`` — message-size scaling of a rate.

        A message of ``m`` kilobytes on a path with rate ``TR_p`` has
        propagation delay ``m * TR_p ~ N(m * mu, m^2 * sigma^2)``.
        """
        return Normal(k * self.mean, (k * k) * self.variance)

    @staticmethod
    def sum(parts: Iterable["Normal"]) -> "Normal":
        """Sum of independent normals (empty sum is the degenerate zero)."""
        mean = 0.0
        variance = 0.0
        for part in parts:
            mean += part.mean
            variance += part.variance
        return Normal(mean, variance)

    # ------------------------------------------------------------------ #
    # Probabilities.
    # ------------------------------------------------------------------ #
    def cdf(self, x: float) -> float:
        """``P(X <= x)``."""
        return normal_cdf(x, self.mean, self.std)

    def sf(self, x: float) -> float:
        """``P(X > x)``."""
        return normal_sf(x, self.mean, self.std)

    def quantile(self, q: float) -> float:
        """Inverse CDF by bisection (exact enough for tests and pruning)."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if self.variance == 0.0:
            return self.mean
        lo = self.mean - 12.0 * self.std
        hi = self.mean + 12.0 * self.std
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples (unconstrained; see :mod:`repro.stats.sampling` for
        the positivity-truncated variant used by links)."""
        return rng.normal(self.mean, self.std, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Normal(mean={self.mean:.6g}, variance={self.variance:.6g})"
