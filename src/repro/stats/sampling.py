"""Positivity-truncated sampling of normally distributed delays.

A normal transmission-rate model puts small probability mass on negative
delays; a simulator cannot transmit a message backwards in time.  Links
therefore draw from a *truncated* normal: resample until positive, with a
floor fallback for pathological parameters (mean deeply negative) so that
the simulation never livelocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.stats.normal import Normal


def sample_positive_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    floor: float = 1e-9,
    max_tries: int = 64,
) -> float:
    """Draw one sample from ``N(mean, std^2)`` conditioned on ``> 0``.

    Falls back to ``floor`` if ``max_tries`` resamples all land non-positive
    (only possible when the distribution is almost entirely negative, which
    real link parameters never are — floor keeps failure injection runs
    well-defined).
    """
    if std < 0.0:
        raise ValueError(f"std must be non-negative, got {std}")
    if std == 0.0:
        return max(mean, floor)
    for _ in range(max_tries):
        value = rng.normal(mean, std)
        if value > 0.0:
            return float(value)
    return floor


@dataclass
class TruncatedNormalSampler:
    """Reusable sampler bound to one distribution.

    Tracks how often truncation actually bites so experiments can verify the
    model distortion is negligible (with the paper's parameters,
    ``mu >= 50 ms``/``sigma = 20 ms``, mass below zero is ``Phi(-2.5) < 1%``).
    """

    distribution: Normal
    floor: float = 1e-9
    max_tries: int = 64
    draws: int = field(default=0, init=False)
    rejections: int = field(default=0, init=False)

    def sample(self, rng: np.random.Generator) -> float:
        self.draws += 1
        mean, std = self.distribution.mean, self.distribution.std
        if std == 0.0:
            return max(mean, self.floor)
        for _ in range(self.max_tries):
            value = rng.normal(mean, std)
            if value > 0.0:
                return float(value)
            self.rejections += 1
        return self.floor

    @property
    def rejection_rate(self) -> float:
        """Fraction of raw draws rejected for being non-positive."""
        total = self.draws + self.rejections
        return self.rejections / total if total else 0.0

    def truncation_mass(self) -> float:
        """Analytic probability mass below zero for the bound distribution."""
        return self.distribution.cdf(0.0)


def truncated_normal_mean(mean: float, std: float) -> float:
    """Analytic mean of ``N(mean, std^2)`` conditioned on being positive.

    Used by tests to check the sampler against theory:
    ``E[X | X > 0] = mean + std * phi(a) / (1 - Phi(a))`` with
    ``a = -mean / std``.
    """
    if std < 0.0:
        raise ValueError(f"std must be non-negative, got {std}")
    if std == 0.0:
        return max(mean, 0.0)
    a = -mean / std
    phi = math.exp(-0.5 * a * a) / math.sqrt(2.0 * math.pi)
    tail = 0.5 * math.erfc(a / math.sqrt(2.0))
    if tail <= 0.0:
        return max(mean, 0.0)
    return mean + std * phi / tail
