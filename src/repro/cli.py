"""Command-line interface: regenerate any paper artefact or run a custom point.

Examples::

    python -m repro fig6a --scale 0.1
    python -m repro fig5a --scale 0.1 --jobs 4
    python -m repro fig4a --scale 0.05 --seed 3
    python -m repro tab1
    python -m repro claims --scale 0.1
    python -m repro run --scenario ssd --strategy ebpc --r 0.6 --rate 12 --minutes 10
    python -m repro dynamics --preset flash-crowd --metric delivery-rate --minutes 10
    python -m repro dynamics --preset degrade-worst-link --metric queue-depth
    python -m repro scale --size 100k --log-spill
    python -m repro run --strategy eb --minutes 10 --log-spill --log-chunk 16384
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import profiling
from repro.core.chunked import DEFAULT_CHUNK_ROWS
from repro.experiments import figure4, figure5, figure6, table1
from repro.experiments.claims import format_report, run_all
from repro.experiments.common import ScaleSpec
from repro.experiments.report import format_series_table
from repro.pubsub.engine import ENGINE_BACKENDS
from repro.pubsub.matching import MATCHER_BACKENDS
from repro.pubsub.metrics import METRICS_BACKENDS
from repro.sim.config import SimulationConfig
from repro.sim.runner import CheckpointInterrupted, run_simulation
from repro.sim.shard import SHARD_BACKENDS
from repro.workload.scenarios import SCALE_SCENARIOS, Scenario

_FIGURES = {
    "fig4a": figure4.run_panel_a,
    "fig4b": figure4.run_panel_b,
    "fig5a": figure5.run_panel_a,
    "fig5b": figure5.run_panel_b,
    "fig6a": figure6.run_panel_a,
    "fig6b": figure6.run_panel_b,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="fraction of the paper's 2-hour test period to simulate (default 0.1; 1.0 = full)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pubsub",
        description="Reproduce Wang et al. (ICPP 2006): bounded-delay pub/sub scheduling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig_id in _FIGURES:
        p = sub.add_parser(fig_id, help=f"regenerate {fig_id}")
        _add_scale_args(p)
        p.add_argument("--plot", action="store_true", help="also render an ASCII chart")
        p.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N",
            help="run the sweep's independent simulation points over N worker "
                 "processes (results are byte-identical to a sequential run)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache finished points as JSON keyed by config hash; repeated "
                 "sweeps at the same scale skip them",
        )

    sub.add_parser("tab1", help="render Table 1 (related-work taxonomy)")

    p = sub.add_parser("claims", help="check the paper's headline claims")
    _add_scale_args(p)

    p = sub.add_parser("record", help="regenerate the EXPERIMENTS.md reproduction record")
    _add_scale_args(p)
    p.add_argument("-o", "--output", default=None, help="write markdown here (default: stdout)")

    p = sub.add_parser("ablate", help="run one ablation study")
    from repro.experiments.ablation import STUDIES

    p.add_argument("study", choices=sorted(STUDIES))
    _add_scale_args(p)

    p = sub.add_parser("doctor", help="validate the assembled system's routing state")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scenario", choices=[s.value for s in Scenario], default="psd"
    )

    p = sub.add_parser(
        "dynamics",
        help="compare all strategies under a scripted scenario (time series)",
    )
    from repro.experiments.dynamics import ALL_STRATEGIES, METRICS
    from repro.workload.dynamics import PRESETS

    p.add_argument("--preset", choices=sorted(PRESETS), default="flash-crowd")
    p.add_argument("--metric", choices=sorted(METRICS), default="delivery-rate")
    p.add_argument("--scenario", choices=[s.value for s in Scenario], default="ssd")
    p.add_argument("--rate", type=float, default=10.0, help="msgs/min/publisher (base)")
    p.add_argument("--minutes", type=float, default=10.0, help="simulated test period")
    p.add_argument("--window", type=float, default=60.0, help="bucket width (seconds)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--strategy", action="append", choices=ALL_STRATEGIES, default=None,
        metavar="NAME", help="restrict to these strategies (repeatable; default all)",
    )
    p.add_argument(
        "--measurement", choices=["oracle", "estimated"], default="oracle",
        help="link parameter source for the schedulers",
    )
    p.add_argument(
        "--estimator", choices=["welford", "window", "ewma"], default="welford",
        help="ESTIMATED-mode estimator (window/ewma track runtime rate changes)",
    )
    _add_sentinel_args(p)
    _add_checkpoint_args(p)

    p = sub.add_parser("run", help="run one custom simulation point")
    p.add_argument("--scenario", choices=[s.value for s in Scenario], default="psd")
    p.add_argument("--strategy", default="eb", help="fifo | rl | eb | pc | ebpc")
    p.add_argument("--r", type=float, default=0.5, help="EB weight for ebpc")
    p.add_argument("--rate", type=float, default=10.0, help="msgs/min/publisher")
    p.add_argument("--minutes", type=float, default=10.0, help="simulated test period")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--matcher", choices=list(MATCHER_BACKENDS), default="vector",
        help="matching engine: numpy fast path, dict oracle, or brute force",
    )
    p.add_argument(
        "--metrics", choices=list(METRICS_BACKENDS), default="ledger",
        help="accounting backend: array-backed ledger or per-delivery scalar oracle",
    )
    _add_engine_args(p)
    _add_log_args(p)
    _add_sentinel_args(p)
    _add_script_args(p)
    _add_checkpoint_args(p)

    p = sub.add_parser(
        "scale",
        help="run one bounded-memory scale-tier point (100k+ subscribers)",
    )
    p.add_argument(
        "--size", choices=sorted(SCALE_SCENARIOS), default="100k",
        help="scale-family member (smoke is CI-sized)",
    )
    p.add_argument("--strategy", default="eb", help="fifo | rl | eb | pc | ebpc")
    p.add_argument("--rate", type=float, default=10.0, help="msgs/min/publisher")
    p.add_argument("--minutes", type=float, default=2.0, help="simulated test period")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--window", type=float, default=30.0, help="series bucket (seconds)")
    _add_engine_args(p)
    _add_log_args(p)
    _add_sentinel_args(p)
    _add_script_args(p)
    _add_checkpoint_args(p)

    p = sub.add_parser(
        "lint",
        help="determinism & fork-safety static analyzer (RL001-RL006)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)

    p = sub.add_parser(
        "fuzz",
        help="search fault-scenario space for invariant violations and "
             "strategy-ranking inversions",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="the CI campaign: fixed small budget, short runs",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--budget", type=_positive_int, default=12, metavar="N",
        help="random fault scripts to try (ignored with --smoke)",
    )
    p.add_argument("--rate", type=float, default=20.0, help="msgs/min/publisher")
    p.add_argument("--minutes", type=float, default=2.0, help="simulated test period")
    p.add_argument(
        "--out", default="fuzz-findings", metavar="DIR",
        help="write shrunk counterexample scripts here (default: fuzz-findings)",
    )
    p.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="re-run each clean script under the N-shard engine and "
             "require byte-identical results (0 disables the probe)",
    )
    return parser


def _add_sentinel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sentinel", action="store_true",
        help="run the invariant sentinel at window boundaries (decision-"
             "neutral; raises InvariantViolation the moment an identity breaks)",
    )


def _add_script_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--script", default=None, metavar="PATH",
        help="play a fault/intervention script file (JSON written by the "
             "fuzzer or repro.workload.registry.save_script)",
    )


def _load_script(args: argparse.Namespace):
    if getattr(args, "script", None) is None:
        return None
    from repro.workload.registry import load_script

    return load_script(args.script)


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=list(ENGINE_BACKENDS), default="fused",
        help="event-pipeline driver: fused window drain or the per-event oracle",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="partition the broker overlay into N shards and compute the "
             "match phase in parallel per epoch (byte-identical outputs; "
             "requires --engine fused; default 0 = off)",
    )
    parser.add_argument(
        "--shard-backend", choices=list(SHARD_BACKENDS), default="process",
        help="shard workers: forked processes (POSIX) or the identical "
             "in-process protocol (portable; used for differential tests)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="per-stage pipeline timers (pop/match/enqueue/drain/metrics/"
             "append), printed after the run",
    )


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="snapshot the full engine state every N simulated seconds "
             "(atomic write-then-rename; versioned, fingerprinted manifest)",
    )
    parser.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="checkpoint root directory (default: ./checkpoints)",
    )
    parser.add_argument(
        "--checkpoint-keep", type=_positive_int, default=3, metavar="K",
        help="retain the newest K snapshots (default 3)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a snapshot (or the newest one under a checkpoint "
             "root); the other flags must rebuild the same config, or the "
             "snapshot refuses with a fingerprint mismatch",
    )


def _checkpoint_policy(args: argparse.Namespace):
    """CheckpointPolicy from CLI flags (None when checkpointing is off)."""
    if args.checkpoint_every is None:
        return None
    from repro.sim.runner import CheckpointPolicy

    return CheckpointPolicy(
        directory=args.checkpoint_dir,
        every_ms=args.checkpoint_every * 1000.0,
        keep=args.checkpoint_keep,
    )


def _add_log_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-spill", action="store_true",
        help="spill sealed delivery-/publication-log chunks to a temp .npz "
             "ring; only the active chunk stays in RAM (decision-neutral)",
    )
    parser.add_argument(
        "--log-chunk", type=_positive_int, default=DEFAULT_CHUNK_ROWS, metavar="ROWS",
        help="rows per sealed log chunk (the spill granularity; "
             f"default {DEFAULT_CHUNK_ROWS})",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    start = time.perf_counter()  # repro-lint: ignore[RL001] -- CLI elapsed footer, decision-neutral
    try:
        return _dispatch(args, start)
    except CheckpointInterrupted as stop:
        print(
            f"\ninterrupted: final checkpoint written after "
            f"{stop.executed} events\n"
            f"resume with: --resume {stop.checkpoint}",
            file=sys.stderr,
        )
        return 3


def _dispatch(args: argparse.Namespace, start: float) -> int:
    if args.command == "lint":
        # No elapsed footer: the lint output is consumed by CI and tests.
        from repro.lint.cli import run_lint

        return run_lint(args)
    if args.command in _FIGURES:
        result = _FIGURES[args.command](
            ScaleSpec(scale=args.scale, seed=args.seed),
            jobs=args.jobs, cache_dir=args.cache_dir,
        )
        print(format_series_table(result))
        if args.plot:
            from repro.experiments.asciiplot import render_ascii_chart

            print()
            print(render_ascii_chart(result))
    elif args.command == "tab1":
        print(table1.render())
    elif args.command == "claims":
        print(format_report(run_all(ScaleSpec(scale=args.scale, seed=args.seed))))
    elif args.command == "ablate":
        from repro.experiments.ablation import STUDIES

        result = STUDIES[args.study](ScaleSpec(scale=args.scale, seed=args.seed))
        print(format_series_table(result))
    elif args.command == "doctor":
        from repro.sim.runner import build_system
        from repro.sim.validation import validate_system

        system = build_system(
            SimulationConfig(seed=args.seed, scenario=Scenario(args.scenario))
        )
        findings = validate_system(system)
        if findings:
            for finding in findings:
                print(finding)
            return 1
        print(
            f"ok: {len(system.brokers)} brokers, {len(system.monitors)} link directions, "
            f"{system.subscription_count} subscriptions — no structural findings"
        )
    elif args.command == "record":
        from repro.experiments.record import render_markdown, run_everything

        bundle = run_everything(ScaleSpec(scale=args.scale, seed=args.seed))
        text = render_markdown(bundle)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text)
            print(f"wrote {args.output} ({len(text.splitlines())} lines)")
        else:
            print(text)
    elif args.command == "dynamics":
        from repro.experiments.asciiplot import render_ascii_chart
        from repro.experiments.dynamics import ALL_STRATEGIES, run_dynamics_comparison

        result = run_dynamics_comparison(
            preset=args.preset,
            scenario=Scenario(args.scenario),
            minutes=args.minutes,
            rate_per_min=args.rate,
            seed=args.seed,
            window_s=args.window,
            metric=args.metric,
            strategies=tuple(args.strategy) if args.strategy else ALL_STRATEGIES,
            measurement=args.measurement,
            link_estimator=args.estimator,
            sentinel=args.sentinel,
            checkpoint=_checkpoint_policy(args),
            resume=args.resume,
        )
        print(format_series_table(result))
        print()
        print(render_ascii_chart(result))
    elif args.command == "run":
        params = {"r": args.r} if args.strategy == "ebpc" else {}
        if args.profile:
            profiling.enable()
        script = _load_script(args)
        config = SimulationConfig(
            seed=args.seed,
            scenario=Scenario(args.scenario),
            strategy=args.strategy,
            strategy_params=params,
            publishing_rate_per_min=args.rate,
            duration_ms=args.minutes * 60_000.0,
            matcher_backend=args.matcher,
            metrics_backend=args.metrics,
            engine_backend=args.engine,
            shards=args.shards,
            shard_backend=args.shard_backend,
            log_spill=args.log_spill,
            log_chunk_rows=args.log_chunk,
            sentinel=args.sentinel,
        )
        if script is not None:
            config = config.replace(dynamics=script)
        result = run_simulation(
            config,
            checkpoint=_checkpoint_policy(args),
            resume=args.resume,
        )
        print(f"strategy          : {result.strategy}")
        print(f"scenario          : {result.scenario}")
        print(f"published         : {result.published}")
        print(f"delivery rate     : {result.delivery_rate:.4f}")
        print(f"total earning     : {result.earning:.1f}")
        print(f"message number    : {result.message_number}")
        print(f"pruned            : {result.pruned}")
        print(f"mean latency (ms) : {result.mean_latency_ms:.0f}")
        if args.profile and profiling.ACTIVE is not None:
            print()
            print(profiling.disable().format_table())
    elif args.command == "scale":
        from repro.experiments.scale import run_scale_point

        if args.profile:
            profiling.enable()
        point = run_scale_point(
            args.size,
            strategy=args.strategy,
            seed=args.seed,
            rate_per_min=args.rate,
            minutes=args.minutes,
            spill=args.log_spill,
            chunk_rows=args.log_chunk,
            window_s=args.window,
            engine=args.engine,
            shards=args.shards,
            shard_backend=args.shard_backend,
            sentinel=args.sentinel,
            script=_load_script(args),
            checkpoint=_checkpoint_policy(args),
            resume=args.resume,
        )
        print(f"scenario          : scale-{point.scenario}")
        print(f"strategy          : {point.strategy}")
        if point.shards:
            print(f"shards            : {point.shards} ({point.shard_backend})")
        print(f"subscribers       : {point.subscribers}")
        print(f"published         : {point.published}")
        print(f"deliveries        : {point.deliveries}")
        print(f"delivery rate     : {point.delivery_rate:.4f}")
        print(f"total earning     : {point.earning:.1f}")
        print(f"log rows          : {point.log_rows}")
        print(f"spilled chunks    : {point.spilled_chunks}"
              f" ({'spill on' if point.spill else 'in-memory'},"
              f" {point.chunk_rows} rows/chunk)")
        print(f"build / run / ana : {point.build_s:.1f}s / {point.run_s:.1f}s"
              f" / {point.analysis_s:.1f}s")
        print(f"deliveries/s (run): {point.deliveries_per_s:,.0f}")
        print(f"peak RSS          : {point.peak_rss_kb / 1024.0:.0f} MiB")
        print(f"series sha256     : {point.series_sha256}")
        if point.checkpoints:
            print(f"checkpoints       : {point.checkpoints}"
                  f" ({point.checkpoint_write_s:.2f}s total,"
                  f" {point.checkpoint_mb:.1f} MB latest)")
        if args.profile and profiling.ACTIVE is not None:
            print()
            print(profiling.disable().format_table())
    elif args.command == "fuzz":
        from repro.experiments.fuzz import FuzzSpec, format_report, run_fuzz

        if args.smoke:
            spec = FuzzSpec.smoke(
                seed=args.seed, out_dir=args.out, shards=args.shards
            )
        else:
            spec = FuzzSpec(
                seed=args.seed,
                budget=args.budget,
                duration_ms=args.minutes * 60_000.0,
                rate_per_min=args.rate,
                out_dir=args.out,
                shards=args.shards,
            )
        report = run_fuzz(spec)
        print(format_report(report))
        if not report.ok:
            # repro-lint: ignore[RL001] -- CLI elapsed footer, decision-neutral
            print(f"\n[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
            return 1
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)

    # repro-lint: ignore[RL001] -- CLI elapsed footer, decision-neutral
    print(f"\n[{time.perf_counter() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
