"""Single-path routing: minimum mean transmission rate (Section 3.3).

The paper selects, for each message flow, the single path minimising the
*mean* of the path transmission rate.  We realise this as one **sink tree
per subscriber-hosting broker**: Dijkstra from the subscriber's edge broker
with edge weight ``μ`` gives every broker a unique next hop toward that
subscriber, plus the remaining-path parameters ``(NN_p, μ_p, σ_p²)`` that
the subscription-table rows of Section 4.2 carry.

Consistency matters: because routes come from one shortest-path tree per
sink, the suffix of any route is itself a route, so the parameters a broker
advertises agree with the forwarding its downstream brokers actually do.
Ties are broken deterministically (by hop count, then node name) so runs
are seed-reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.network.topology import Topology, TopologyError
from repro.stats.normal import Normal


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """Routing state for one broker toward one sink.

    ``next_hop is None`` iff the broker *is* the sink.  ``nn`` is the
    ``NN_p`` of Section 4.2 — the number of brokers that will still process
    the message (all path nodes after the current one, including the sink).
    ``rate`` is the remaining-path ``TR_p`` distribution.
    """

    next_hop: str | None
    nn: int
    rate: Normal

    @property
    def is_sink(self) -> bool:
        return self.next_hop is None


class SinkTree:
    """Shortest-path tree of routes from every broker toward ``sink``."""

    def __init__(self, sink: str, entries: Mapping[str, RouteEntry]) -> None:
        self.sink = sink
        self._entries = dict(entries)

    def entry(self, broker: str) -> RouteEntry:
        try:
            return self._entries[broker]
        except KeyError:
            raise TopologyError(f"broker {broker!r} has no route to {self.sink!r}") from None

    def has_route(self, broker: str) -> bool:
        return broker in self._entries

    def path_from(self, broker: str) -> list[str]:
        """Full node path ``[broker, ..., sink]`` (for tests/diagnostics)."""
        path = [broker]
        entry = self.entry(broker)
        while entry.next_hop is not None:
            path.append(entry.next_hop)
            entry = self.entry(entry.next_hop)
        return path

    @property
    def brokers(self) -> list[str]:
        return sorted(self._entries)


def compute_sink_tree(topology: Topology, sink: str) -> SinkTree:
    """Dijkstra on mean link rate, rooted at ``sink``.

    Tie-breaking: smaller hop count, then lexicographically smaller next
    hop.  Remaining-path variance is accumulated along the chosen tree
    edges (variances add by link independence).
    """
    if sink not in topology.graph_view():
        raise TopologyError(f"unknown broker {sink!r}")

    # dist: broker -> (mean, hops); parent: broker -> next hop toward sink.
    dist: dict[str, tuple[float, int]] = {sink: (0.0, 0)}
    parent: dict[str, str | None] = {sink: None}
    var: dict[str, float] = {sink: 0.0}
    heap: list[tuple[float, int, str]] = [(0.0, 0, sink)]
    settled: set[str] = set()

    while heap:
        d, hops, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for nbr in topology.neighbors(node):
            rate = topology.link_rate(node, nbr)
            cand = (d + rate.mean, hops + 1)
            known = dist.get(nbr)
            better = known is None or cand < known or (
                cand == known and node < (parent[nbr] or "")
            )
            if nbr not in settled and better:
                dist[nbr] = cand
                parent[nbr] = node
                var[nbr] = var[node] + rate.variance
                heapq.heappush(heap, (cand[0], cand[1], nbr))

    entries = {
        broker: RouteEntry(
            next_hop=parent[broker],
            nn=dist[broker][1],
            rate=Normal(dist[broker][0], var[broker]),
        )
        for broker in dist
    }
    return SinkTree(sink, entries)


def shortest_path(topology: Topology, src: str, dst: str) -> list[str]:
    """Min-mean-TR path ``src -> dst`` (via the dst-rooted sink tree)."""
    return compute_sink_tree(topology, dst).path_from(src)


def k_shortest_paths(
    topology: Topology, src: str, dst: str, k: int, cutoff: int | None = None
) -> list[list[str]]:
    """The ``k`` lowest-mean simple paths (multi-path routing extension).

    Exhaustive enumeration with deterministic ordering — adequate for the
    overlay sizes of the paper (tens of brokers) and used by the multi-path
    ablation; not intended for internet-scale graphs.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    from repro.network.paths import enumerate_simple_paths, path_mean

    scored = sorted(
        ((path_mean(topology, p), len(p), p) for p in enumerate_simple_paths(topology, src, dst, cutoff)),
        key=lambda t: (t[0], t[1], t[2]),
    )
    if not scored:
        raise TopologyError(f"no path {src!r} -> {dst!r}")
    return [p for _, _, p in scored[:k]]
