"""Overlay network substrate: topology, links, routing, measurement.

The paper's system model (Section 3): brokers form a mesh overlay; each
overlay link is a TCP connection whose *transmission rate* ``TR`` (ms per
KB) is normally distributed and independent across links; single-path
routing picks, for every (broker, subscriber) pair, the path minimising the
mean transmission rate.

* :mod:`~repro.network.topology` — static overlay description + builders
  (the paper's 4-layer mesh, acyclic tree, random mesh).
* :mod:`~repro.network.paths` — the ``TR_p ~ N(Σμ, Σσ²)`` path algebra and
  exhaustive path enumeration (used to verify routing optimality).
* :mod:`~repro.network.routing` — min-mean-TR single-path routing as
  per-subscriber sink trees (Dijkstra), plus a k-shortest-paths extension.
* :mod:`~repro.network.link` — the simulation-time channel: serialised
  transmissions with stochastic per-message duration.
* :mod:`~repro.network.measurement` — per-link online parameter estimation
  ("estimated from measured data"), with an oracle mode for the paper's
  known-parameters assumption.
"""

from repro.network.link import DirectedLink, LinkStats
from repro.network.measurement import LinkMonitor, MeasurementMode
from repro.network.paths import (
    enumerate_simple_paths,
    path_distribution,
    path_mean,
    remaining_hops,
)
from repro.network.routing import RouteEntry, SinkTree, k_shortest_paths, shortest_path
from repro.network.topology import (
    LayeredMeshSpec,
    Topology,
    build_acyclic_tree,
    build_layered_mesh,
    build_random_mesh,
)

__all__ = [
    "Topology",
    "LayeredMeshSpec",
    "build_layered_mesh",
    "build_acyclic_tree",
    "build_random_mesh",
    "path_distribution",
    "path_mean",
    "remaining_hops",
    "enumerate_simple_paths",
    "RouteEntry",
    "SinkTree",
    "shortest_path",
    "k_shortest_paths",
    "DirectedLink",
    "LinkStats",
    "LinkMonitor",
    "MeasurementMode",
]
