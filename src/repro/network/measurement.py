"""Link parameter measurement: the "estimated from measured data" pipeline.

Section 3.2: brokers estimate each neighbour link's ``N(μ, σ²)`` rate from
network measurements.  :class:`LinkMonitor` supports two modes:

* ``ORACLE`` — expose the true distribution (the paper's evaluation
  effectively assumes converged estimates; this is the experiments'
  default, keeping figure reproduction free of estimator noise).
* ``ESTIMATED`` — feed every completed transmission's per-KB rate into an
  online estimator and expose its running ``(mean, variance)``; before
  ``min_samples`` observations it falls back to a conservative prior.

The estimated-vs-oracle ablation bench quantifies how much the strategies
lose to estimation error.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.network.link import RATE_FLOOR_MS_PER_KB, DirectedLink
from repro.stats.estimators import (
    EwmaEstimator,
    RateEstimator,
    SlidingWindowEstimator,
    WelfordEstimator,
)
from repro.stats.normal import Normal


class MeasurementMode(enum.Enum):
    """Where schedulers get link parameters from."""

    ORACLE = "oracle"
    ESTIMATED = "estimated"


#: Named estimator factories for config plumbing.  ``welford`` (full
#: history) matches the paper's stationary-link assumption; ``window``
#: and ``ewma`` forget, so they track runtime rate changes (the dynamics
#: scripts' link degradations) instead of converging to the mixture.
ESTIMATOR_FACTORIES: dict[str, Callable[[], RateEstimator]] = {
    "welford": WelfordEstimator,
    "window": SlidingWindowEstimator,
    "ewma": EwmaEstimator,
}


#: Prior used before an estimator has seen ``min_samples`` transmissions:
#: the midpoint of the paper's link parameter ranges.
DEFAULT_PRIOR = Normal(75.0, 20.0 * 20.0)


class LinkMonitor:
    """Per-link-direction rate estimate, oracle or measured."""

    def __init__(
        self,
        link: DirectedLink,
        mode: MeasurementMode = MeasurementMode.ORACLE,
        estimator_factory: Callable[[], RateEstimator] = WelfordEstimator,
        prior: Normal = DEFAULT_PRIOR,
        min_samples: int = 2,
    ) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.link = link
        self.mode = mode
        self.prior = prior
        self.min_samples = min_samples
        self._estimator = estimator_factory()
        # In ORACLE mode the exposed distribution is pinned (and repinned
        # by the link's rate listener on runtime changes): the broker asks
        # for the rate on every send attempt, and rebuilding/branching
        # there is pure overhead.  In ESTIMATED mode the cache is keyed on
        # the monitor's own observation counter — NOT the estimator's
        # ``count``, which saturates for windowed estimators — so the
        # estimate refreshes whenever a transmission completes.
        self._oracle_rate = link.true_rate if mode is MeasurementMode.ORACLE else None
        self._estimate_cache: Normal | None = None
        self._estimate_cache_count = -1
        self._observed = 0
        if mode is MeasurementMode.ESTIMATED:
            link.add_observer(self._on_transmission)
        # Runtime rate changes (failure injection) must reach the pinned
        # ORACLE cache; in ESTIMATED mode the estimator keeps *measuring*
        # its way to the new rate — the monitor never peeks at the truth.
        link.add_rate_listener(self._on_rate_change)

    def _on_transmission(self, size_kb: float, duration_ms: float) -> None:
        self._observed += 1
        self._estimator.observe(duration_ms / size_kb)

    def _on_rate_change(self, rate: Normal) -> None:
        if self.mode is MeasurementMode.ORACLE:
            self._oracle_rate = rate

    @property
    def samples(self) -> int:
        return self._estimator.count

    def rate(self) -> Normal:
        """The distribution schedulers should use for this link direction."""
        if self._oracle_rate is not None:
            return self._oracle_rate
        if self._estimator.count < self.min_samples:
            return self.prior
        if self._observed != self._estimate_cache_count:
            # Floor-guard the estimate: a link driven near rate 0 by a
            # failure script must never surface a non-positive (or NaN)
            # mean to schedulers, whose scoring divides by path rates.
            mean = self._estimator.mean
            variance = self._estimator.variance
            if not (mean >= RATE_FLOOR_MS_PER_KB):  # catches NaN too
                mean = RATE_FLOOR_MS_PER_KB
            if not (variance >= 0.0):
                variance = 0.0
            self._estimate_cache = Normal(mean, variance)
            self._estimate_cache_count = self._observed
        return self._estimate_cache

    def estimation_error(self) -> float:
        """|estimated mean − true mean| (diagnostics/ablation)."""
        return abs(self.rate().mean - self.link.true_rate.mean)
