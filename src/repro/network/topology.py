"""Static overlay topology and the builders used in the evaluation.

A :class:`Topology` is an undirected multigraph-free graph of broker names
with one :class:`~repro.stats.normal.Normal` transmission-rate distribution
per edge (``TR`` in ms/KB, identical in both directions, as for a single
TCP connection).  Publisher and subscriber *attachments* record which edge
broker serves which client; client access links are not modelled, matching
the paper (clients talk to their broker locally).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable

import networkx as nx
import numpy as np

from repro.stats.normal import Normal


class TopologyError(ValueError):
    """Raised on malformed topologies (unknown nodes, duplicate edges...)."""


@dataclass(frozen=True, slots=True)
class LayeredMeshSpec:
    """Parameters of the paper's simulated broker network (Fig. 3).

    Defaults are exactly the ICPP'06 setup: 32 brokers in 4 layers
    (4 / 4 / 8 / 16); every layer-2 broker connects to all layer-1 brokers;
    each layer-3 broker to 2 random layer-2 brokers; each layer-4 broker to
    2 random layer-3 brokers; one publisher per layer-1 broker and 10
    subscribers per layer-4 broker; link mean rate uniform in
    [50, 100] ms/KB with a 20 ms/KB standard deviation.
    """

    layer_sizes: tuple[int, ...] = (4, 4, 8, 16)
    uplinks_per_layer: tuple[int, ...] = (0, 4, 2, 2)  # [0] unused
    publishers_per_edge_broker: int = 1
    subscribers_per_edge_broker: int = 10
    rate_mean_range: tuple[float, float] = (50.0, 100.0)
    rate_std: float = 20.0

    def __post_init__(self) -> None:
        if len(self.layer_sizes) != len(self.uplinks_per_layer):
            raise ValueError("layer_sizes and uplinks_per_layer must align")
        if len(self.layer_sizes) < 2:
            raise ValueError("need at least two layers")
        if any(n <= 0 for n in self.layer_sizes):
            raise ValueError("layer sizes must be positive")
        lo, hi = self.rate_mean_range
        if not 0.0 < lo <= hi:
            raise ValueError(f"bad rate_mean_range {self.rate_mean_range}")
        if self.rate_std < 0.0:
            raise ValueError("rate_std must be non-negative")


class Topology:
    """Undirected broker graph with per-edge rate distributions."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self.publisher_brokers: dict[str, str] = {}  # publisher -> broker
        self.subscriber_brokers: dict[str, str] = {}  # subscriber -> broker
        #: Builder-recorded facts about how the topology came to be
        #: (e.g. how many random chords were actually added).
        self.metadata: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    def add_broker(self, name: str) -> None:
        if name in self._graph:
            raise TopologyError(f"duplicate broker {name!r}")
        self._graph.add_node(name)

    def add_link(self, a: str, b: str, rate: Normal) -> None:
        if a == b:
            raise TopologyError(f"self-link at {a!r}")
        for node in (a, b):
            if node not in self._graph:
                raise TopologyError(f"unknown broker {node!r}")
        if self._graph.has_edge(a, b):
            raise TopologyError(f"duplicate link {a!r}-{b!r}")
        self._graph.add_edge(a, b, rate=rate)

    def attach_publisher(self, publisher: str, broker: str) -> None:
        if broker not in self._graph:
            raise TopologyError(f"unknown broker {broker!r}")
        if publisher in self.publisher_brokers:
            raise TopologyError(f"duplicate publisher {publisher!r}")
        self.publisher_brokers[publisher] = broker

    def attach_subscriber(self, subscriber: str, broker: str) -> None:
        if broker not in self._graph:
            raise TopologyError(f"unknown broker {broker!r}")
        if subscriber in self.subscriber_brokers:
            raise TopologyError(f"duplicate subscriber {subscriber!r}")
        self.subscriber_brokers[subscriber] = broker

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #
    @property
    def brokers(self) -> list[str]:
        return sorted(self._graph.nodes)

    @property
    def broker_count(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def link_count(self) -> int:
        return self._graph.number_of_edges()

    def links(self) -> list[tuple[str, str, Normal]]:
        """All links as sorted ``(a, b, rate)`` with ``a < b``."""
        out = []
        for a, b, data in self._graph.edges(data=True):
            lo, hi = (a, b) if a <= b else (b, a)
            out.append((lo, hi, data["rate"]))
        out.sort(key=lambda t: (t[0], t[1]))
        return out

    def has_link(self, a: str, b: str) -> bool:
        return self._graph.has_edge(a, b)

    def link_rate(self, a: str, b: str) -> Normal:
        try:
            return self._graph.edges[a, b]["rate"]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}") from None

    def set_link_rate(self, a: str, b: str, rate: Normal) -> None:
        """Replace a link's distribution in the static description.

        This mutates the *topology layer only* — a running system built
        from this topology holds its own :class:`DirectedLink` channels.
        Use :meth:`repro.pubsub.system.PubSubSystem.set_link_rate` for
        runtime failure injection; it keeps both layers (and the link
        monitors) in step.
        """
        if not self._graph.has_edge(a, b):
            raise TopologyError(f"no link {a!r}-{b!r}")
        self._graph.edges[a, b]["rate"] = rate

    def neighbors(self, broker: str) -> list[str]:
        if broker not in self._graph:
            raise TopologyError(f"unknown broker {broker!r}")
        return sorted(self._graph.neighbors(broker))

    def is_connected(self) -> bool:
        return self.broker_count > 0 and nx.is_connected(self._graph)

    def graph_view(self) -> nx.Graph:
        """Read-only-by-convention access to the underlying networkx graph."""
        return self._graph

    def subscribers_of(self, broker: str) -> list[str]:
        return sorted(s for s, b in self.subscriber_brokers.items() if b == broker)

    def publishers_of(self, broker: str) -> list[str]:
        return sorted(p for p, b in self.publisher_brokers.items() if b == broker)


# ---------------------------------------------------------------------- #
# Builders.
# ---------------------------------------------------------------------- #
def _draw_rate(rng: np.random.Generator, mean_range: tuple[float, float], std: float) -> Normal:
    mu = float(rng.uniform(*mean_range))
    return Normal(mu, std * std)


def build_layered_mesh(
    rng: np.random.Generator,
    spec: LayeredMeshSpec | None = None,
) -> Topology:
    """Build the paper's layered mesh (Fig. 3) with randomised wiring/rates.

    Broker names are ``B1..B32`` (layer by layer, matching the figure),
    publishers ``P1..P4`` on layer 1, subscribers ``S1..S160`` on layer 4.
    """
    spec = spec or LayeredMeshSpec()
    topo = Topology()
    layers: list[list[str]] = []
    counter = 1
    for size in spec.layer_sizes:
        layer = [f"B{counter + i}" for i in range(size)]
        counter += size
        for name in layer:
            topo.add_broker(name)
        layers.append(layer)

    for level in range(1, len(layers)):
        uplinks = spec.uplinks_per_layer[level]
        parents = layers[level - 1]
        for broker in layers[level]:
            if uplinks >= len(parents):
                chosen = list(parents)
            else:
                idx = rng.choice(len(parents), size=uplinks, replace=False)
                chosen = [parents[i] for i in sorted(idx)]
            for parent in chosen:
                topo.add_link(parent, broker, _draw_rate(rng, spec.rate_mean_range, spec.rate_std))

    pub_id = 1
    for broker in layers[0]:
        for _ in range(spec.publishers_per_edge_broker):
            topo.attach_publisher(f"P{pub_id}", broker)
            pub_id += 1
    sub_id = 1
    for broker in layers[-1]:
        for _ in range(spec.subscribers_per_edge_broker):
            topo.attach_subscriber(f"S{sub_id}", broker)
            sub_id += 1
    return topo


def build_acyclic_tree(
    rng: np.random.Generator,
    broker_count: int = 8,
    publishers: int = 2,
    subscribers: int = 8,
    rate_mean_range: tuple[float, float] = (50.0, 100.0),
    rate_std: float = 20.0,
) -> Topology:
    """Random tree overlay (the Siena/JEDI-style acyclic topology).

    Every broker may serve both publishers and subscribers; clients are
    attached to brokers round-robin over a random permutation.
    """
    if broker_count < 1:
        raise ValueError("broker_count must be positive")
    topo = Topology()
    names = [f"B{i + 1}" for i in range(broker_count)]
    for name in names:
        topo.add_broker(name)
    # Random recursive tree: node i attaches to a uniform earlier node.
    for i in range(1, broker_count):
        parent = names[int(rng.integers(0, i))]
        topo.add_link(parent, names[i], _draw_rate(rng, rate_mean_range, rate_std))
    perm = [names[i] for i in rng.permutation(broker_count)]
    for k in range(publishers):
        topo.attach_publisher(f"P{k + 1}", perm[k % broker_count])
    for k in range(subscribers):
        topo.attach_subscriber(f"S{k + 1}", perm[(publishers + k) % broker_count])
    return topo


def build_random_mesh(
    rng: np.random.Generator,
    broker_count: int = 16,
    extra_links: int = 8,
    publishers: int = 2,
    subscribers: int = 16,
    rate_mean_range: tuple[float, float] = (50.0, 100.0),
    rate_std: float = 20.0,
) -> Topology:
    """Connected random mesh: a random spanning tree plus ``extra_links``
    random chords (so multiple paths exist, exercising path selection)."""
    if broker_count < 2:
        raise ValueError("broker_count must be >= 2")
    topo = build_acyclic_tree(
        rng,
        broker_count=broker_count,
        publishers=publishers,
        subscribers=subscribers,
        rate_mean_range=rate_mean_range,
        rate_std=rate_std,
    )
    names = topo.brokers
    added = 0
    attempts = 0
    max_possible = broker_count * (broker_count - 1) // 2 - (broker_count - 1)
    target = min(extra_links, max_possible)
    while added < target and attempts < 100 * (target + 1):
        attempts += 1
        i, j = rng.integers(0, broker_count, size=2)
        a, b = names[int(i)], names[int(j)]
        if a == b or topo.has_link(a, b):
            continue
        topo.add_link(a, b, _draw_rate(rng, rate_mean_range, rate_std))
        added += 1
    topo.metadata["chords_requested"] = extra_links
    topo.metadata["chords_added"] = added
    if added < extra_links:
        warnings.warn(
            f"build_random_mesh: added {added} of {extra_links} requested "
            f"chords ({max_possible} possible on {broker_count} brokers; "
            f"attempt budget {100 * (target + 1)}); see topology.metadata",
            RuntimeWarning,
            stacklevel=2,
        )
    return topo


def build_from_edges(
    edges: Iterable[tuple[str, str, Normal]],
    publishers: dict[str, str] | None = None,
    subscribers: dict[str, str] | None = None,
) -> Topology:
    """Explicit construction, mostly for tests and small examples."""
    topo = Topology()
    seen: set[str] = set()
    edges = list(edges)
    for a, b, _ in edges:
        for node in (a, b):
            if node not in seen:
                topo.add_broker(node)
                seen.add(node)
    for a, b, rate in edges:
        topo.add_link(a, b, rate)
    for pub, broker in (publishers or {}).items():
        topo.attach_publisher(pub, broker)
    for sub, broker in (subscribers or {}).items():
        topo.attach_subscriber(sub, broker)
    return topo
