"""Path algebra: composing link distributions into path distributions.

Section 3.2 of the paper: link rates are independent normals, so for a path
``p = l_1 .. l_n`` the rate is ``TR_p ~ N(Σ μ_i, Σ σ_i²)``; a message of
``m`` KB has propagation delay ``m · TR_p``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import networkx as nx

from repro.network.topology import Topology, TopologyError
from repro.stats.normal import Normal


def path_distribution(topology: Topology, path: Sequence[str]) -> Normal:
    """``TR_p`` of a node path (empty/single-node paths are degenerate zero).

    Raises :class:`TopologyError` if consecutive nodes are not linked.
    """
    return Normal.sum(
        topology.link_rate(a, b) for a, b in zip(path, path[1:])
    )


def path_mean(topology: Topology, path: Sequence[str]) -> float:
    """Mean of ``TR_p`` — the single-path routing cost metric."""
    return path_distribution(topology, path).mean


def remaining_hops(path: Sequence[str]) -> int:
    """``NN_p``: nodes on the path that will still process the message.

    For a path ``[current, b1, ..., edge_broker]`` every node *after* the
    current broker runs its processing module (the current broker already
    has), so ``NN_p = len(path) - 1``.  A local subscriber (single-node
    path) has ``NN_p = 0``.
    """
    if not path:
        return 0
    return len(path) - 1


def enumerate_simple_paths(
    topology: Topology, src: str, dst: str, cutoff: int | None = None
) -> Iterator[list[str]]:
    """All simple paths between two brokers (exhaustive; small graphs only).

    Used by tests to certify routing optimality and by the multi-path
    routing extension.
    """
    graph = topology.graph_view()
    for node in (src, dst):
        if node not in graph:
            raise TopologyError(f"unknown broker {node!r}")
    if src == dst:
        yield [src]
        return
    yield from nx.all_simple_paths(graph, src, dst, cutoff=cutoff)


def best_path_exhaustive(topology: Topology, src: str, dst: str) -> list[str]:
    """Minimum-mean-TR path by brute force (test oracle for Dijkstra).

    Ties broken by (path length, lexicographic node sequence) so the result
    is deterministic.
    """
    best: tuple[float, int, list[str]] | None = None
    for path in enumerate_simple_paths(topology, src, dst):
        key = (path_mean(topology, path), len(path), path)
        if best is None or key < (best[0], best[1], best[2]):
            best = key
    if best is None:
        raise TopologyError(f"no path {src!r} -> {dst!r}")
    return best[2]
