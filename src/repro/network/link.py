"""Simulation-time link channel.

Brokers exchange messages over TCP (Section 3.1), so each direction of an
overlay link serialises its traffic: one message in flight at a time, and
the transmission time of an ``m``-KB message is ``m · tr`` with ``tr`` a
fresh draw from the link's (positivity-truncated) normal rate.  The queue
*discipline* — which waiting message goes next — is the broker's job; the
link only models the channel and reports per-transmission measurements to
whoever is listening (the measurement substrate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.stats.normal import Normal
from repro.stats.sampling import sample_positive_normal

#: Smallest per-KB rate mean (ms/KB) a link may be driven to.  Failure
#: scripts that push a rate toward zero are clamped here instead of
#: producing zero-duration transmissions (rate 0 would mean an infinitely
#: fast link, and downstream per-KB arithmetic must never divide by it).
RATE_FLOOR_MS_PER_KB = 1e-6


def _validate_rate(rate: Normal) -> Normal:
    """Reject nonsense rates, clamp near-zero means up to the floor."""
    if not math.isfinite(rate.mean) or not math.isfinite(rate.variance):
        raise ValueError(f"link rate must be finite, got {rate}")
    if rate.mean < RATE_FLOOR_MS_PER_KB:
        return Normal(RATE_FLOOR_MS_PER_KB, rate.variance)
    return rate


@dataclass
class LinkStats:
    """Running totals for one link direction."""

    transmissions: int = 0
    kilobytes: float = 0.0
    busy_time: float = 0.0

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent transmitting."""
        if elapsed <= 0.0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class DirectedLink:
    """One direction of an overlay link (e.g. ``B1 -> B5``).

    ``true_rate`` is the ground-truth distribution the channel samples
    from; schedulers consume the (possibly estimated) distribution exposed
    by the measurement layer, never this object directly.
    """

    __slots__ = (
        "src", "dst", "true_rate", "_rng", "busy", "up", "stats", "_observers",
        "_rate_listeners",
    )

    def __init__(self, src: str, dst: str, true_rate: Normal, rng: np.random.Generator) -> None:
        self.src = src
        self.dst = dst
        self.true_rate = _validate_rate(true_rate)
        self._rng = rng
        self.busy = False
        self.up = True
        self.stats = LinkStats()
        self._observers: list[Callable[[float, float], None]] = []
        self._rate_listeners: list[Callable[[Normal], None]] = []

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def add_observer(self, observer: Callable[[float, float], None]) -> None:
        """Register a ``(size_kb, duration_ms)`` callback per transmission."""
        self._observers.append(observer)

    def add_rate_listener(self, listener: Callable[[Normal], None]) -> None:
        """Register a callback fired when the *true* rate changes at runtime
        (failure injection / recovery — see :meth:`set_true_rate`)."""
        self._rate_listeners.append(listener)

    def set_true_rate(self, rate: Normal) -> None:
        """Runtime rate change: the channel samples the new distribution
        from the next transmission on, and rate listeners (the measurement
        layer) are notified so pinned oracle caches can't go stale.

        Rates at or below :data:`RATE_FLOOR_MS_PER_KB` are clamped to the
        floor — a failure script degrading a link toward zero gets an
        absurdly fast link, never a divide-by-zero or a zero-duration send.
        """
        rate = _validate_rate(rate)
        self.true_rate = rate
        for listener in self._rate_listeners:
            listener(rate)

    def fail(self) -> None:
        """Hard-down this direction: no new transmission may start.

        An in-flight transmission (``busy``) is allowed to complete — TCP
        delivers the segment it already pushed; the fault bites on the
        *next* send attempt.  Idempotent.
        """
        self.up = False

    def restore(self) -> None:
        """Bring this direction back up.  Idempotent."""
        self.up = True

    def draw_transmission_time(self, size_kb: float) -> float:
        """Sample the time (ms) to push ``size_kb`` through this direction.

        The per-KB rate is drawn once per message (TCP throughput is highly
        correlated within one transfer), then scaled by the size.
        """
        if size_kb <= 0.0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        per_kb = sample_positive_normal(self._rng, self.true_rate.mean, self.true_rate.std)
        duration = size_kb * per_kb
        self.stats.transmissions += 1
        self.stats.kilobytes += size_kb
        self.stats.busy_time += duration
        for observer in self._observers:
            observer(size_kb, duration)
        return duration

    def acquire(self) -> None:
        """Mark the channel busy; caller must release when the send ends."""
        if self.busy:
            raise RuntimeError(f"link {self.name} is already busy")
        self.busy = True

    def release(self) -> None:
        if not self.busy:
            raise RuntimeError(f"link {self.name} is not busy")
        self.busy = False
