"""Simulation-time link channel.

Brokers exchange messages over TCP (Section 3.1), so each direction of an
overlay link serialises its traffic: one message in flight at a time, and
the transmission time of an ``m``-KB message is ``m · tr`` with ``tr`` a
fresh draw from the link's (positivity-truncated) normal rate.  The queue
*discipline* — which waiting message goes next — is the broker's job; the
link only models the channel and reports per-transmission measurements to
whoever is listening (the measurement substrate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.stats.normal import Normal
from repro.stats.sampling import sample_positive_normal


@dataclass
class LinkStats:
    """Running totals for one link direction."""

    transmissions: int = 0
    kilobytes: float = 0.0
    busy_time: float = 0.0

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent transmitting."""
        if elapsed <= 0.0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class DirectedLink:
    """One direction of an overlay link (e.g. ``B1 -> B5``).

    ``true_rate`` is the ground-truth distribution the channel samples
    from; schedulers consume the (possibly estimated) distribution exposed
    by the measurement layer, never this object directly.
    """

    __slots__ = (
        "src", "dst", "true_rate", "_rng", "busy", "stats", "_observers",
        "_rate_listeners",
    )

    def __init__(self, src: str, dst: str, true_rate: Normal, rng: np.random.Generator) -> None:
        self.src = src
        self.dst = dst
        self.true_rate = true_rate
        self._rng = rng
        self.busy = False
        self.stats = LinkStats()
        self._observers: list[Callable[[float, float], None]] = []
        self._rate_listeners: list[Callable[[Normal], None]] = []

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def add_observer(self, observer: Callable[[float, float], None]) -> None:
        """Register a ``(size_kb, duration_ms)`` callback per transmission."""
        self._observers.append(observer)

    def add_rate_listener(self, listener: Callable[[Normal], None]) -> None:
        """Register a callback fired when the *true* rate changes at runtime
        (failure injection / recovery — see :meth:`set_true_rate`)."""
        self._rate_listeners.append(listener)

    def set_true_rate(self, rate: Normal) -> None:
        """Runtime rate change: the channel samples the new distribution
        from the next transmission on, and rate listeners (the measurement
        layer) are notified so pinned oracle caches can't go stale."""
        self.true_rate = rate
        for listener in self._rate_listeners:
            listener(rate)

    def draw_transmission_time(self, size_kb: float) -> float:
        """Sample the time (ms) to push ``size_kb`` through this direction.

        The per-KB rate is drawn once per message (TCP throughput is highly
        correlated within one transfer), then scaled by the size.
        """
        if size_kb <= 0.0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        per_kb = sample_positive_normal(self._rng, self.true_rate.mean, self.true_rate.std)
        duration = size_kb * per_kb
        self.stats.transmissions += 1
        self.stats.kilobytes += size_kb
        self.stats.busy_time += duration
        for observer in self._observers:
            observer(size_kb, duration)
        return duration

    def acquire(self) -> None:
        """Mark the channel busy; caller must release when the send ends."""
        if self.busy:
            raise RuntimeError(f"link {self.name} is already busy")
        self.busy = True

    def release(self) -> None:
        if not self.busy:
            raise RuntimeError(f"link {self.name} is not busy")
        self.busy = False
