"""Rule registry: id → check function + metadata.

A rule is a plain function ``check(ctx: ModuleContext, options: dict)
-> Iterator[Finding]`` registered with the :func:`rule` decorator.
Registration happens at import of :mod:`repro.lint.rules`, so the
registry is complete the moment the engine imports it — no entry-point
machinery, no dynamic discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import ModuleContext
    from repro.lint.diagnostics import Finding

CheckFn = Callable[["ModuleContext", dict], Iterator["Finding"]]


@dataclass(frozen=True)
class Rule:
    rule_id: str
    name: str
    summary: str
    #: fnmatch patterns the rule applies to by default (None = everywhere).
    default_paths: tuple[str, ...] | None
    check: CheckFn


#: rule_id -> Rule, insertion-ordered (registration order is file order).
RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    name: str,
    summary: str,
    default_paths: Iterable[str] | None = None,
) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``rule_id``; duplicate ids are a bug."""

    def decorate(check: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            summary=summary,
            default_paths=tuple(default_paths) if default_paths is not None else None,
            check=check,
        )
        return check

    return decorate


def all_rules() -> list[Rule]:
    """Registered rules in id order (import triggers registration)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [RULES[k] for k in sorted(RULES)]
