"""Shared per-module analysis context for rules.

One parse, one parent map, one import table — every rule reads the same
:class:`ModuleContext` instead of re-walking the file.  The context also
carries the small cross-rule vocabulary: *dotted-name resolution through
import aliases* (``np.random.rand`` → ``numpy.random.rand`` whatever the
module called numpy) and *ancestor iteration* (rules that exempt guarded
or wrapped call sites need the enclosing statements).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class ModuleContext:
    path: str  # normalized project-relative path (config.normalize_path)
    tree: ast.Module
    source: str
    #: child node -> parent node, for ancestor walks.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local alias -> canonical module path ("np" -> "numpy").
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> canonical dotted origin ("pc" -> "time.perf_counter").
    name_origins: dict[str, str] = field(default_factory=dict)
    #: function node -> names of functions def'd anywhere inside it.
    nested_defs: dict[ast.AST, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, tree=tree, source=source)
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    ctx.name_origins[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = {
                    inner.name
                    for inner in ast.walk(node)
                    if inner is not node
                    and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                ctx.nested_defs[node] = names
        return ctx

    # ------------------------------------------------------------------ #
    # Name resolution.
    # ------------------------------------------------------------------ #
    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute chain, through aliases.

        ``Name('pc')`` with ``from time import perf_counter as pc`` →
        ``"time.perf_counter"``; ``np.random.rand`` → ``"numpy.random.rand"``.
        Returns ``None`` when the chain is not rooted in a plain name
        (calls on ``self.x``, subscripts, call results...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.reverse()
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        if root in self.name_origins:
            return ".".join([self.name_origins[root], *parts])
        return ".".join([root, *parts])

    # ------------------------------------------------------------------ #
    # Tree navigation.
    # ------------------------------------------------------------------ #
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        while node in self.parents:
            node = self.parents[node]
            yield node

    def enclosing_functions(self, node: ast.AST) -> Iterator[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield anc

    def is_nested_def_name(self, node: ast.AST, name: str) -> bool:
        """Whether ``name`` at this site refers to a function def'd inside
        an enclosing function (a closure candidate — pickles by value,
        i.e. not at all)."""
        return any(
            name in self.nested_defs.get(fn, ())
            for fn in self.enclosing_functions(node)
        )
