"""Reporters: text (human), json (golden-testable), github (CI
file:line annotations)."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

FORMATS = ("text", "json", "github")


def format_report(report: LintReport, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2, sort_keys=True)
    lines: list[str] = []
    if fmt == "github":
        lines.extend(f.format_github() for f in report.findings)
        lines.extend(f"::error ::{err}" for err in report.errors)
        return "\n".join(lines)
    lines.extend(f.format_text() for f in report.findings)
    lines.extend(f"error: {err}" for err in report.errors)
    lines.append(
        f"{len(report.findings)} finding(s), {report.suppressed} suppressed, "
        f"{report.checked_files} file(s) checked"
    )
    return "\n".join(lines)
