"""Path-scoped rule configuration.

A :class:`LintConfig` is a list of :class:`RuleScope` entries matched
against the *normalized* module path (the part starting at ``repro/``
when the file lives in the package, the bare filename otherwise — so
scopes written once work from any checkout root, and fixture files in
temp dirs can still be scoped by name).  Later scopes win, mirroring the
"most specific last" layering of per-module tool configs.

Each rule also declares ``default_paths``: fnmatch patterns naming where
the invariant applies at all (``None`` = everywhere).  A scope can then
*disable* a rule somewhere it would apply (``core/profiling.py`` owns
the clock; ``des/rng.py`` owns seeding) or *enable* one outside its
default paths, and can set per-rule options (e.g. ``RL003`` dict-mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import PurePosixPath


def normalize_path(path: str) -> str:
    """Project-relative posix path: from the ``repro/`` package root when
    present, else the path as given (fixtures, scratch files)."""
    posix = PurePosixPath(str(path).replace("\\", "/"))
    parts = posix.parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            return str(PurePosixPath(*parts[i:]))
    return str(posix)


def path_matches(normalized: str, patterns: tuple[str, ...]) -> bool:
    """True when any fnmatch pattern matches the normalized path.

    A pattern ending in ``/*`` also matches arbitrarily deep descendants
    (fnmatch's ``*`` does not cross ``/`` boundaries in spirit here, so
    ``repro/des/*`` is widened to the whole subtree).
    """
    for pattern in patterns:
        if fnmatch(normalized, pattern):
            return True
        if pattern.endswith("/*") and normalized.startswith(pattern[:-1]):
            return True
    return False


@dataclass(frozen=True)
class RuleScope:
    """One path-scoped adjustment: disable/enable rules, set options."""

    pattern: str
    disable: frozenset[str] = frozenset()
    enable: frozenset[str] = frozenset()
    options: dict[str, dict[str, object]] = field(default_factory=dict)
    reason: str = ""

    def matches(self, normalized: str) -> bool:
        return path_matches(normalized, (self.pattern,))


@dataclass(frozen=True)
class LintConfig:
    """Scopes applied in order; later entries override earlier ones."""

    scopes: tuple[RuleScope, ...] = ()
    #: Restrict the run to these rule ids (None = all registered).
    select: frozenset[str] | None = None

    def rule_applies(self, rule: "object", path: str) -> bool:
        """Whether ``rule`` runs on ``path`` under this config."""
        rule_id = rule.rule_id  # type: ignore[attr-defined]
        if self.select is not None and rule_id not in self.select:
            return False
        default_paths = rule.default_paths  # type: ignore[attr-defined]
        applies = default_paths is None or path_matches(path, default_paths)
        for scope in self.scopes:
            if not scope.matches(path):
                continue
            if rule_id in scope.disable:
                applies = False
            if rule_id in scope.enable:
                applies = True
        return applies

    def options_for(self, rule_id: str, path: str) -> dict[str, object]:
        """Merged per-rule options from every matching scope, in order."""
        merged: dict[str, object] = {}
        for scope in self.scopes:
            if scope.matches(path):
                merged.update(scope.options.get(rule_id, {}))
        return merged

    def with_select(self, rule_ids: frozenset[str] | None) -> "LintConfig":
        return LintConfig(scopes=self.scopes, select=rule_ids)


#: The repo's committed configuration.  Deliberate architectural
#: exceptions live here (whole modules that *own* an invariant);
#: site-level exceptions use ``# repro-lint: ignore[...]`` comments.
DEFAULT_CONFIG = LintConfig(
    scopes=(
        RuleScope(
            pattern="repro/core/profiling.py",
            disable=frozenset({"RL001"}),
            reason="the profiling subsystem is the one sanctioned clock owner",
        ),
        RuleScope(
            pattern="repro/des/rng.py",
            disable=frozenset({"RL002"}),
            reason="the named-stream registry is the one sanctioned seeding site",
        ),
    ),
)
