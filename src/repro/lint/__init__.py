"""``repro lint``: the determinism & fork-safety static analyzer.

Every performance tier this reproduction has shipped — vector matcher,
fused engine, sharded workers, checkpoint/restore — rests on one
discipline: *byte-identical decisions across backends*.  That discipline
decomposes into a handful of concrete, mechanically checkable rules (no
wall-clock in sim paths, no global RNG, no unordered iteration feeding
scheduling, no closures in DES events, picklable fork-boundary state,
left-fold float accounting).  The differential tests catch violations
*after* they ship; this package catches them at the AST.

Public API (pytest-importable)::

    from repro.lint import lint_paths, DEFAULT_CONFIG
    report = lint_paths(["src/repro"])
    assert not report.findings

CLI::

    python -m repro lint src/           # text reporter, exit 1 on findings
    python -m repro lint --format json src/

Suppress a deliberate exception on its own line (or the line above)::

    t0 = perf_counter()  # repro-lint: ignore[RL001] -- decision-neutral timing

Rules are registered in :mod:`repro.lint.rules`; each encodes one
invariant the codebase already relies on (see ``README.md`` §"Static
analysis" for the catalogue).
"""

from __future__ import annotations

from repro.lint.config import DEFAULT_CONFIG, LintConfig, RuleScope
from repro.lint.diagnostics import Finding
from repro.lint.engine import LintReport, lint_file, lint_paths
from repro.lint.registry import RULES, Rule, all_rules

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "RuleScope",
    "all_rules",
    "lint_file",
    "lint_paths",
]
