"""``python -m repro lint`` — argument handling for the analyzer.

Kept separate from :mod:`repro.cli` so the analyzer stays importable
(and testable) without the simulation stack, and so ``repro.cli`` only
pays the import when the subcommand is actually used.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.config import DEFAULT_CONFIG
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.report import FORMATS, format_report


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="report format (github emits CI file:line annotations)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Exit code: 0 clean, 1 findings, 2 usage/parse errors."""
    if args.list_rules:
        for rule in all_rules():
            scope = (
                ", ".join(rule.default_paths)
                if rule.default_paths is not None
                else "everywhere"
            )
            print(f"{rule.rule_id} {rule.name:<20} {rule.summary}  [{scope}]")
        return 0
    config = DEFAULT_CONFIG
    if args.rules:
        wanted = frozenset(part.strip() for part in args.rules.split(",") if part.strip())
        known = set(r.rule_id for r in all_rules())
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        config = config.with_select(wanted)
    report = lint_paths(args.paths, config)
    output = format_report(report, args.format)
    if output:
        print(output)
    if report.errors:
        return 2
    return 0 if not report.findings else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & fork-safety static analyzer",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
