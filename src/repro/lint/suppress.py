"""``# repro-lint: ignore[...]`` suppression comments.

A suppression silences findings reported on the comment's own physical
line; a comment that *is* the whole line (only whitespace before the
``#``) also covers the line below it, so multi-line statements can carry
their annotation above the flagged call::

    t0 = perf_counter()  # repro-lint: ignore[RL001] -- decision-neutral

    # repro-lint: ignore[RL003] -- replica set, order never reaches scheduling
    for name in replicas:
        ...

``ignore`` with no bracket silences every rule on the line; ids are
comma-separated and case-sensitive.  Comments are found with
``tokenize`` so strings containing the marker never suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Sentinel meaning "all rules suppressed on this line".
ALL_RULES = "*"

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]*)\])?"
)


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Physical line (1-based) → rule ids suppressed there."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.start[1], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # partial file: best-effort regex per line
        comments = [
            (i, line.find("#"), line[line.find("#"):])
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    lines = source.splitlines()
    for line_no, col, text in comments:
        match = _PATTERN.search(text)
        if match is None:
            continue
        ids_text = match.group("ids")
        if ids_text is None:
            ids = {ALL_RULES}
        else:
            ids = {part.strip() for part in ids_text.split(",") if part.strip()}
            if not ids:
                ids = {ALL_RULES}
        out.setdefault(line_no, set()).update(ids)
        own_line = line_no <= len(lines) and not lines[line_no - 1][:col].strip()
        if own_line:
            out.setdefault(line_no + 1, set()).update(ids)
    return {line: frozenset(ids) for line, ids in out.items()}


def is_suppressed(
    table: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    ids = table.get(line)
    return ids is not None and (rule_id in ids or ALL_RULES in ids)
