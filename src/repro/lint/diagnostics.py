"""Finding records emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule fired at ``path:line:col``.

    Ordered ``(path, line, col, rule)`` so reports are stable independent
    of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def format_github(self) -> str:
        """GitHub Actions workflow-command annotation (file:line in the UI)."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
