"""The per-file runner: parse once, run applicable rules, apply
suppressions, aggregate a report."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.config import DEFAULT_CONFIG, LintConfig, normalize_path
from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import all_rules
from repro.lint.suppress import is_suppressed, suppressions


@dataclass
class LintReport:
    """Everything a reporter or a test needs from one run."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "checked_files": self.checked_files,
            "suppressed": self.suppressed,
            "errors": list(self.errors),
            "findings": [f.to_dict() for f in self.findings],
        }


def lint_source(
    source: str, path: str, config: LintConfig = DEFAULT_CONFIG
) -> tuple[list[Finding], int]:
    """Findings + suppressed-count for one module's source text."""
    normalized = normalize_path(path)
    ctx = ModuleContext.build(normalized, source)
    table = suppressions(source)
    kept: list[Finding] = []
    silenced = 0
    for rule in all_rules():
        if not config.rule_applies(rule, normalized):
            continue
        options = config.options_for(rule.rule_id, normalized)
        for finding in rule.check(ctx, options):
            if is_suppressed(table, finding.line, finding.rule):
                silenced += 1
            else:
                kept.append(finding)
    kept.sort()
    return kept, silenced


def lint_file(
    path: str | Path, config: LintConfig = DEFAULT_CONFIG
) -> tuple[list[Finding], int]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), config)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/dirs to a sorted, de-duplicated list of .py files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.update(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig = DEFAULT_CONFIG
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    report = LintReport()
    for path in iter_python_files(list(paths)):
        try:
            findings, silenced = lint_file(path, config)
        except SyntaxError as exc:
            report.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        report.checked_files += 1
        report.suppressed += silenced
        report.findings.extend(findings)
    report.findings.sort()
    return report
