"""RL003 ordered-iteration: no hash-order iteration near scheduling.

Set iteration order depends on insertion history and hashing and is not
part of the decision contract; a ``for`` over a set whose body schedules
events, draws RNG, or appends to a journal makes the run order an
accident.  The discipline throughout ``des/``, ``pubsub/``, ``sim/`` and
``workload/`` is ``for x in sorted(s)`` (every cascade wave, neighbor
fan-out and replica sync already does this).  The rule flags iteration
over expressions *statically known* to be sets — literals,
comprehensions, ``set()``/``frozenset()`` calls, locals and ``self.``
attributes only ever assigned such values — at ``for``/comprehension
positions and inside order-materialising calls (``list``, ``tuple``,
``enumerate``, ``zip``, ``iter``).

Dicts preserve insertion order (itself deterministic under the oracle
discipline), so dict iteration is only flagged with the per-path option
``{"dicts": True}`` for modules that must be robust even to insertion-
order drift.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

DEFAULT_PATHS = (
    "repro/des/*",
    "repro/pubsub/*",
    "repro/sim/*",
    "repro/workload/*",
)

_SET_CALLS = frozenset({"set", "frozenset"})
_DICT_CALLS = frozenset(
    {"dict", "collections.defaultdict", "defaultdict", "collections.Counter", "Counter"}
)
_DICT_VIEWS = frozenset({"keys", "values", "items"})
_MATERIALISERS = frozenset({"list", "tuple", "enumerate", "zip", "iter"})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

SET_KIND = "set"
DICT_KIND = "dict"


def _annotation_kind(node: ast.expr | None, ctx: ModuleContext) -> str | None:
    if node is None:
        return None
    base = node
    if isinstance(base, ast.Subscript):
        base = base.value
    resolved = ctx.resolve(base) if isinstance(base, (ast.Name, ast.Attribute)) else None
    if resolved in {"set", "frozenset", "typing.Set", "typing.FrozenSet"}:
        return SET_KIND
    if resolved in {"dict", "typing.Dict", "collections.defaultdict", "collections.Counter"}:
        return DICT_KIND
    return None


class _Classifier:
    """Best-effort kind inference for names and ``self.`` attributes.

    Conservative: a binding is set-/dict-kind only when *every* assignment
    to it (within its scope) has that syntactic kind; one unknown
    assignment poisons it to "unknown" and the rule stays silent.
    """

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        #: (scope-node-or-None, name) -> kind or "" (poisoned)
        self.names: dict[tuple[ast.AST | None, str], str] = {}
        #: (class-node, attr) -> kind or "" (poisoned)
        self.attrs: dict[tuple[ast.AST, str], str] = {}
        self._collect()

    def expr_kind(self, node: ast.expr, scope: ast.AST | None) -> str | None:
        """Kind of an expression, or None when unknown."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return SET_KIND
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return DICT_KIND
        if isinstance(node, ast.Call):
            resolved = self.ctx.resolve(node.func)
            if resolved in _SET_CALLS:
                return SET_KIND
            if resolved in _DICT_CALLS:
                return DICT_KIND
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEWS
                and not node.args
            ):
                return DICT_KIND  # mapping view — flagged only in dicts mode
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            left = self.expr_kind(node.left, scope)
            right = self.expr_kind(node.right, scope)
            if SET_KIND in (left, right):
                return SET_KIND
            return None
        if isinstance(node, ast.Name):
            kind = self._lookup_name(node.id, scope)
            return kind or None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            cls = self._enclosing_class(node)
            if cls is not None:
                kind = self.attrs.get((cls, node.attr), "")
                return kind or None
        return None

    # -------------------------------------------------------------- #
    def _lookup_name(self, name: str, scope: ast.AST | None) -> str:
        while True:
            if (scope, name) in self.names:
                return self.names[(scope, name)]
            if scope is None:
                return ""
            scope = self._parent_scope(scope)

    def _parent_scope(self, scope: ast.AST) -> ast.AST | None:
        for anc in self.ctx.ancestors(scope):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def _enclosing_scope(self, node: ast.AST) -> ast.AST | None:
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def _enclosing_class(self, node: ast.AST) -> ast.AST | None:
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def _note(self, key: tuple, kind: str | None, table: dict) -> None:
        new = kind or ""
        if key in table and table[key] != new:
            table[key] = ""  # conflicting assignments: poisoned
        else:
            table[key] = new

    def _collect(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Assign):
                scope = self._enclosing_scope(node)
                kind = self.expr_kind(node.value, scope)
                for target in node.targets:
                    self._record_target(target, kind, scope)
            elif isinstance(node, ast.AnnAssign):
                scope = self._enclosing_scope(node)
                kind = _annotation_kind(node.annotation, self.ctx)
                if kind is None and node.value is not None:
                    kind = self.expr_kind(node.value, scope)
                self._record_target(node.target, kind, scope)
            elif isinstance(node, ast.AugAssign):
                # ``s |= other`` keeps the kind; anything else poisons.
                if not isinstance(node.op, _SET_BINOPS):
                    scope = self._enclosing_scope(node)
                    self._record_target(node.target, None, scope)

    def _record_target(
        self, target: ast.expr, kind: str | None, scope: ast.AST | None
    ) -> None:
        if isinstance(target, ast.Name):
            self._note((scope, target.id), kind, self.names)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            cls = self._enclosing_class(target)
            if cls is not None:
                self._note((cls, target.attr), kind, self.attrs)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, None, scope)


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.expr, str]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for loop"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, "comprehension"
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in _MATERIALISERS:
                for arg in node.args:
                    yield arg, f"{name}()"


@rule(
    "RL003",
    "ordered-iteration",
    "hash-order set/dict iteration where order can reach scheduling",
    default_paths=DEFAULT_PATHS,
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    flag_dicts = bool(options.get("dicts", False))
    classifier = _Classifier(ctx)
    for iter_expr, where in _iteration_sites(ctx.tree):
        scope = classifier._enclosing_scope(iter_expr)
        kind = classifier.expr_kind(iter_expr, scope)
        if kind == SET_KIND or (kind == DICT_KIND and flag_dicts):
            noun = "set" if kind == SET_KIND else "dict"
            yield Finding(
                path=ctx.path,
                line=iter_expr.lineno,
                col=iter_expr.col_offset,
                rule="RL003",
                message=(
                    f"{noun} iterated in {where} without sorted(); hash order "
                    "is not part of the decision contract — wrap the iterable "
                    "in sorted(...) or suppress with the reason order cannot "
                    "reach scheduling or RNG draws."
                ),
            )
