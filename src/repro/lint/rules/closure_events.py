"""RL004 no-closure-events: DES event actions must pickle by reference.

Checkpoint/restore (PR 7) serializes the live DES heap; pending ``Event``
actions therefore must be picklable — ``functools.partial`` of a bound
method or a module-level function, never a lambda or a function def'd
inside another function (closures pickle not-at-all).  A closure handed
to ``schedule()`` works fine right up until the first ``--checkpoint``
run dies mid-experiment.  This rule makes the PR 7 hand-sweep permanent:
it flags lambdas and nested-def names passed as the action argument of
any ``schedule``/``schedule_at`` call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

_SCHEDULE_ATTRS = frozenset({"schedule", "schedule_at"})


def _action_argument(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "action":
            return kw.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _describe(node: ast.expr, ctx: ModuleContext) -> str | None:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name) and ctx.is_nested_def_name(node, node.id):
        return f"nested function {node.id!r}"
    return None


@rule(
    "RL004",
    "no-closure-events",
    "lambda / nested def scheduled as a DES event action",
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SCHEDULE_ATTRS):
            continue
        action = _action_argument(node)
        if action is None:
            continue
        what = _describe(action, ctx)
        if what is None:
            continue
        yield Finding(
            path=ctx.path,
            line=action.lineno,
            col=action.col_offset,
            rule="RL004",
            message=(
                f"{what} scheduled as a DES event action; closures do not "
                "pickle, so the first checkpoint of this run fails — use "
                "functools.partial of a bound method or a module-level "
                "function."
            ),
        )
