"""Rule modules; importing this package registers every rule.

Each module encodes one invariant the codebase already relies on — see
the module docstrings for the failure mode each rule prevents.
"""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    closure_events,
    float_fold,
    fork_safety,
    global_rng,
    ordered_iteration,
    wallclock,
)
