"""RL002 no-global-rng: every draw comes from a named stream.

Paired strategy comparison needs the *workload* bit-identical across
runs, which the project gets from ``des/rng.py``'s named
``SeedSequence``-spawned streams.  A draw from the process-global RNG
(``random.random()``, ``np.random.rand()``) is invisible to that
registry: it perturbs other draws, breaks replay after checkpoint
restore, and silently couples modules through shared hidden state.
Constructing *seeded generator objects* (``default_rng``,
``SeedSequence``, bit generators) is allowed — that is how streams are
made — and ``des/rng.py`` itself is exempted by the default config.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

#: numpy.random names that construct seeded state rather than draw from
#: the global stream.
ALLOWED_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@rule(
    "RL002",
    "no-global-rng",
    "draw from the process-global RNG instead of a named stream",
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        offender: str | None = None
        if resolved.startswith("random."):
            offender = resolved
        elif resolved.startswith("numpy.random."):
            leaf = resolved.rsplit(".", 1)[1]
            if leaf not in ALLOWED_CONSTRUCTORS:
                offender = resolved
        if offender is None:
            continue
        yield Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule="RL002",
            message=(
                f"global-RNG call {offender}(); draw from a named stream "
                "(RngStreams.get(name)) so workloads stay bit-identical "
                "across runs and checkpoint restores."
            ),
        )
