"""RL001 no-wallclock: real time must never reach a simulation decision.

The DES owns time (``Simulator.now``); any read of the host clock inside
sim-path code is a nondeterminism hazard — two runs (or the sequential
oracle vs the sharded engine) would diverge on machine load.  The one
sanctioned owner is ``core/profiling.py`` (disabled there by the default
config), and *profiling-guarded* reads are exempt structurally: a call
in an ``if prof is not None`` / ``profiling.ACTIVE`` guard, or feeding
``prof.add(...)``, cannot influence decisions because the profiler is
off in any measured run.  Anything else needs an explicit
``# repro-lint: ignore[RL001]`` stating why it is decision-neutral.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

#: Canonical dotted names that read the host clock.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_GUARD_NAMES = frozenset({"prof", "profiler"})


def _mentions_profiler(test: ast.expr, ctx: ModuleContext) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in _GUARD_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ACTIVE":
            resolved = ctx.resolve(node)
            if resolved is None or resolved.endswith("profiling.ACTIVE"):
                return True
    return False


def _profiling_guarded(call: ast.Call, ctx: ModuleContext) -> bool:
    for anc in ctx.ancestors(call):
        if isinstance(anc, (ast.If, ast.IfExp)) and _mentions_profiler(anc.test, ctx):
            return True
        if isinstance(anc, ast.Call):
            func = anc.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "add"
                and (
                    (isinstance(func.value, ast.Name) and func.value.id in _GUARD_NAMES)
                    or (
                        isinstance(func.value, ast.Attribute)
                        and func.value.attr == "ACTIVE"
                    )
                )
            ):
                return True
    return False


@rule(
    "RL001",
    "no-wallclock",
    "host-clock read in simulation code (time must come from the DES)",
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved not in WALLCLOCK_CALLS:
            continue
        if _profiling_guarded(node, ctx):
            continue
        yield Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule="RL001",
            message=(
                f"wall-clock call {resolved}() in simulation code; simulated "
                "time must come from the DES kernel (sim.now). Profiling-"
                "guarded reads are exempt; decision-neutral timing needs an "
                "explicit suppression."
            ),
        )
