"""RL006 float-fold: metrics float totals use the documented left fold.

``earning`` and latency accounting are proven byte-identical across the
scalar oracle, the ledger, the fused engine and the sharded engine
because every float total is the *same left-to-right chain of float64
additions* (``_FoldedSum`` / ``repro.core.folds``).  A bare ``sum()``
over an unordered iterable, or ``np.sum``/``ndarray.sum()`` (pairwise
reassociation!), silently computes a *different* float — off by an ULP,
enough to flip a scheduling comparison or break a differential test.

In metrics paths the rule flags builtin ``sum(...)``, ``np.sum(...)``
and ``.sum()`` method calls.  Exact-by-construction sites are exempt
structurally: an ``int(...)``-wrapped call (integer tallies commute) and
``.sum()`` on a comparison result (boolean counting).  Integer builtin
sums should either move to the exempt forms or carry a suppression
stating exactness.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

DEFAULT_PATHS = (
    "repro/pubsub/metrics.py",
    "repro/analysis/*",
)

_INT_DTYPES = frozenset(
    {"int", "numpy.int32", "numpy.int64", "numpy.intp", "bool", "numpy.bool_"}
)


def _int_wrapped(call: ast.Call, ctx: ModuleContext) -> bool:
    parent = ctx.parents.get(call)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "int"
        and parent.args
        and parent.args[0] is call
    )


def _boolean_receiver(node: ast.expr) -> bool:
    return isinstance(node, (ast.Compare, ast.BoolOp))


def _int_dtype_kw(call: ast.Call, ctx: ModuleContext) -> bool:
    for kw in call.keywords:
        if kw.arg == "dtype":
            resolved = ctx.resolve(kw.value) if isinstance(
                kw.value, (ast.Name, ast.Attribute)
            ) else None
            return resolved in _INT_DTYPES
    return False


@rule(
    "RL006",
    "float-fold",
    "order-sensitive float sum outside the documented left-fold helpers",
    default_paths=DEFAULT_PATHS,
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        flavour: str | None = None
        if isinstance(node.func, ast.Name) and node.func.id == "sum":
            flavour = "builtin sum()"
        else:
            resolved = ctx.resolve(node.func)
            if resolved in {"numpy.sum", "math.fsum"}:
                flavour = f"{resolved}()"
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
                if _boolean_receiver(node.func.value):
                    continue  # (a == b).sum(): boolean counting, exact
                flavour = ".sum() (numpy pairwise reassociation)"
        if flavour is None:
            continue
        if _int_wrapped(node, ctx) or _int_dtype_kw(node, ctx):
            continue
        yield Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule="RL006",
            message=(
                f"{flavour} in a metrics path; float totals must be the "
                "documented left fold (repro.core.folds.fold_sum / "
                "_FoldedSum) to stay byte-identical to the scalar oracle — "
                "or wrap in int(...) if this is an exact integer tally."
            ),
        )
