"""RL005 fork-safety: nothing unpicklable crosses a worker boundary.

The sweep pool (``sim/parallel.py``) and the sharded engine
(``pubsub/shard_engine.py``) move work to other processes; everything
submitted, targeted at a ``Process``, or stored on ``self`` in those
modules rides a pickle pipe or a checkpointed ``__getstate__``.  A
lambda or closure there raises ``PicklingError`` only on the *process*
backend — the inline backend that differential tests favour sails
through, which is exactly how such a bug would ship.  The rule flags:

* lambdas / nested-def names passed to ``submit``/``Process``/
  ``apply_async``/``map``/``starmap``/``run_in_executor``/``finalize``
  calls (positionally or via ``target=``/``initializer=``/``func=``);
* lambdas / nested-def names assigned to ``self.`` attributes (they
  become engine state and cross the boundary at fork or checkpoint).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Finding
from repro.lint.registry import rule

DEFAULT_PATHS = (
    "repro/sim/parallel.py",
    "repro/pubsub/shard_engine.py",
)

_BOUNDARY_CALLS = frozenset(
    {"submit", "Process", "apply", "apply_async", "map", "starmap",
     "run_in_executor", "finalize"}
)
_BOUNDARY_KEYWORDS = frozenset({"target", "initializer", "func"})


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _unpicklable(node: ast.expr, ctx: ModuleContext) -> str | None:
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name) and ctx.is_nested_def_name(node, node.id):
        return f"nested function {node.id!r}"
    return None


@rule(
    "RL005",
    "fork-safety",
    "unpicklable callable crossing the worker / checkpoint boundary",
    default_paths=DEFAULT_PATHS,
)
def check(ctx: ModuleContext, options: dict) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _call_name(node.func) in _BOUNDARY_CALLS:
            candidates = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg in _BOUNDARY_KEYWORDS
            ]
            for arg in candidates:
                what = _unpicklable(arg, ctx)
                if what is None:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    rule="RL005",
                    message=(
                        f"{what} handed to {_call_name(node.func)}(); it "
                        "crosses the process boundary by pickle and only "
                        "fails on the process backend — pass a module-level "
                        "function or functools.partial of one."
                    ),
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                what = _unpicklable(node.value, ctx)
                if what is None:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=node.value.lineno,
                    col=node.value.col_offset,
                    rule="RL005",
                    message=(
                        f"{what} stored on self.{target.attr} in a fork-"
                        "boundary module; it becomes engine state that must "
                        "pickle at fork/checkpoint time — use a bound method "
                        "or module-level function."
                    ),
                )
