"""Sharded window-drain engine: broker-partitioned parallel lookahead.

The conservative parallel layer over the fused engine
(:mod:`repro.pubsub.engine`).  The broker overlay is partitioned into N
shards (:func:`repro.sim.shard.partition_brokers` minimises expected
cross-shard link traffic); each shard's worker process holds a replica
of its brokers' subscription tables and, once per epoch (a fused window
widened to the min-cross-shard-link-latency lookahead), computes the
**pure** part of the pipeline for every pending ``"process"`` event in
the epoch: the grouped match and the local-delivery validity flags.
Results travel back as columnar batches (concatenated row-id arrays,
group offsets, hop ids, packed validity bits) over pipes; the
coordinator rebinds the row ids to its own tables as
:class:`~repro.pubsub.subscription.RowGroup` views, fills the brokers'
match/delivery memos, and then replays the window's events exactly like
the fused engine.

Identity discipline (the house standard): **all side effects stay on
the coordinator, in exact heap ``(time, priority, seq)`` order.**  The
delivery log's row order, the metrics ledger's left-to-right float
folds and every RNG draw are untouched — only pure functions of
(table state, message, event time) are computed remotely, and every
remote result is version-stamped so churn between lookahead and
execution falls back to the oracle recompute path in
``Broker._process``.  A sharded run is therefore byte-identical to the
sequential fused engine *by construction*, which
``tests/integration/test_shard_identity.py`` proves on the full matrix.

Replica coherence under churn: when workers fork, every coordinator
table arms a mutation journal; subscribe/unsubscribe ops recorded since
the last epoch ship with the next batch and are replayed on the replica
(same op order → same interned row ids → same version counter).  A
replica that cannot reach the coordinator's version refuses the batch
and the coordinator recomputes locally — degraded, never wrong.

Fault containment: a dead worker (or a platform without ``fork``)
degrades the engine to coordinator-local matching with a warning, so a
sharded run can always finish with identical results.
"""

from __future__ import annotations

import math
import multiprocessing
import warnings
import weakref
from time import perf_counter

import numpy as np

from repro.core import profiling
from repro.core.success import effective_deadline_array
from repro.des.simulator import Simulator
from repro.pubsub.engine import DEFAULT_WINDOW_MS, FusedEngine
from repro.pubsub.subscription import RowGroup, SubscriptionTable
from repro.sim.shard import (
    SHARD_BACKENDS,
    ShardConfigError,
    ShardPlan,
    partition_brokers,
)

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Epochs never widen past this, however slow the crossing links are:
#: overly wide speculation is wasted under churn and delays sentinel /
#: checkpoint boundaries (decision-neutral either way).
MAX_EPOCH_MS = 250.0


# ---------------------------------------------------------------------- #
# Columnar wire format (worker -> coordinator).
# ---------------------------------------------------------------------- #
def _replay_ops(table: SubscriptionTable, ops: list[tuple[str, object]]) -> None:
    """Apply a journal slice to a replica table (same op order as the
    coordinator → identical interned ids and version counter)."""
    for kind, payload in ops:
        if kind == "i":
            table.install(payload)  # type: ignore[arg-type]
        else:
            table.uninstall(payload)  # type: ignore[arg-type]


def _encode_batch(table: SubscriptionTable, jobs: list) -> tuple:
    """Match one broker's epoch batch and pack the results columnar.

    ``jobs`` is ``[(message, event_time_ms), ...]``.  Output carries row
    ids (int32 on the wire), per-group lengths and hop ids (−1 = local
    group), groups-per-message counts, per-message arrival latency and
    the local groups' validity flags as packed bits.  Pure per-message
    reductions only — every value is exactly what the coordinator would
    compute itself.
    """
    version = table.version
    results = table.match_grouped_many([m for m, _ in jobs])
    ids_parts: list[np.ndarray] = []
    group_len: list[int] = []
    group_hop: list[int] = []
    msg_groups: list[int] = []
    latency = np.empty(len(jobs))
    valid_parts: list[np.ndarray] = []
    for k, ((message, ev_time), (local, remote)) in enumerate(zip(jobs, results)):
        lat = message.hdl(ev_time)
        latency[k] = lat
        n_groups = 0
        if len(local):
            ids_parts.append(local.row_ids)
            group_len.append(len(local))
            group_hop.append(-1)
            valid_parts.append(
                lat <= effective_deadline_array(local.deadline, message)
            )
            n_groups += 1
        if remote:
            hop_id_of = table._hop_id_of
            for neighbor, group in remote.items():
                ids_parts.append(group.row_ids)
                group_len.append(len(group))
                group_hop.append(hop_id_of[neighbor])
                n_groups += 1
        msg_groups.append(n_groups)
    ids = (
        np.concatenate(ids_parts).astype(np.int32)
        if ids_parts
        else np.empty(0, dtype=np.int32)
    )
    valid_bits = (
        np.packbits(np.concatenate(valid_parts))
        if valid_parts
        else np.empty(0, dtype=np.uint8)
    )
    return (
        version,
        ids,
        np.asarray(group_len, dtype=np.int64),
        np.asarray(group_hop, dtype=np.int64),
        np.asarray(msg_groups, dtype=np.int64),
        latency,
        valid_bits,
    )


def _decode_batch(broker, jobs: list, batch: tuple, dup_ids) -> bool:
    """Rebind one broker's columnar batch to the coordinator's table and
    fill the match/delivery memos.  False = version mismatch (caller
    recomputes locally; cannot normally happen — the coordinator does
    not execute events between scatter and gather)."""
    table = broker.table
    version, ids, group_len, group_hop, msg_groups, latency, valid_bits = batch
    if version != table.version:
        return False
    # RowGroup captures the compiled column views at construction; make
    # sure they reflect the current (matching) version even though the
    # coordinator itself never ran a match for this batch.
    table._compile()
    ids = ids.astype(np.int64)
    offsets = np.empty(group_len.shape[0] + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(group_len, out=offsets[1:])
    local_total = int(group_len[group_hop == -1].sum()) if group_len.size else 0
    valid = (
        np.unpackbits(valid_bits, count=local_total).view(np.bool_)
        if local_total
        else None
    )
    hop_names = table._hop_names
    match_memo = broker._match_memo
    delivery_memo = broker._delivery_memo
    gi = 0
    vpos = 0
    for k, (message, _ev_time) in enumerate(jobs):
        local = RowGroup(table, _EMPTY_IDS)
        remote: dict[str, RowGroup] = {}
        has_local = False
        local_valid = None
        for _ in range(int(msg_groups[k])):
            seg = ids[offsets[gi]:offsets[gi + 1]]
            hop = int(group_hop[gi])
            if hop < 0:
                local = RowGroup(table, seg)
                has_local = True
                n = int(group_len[gi])
                local_valid = valid[vpos:vpos + n]
                vpos += n
            else:
                # Insertion order preserved from the worker's
                # match_grouped — sorted neighbor-name order, the
                # broker's deterministic enqueue order.
                remote[hop_names[hop]] = RowGroup(table, seg)
            gi += 1
        match_memo[message.msg_id] = (version, (local, remote))
        if has_local and message.msg_id not in dup_ids:
            # Duplicate (broker, msg) process events (multi-path routing
            # sharing an intermediate broker) execute at different times
            # with different latencies; one memo slot cannot serve both,
            # so duplicates take the local recompute path in _process.
            delivery_memo[message.msg_id] = (version, float(latency[k]), local_valid)
    return True


# ---------------------------------------------------------------------- #
# Workers.
# ---------------------------------------------------------------------- #
def _worker_main(conn, system, broker_names: tuple[str, ...]) -> None:
    """Shard worker loop: replay journal deltas, match, ship columns.

    Forked from the coordinator, so it inherits the fully built system
    copy-on-write; it only ever *reads* messages and *mutates its own
    replica tables*, and its final state is discarded — all authoritative
    state lives on the coordinator.
    """
    try:  # keep copy-on-write pages shared: don't let GC touch the world
        import gc

        gc.freeze()
    except Exception:  # pragma: no cover - gc.freeze exists on 3.7+
        pass
    for broker in system.brokers.values():
        broker.table.journal = None  # replicas don't journal their replays
    tables = {name: system.brokers[name].table for name in broker_names}
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            return
        if request is None:  # orderly shutdown
            conn.close()
            return
        response = []
        for name, version, ops, jobs in request:
            table = tables[name]
            try:
                _replay_ops(table, ops)
                if table.version != version:
                    response.append(None)  # diverged: coordinator recomputes
                else:
                    response.append(_encode_batch(table, jobs))
            except Exception:  # never take the run down from a worker
                response.append(None)
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):  # pragma: no cover
            return


def _shutdown_workers(conns: list, procs: list) -> None:
    """Finalizer: orderly shutdown, then escalate."""
    for conn in conns:
        try:
            conn.send(None)
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass


class _ProcessClient:
    """Coordinator-side handle to one forked shard worker."""

    __slots__ = ("conn", "proc")

    def __init__(self, conn, proc) -> None:
        self.conn = conn
        self.proc = proc

    def submit(self, request: list) -> None:
        self.conn.send(request)

    def collect(self) -> list:
        return self.conn.recv()


class _InlineClient:
    """The same batching/encode/decode protocol, run in-process.

    Deterministic on every platform and exactly as byte-identical (the
    wire codec is exercised either way); used by tests, the REPRO_SHARDS
    suite override, and as the portable backend.
    """

    __slots__ = ("system", "_response")

    def __init__(self, system) -> None:
        self.system = system
        self._response: list | None = None

    def submit(self, request: list) -> None:
        response = []
        for name, version, ops, jobs in request:
            # No replicas inline: the coordinator's own table is matched,
            # so the journal slice (always empty here) needs no replay.
            table = self.system.brokers[name].table
            if table.version != version:
                response.append(None)
            else:
                response.append(_encode_batch(table, jobs))
        self._response = response

    def collect(self) -> list:
        response, self._response = self._response, None
        return response  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# The engine.
# ---------------------------------------------------------------------- #
class ShardedEngine(FusedEngine):
    """Broker-partitioned parallel lookahead over the fused window drain.

    Drives the heap exactly like :class:`FusedEngine` (same run loop,
    same ``until`` semantics) but distributes the window lookahead's
    pure match phase across shard workers.  Workers start lazily at the
    first lookahead with work — by then the system is fully built, so a
    fork inherits the subscription tables copy-on-write.
    """

    backend = "sharded"

    def __init__(
        self,
        sim: Simulator,
        system: object | None = None,
        window_ms: float = DEFAULT_WINDOW_MS,
        *,
        shards: int,
        shard_backend: str = "process",
        plan: ShardPlan | None = None,
    ) -> None:
        super().__init__(sim, system, window_ms=window_ms)
        if system is None:
            raise ShardConfigError("the sharded engine needs a system to partition")
        if shards < 1:
            raise ShardConfigError(f"shards must be >= 1, got {shards}")
        if shard_backend not in SHARD_BACKENDS:
            raise ShardConfigError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {shard_backend!r}"
            )
        self.shards = shards
        self.shard_backend = shard_backend
        self._plan = plan
        self._shard_of: dict[str, int] = {}
        self._clients: list | None = None
        self._started = False
        self._degraded = False
        self._finalizer = None

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> ShardPlan | None:
        """The partition in force (None until computed at first start)."""
        return self._plan

    def _start(self) -> None:
        self._started = True
        system = self.system
        plan = self._plan
        if plan is None:
            plan = partition_brokers(system.topology, self.shards)
        plan.validate_against(system.topology)
        self._plan = plan
        self._shard_of = {name: plan.shard_of(name) for name in plan.brokers}
        # Widen the fused window to the conservative epoch horizon: a
        # message needs at least the min crossing-link latency to hop
        # shards, so batching at that granularity loses no parallelism.
        look = plan.lookahead_ms(getattr(system.config, "default_size_kb", 50.0))
        if math.isfinite(look) and look > self.window_ms:
            self.window_ms = min(look, MAX_EPOCH_MS)
        if self.shard_backend == "inline":
            self._clients = [_InlineClient(system) for _ in plan.assignments]
            return
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardConfigError(
                "shard_backend='process' requires the fork start method "
                "(POSIX); use shard_backend='inline' on this platform"
            )
        ctx = multiprocessing.get_context("fork")
        # Arm the journals *before* forking: replicas start at exactly
        # this table state and replay every later op in order.
        for broker in system.brokers.values():
            broker.table.journal = []
        clients: list[_ProcessClient] = []
        conns: list = []
        procs: list = []
        try:
            for names in plan.assignments:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child, system, names),
                    daemon=True,
                    name=f"repro-shard-{len(procs)}",
                )
                proc.start()
                child.close()
                clients.append(_ProcessClient(parent, proc))
                conns.append(parent)
                procs.append(proc)
        except Exception:
            _shutdown_workers(conns, procs)
            raise
        self._clients = clients
        self._finalizer = weakref.finalize(self, _shutdown_workers, conns, procs)

    def close(self) -> None:
        """Shut the workers down (idempotent).  The engine restarts them
        lazily — with a fresh fork of the current state — if run again."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._clients = None
        self._started = False

    def _degrade(self, why: str) -> None:
        """Fall back to coordinator-local matching permanently (results
        stay byte-identical; only the parallelism is lost)."""
        if not self._degraded:
            warnings.warn(
                f"sharded engine degraded to local matching: {why}",
                RuntimeWarning,
                stacklevel=3,
            )
        self._degraded = True
        for broker in self.system.brokers.values():
            broker.table.journal = None
        self.close()

    # ------------------------------------------------------------------ #
    # The distributed lookahead.
    # ------------------------------------------------------------------ #
    def _precompute(self, wend: float) -> None:
        pending: dict[object, list] = {}
        seen: dict[object, set] = {}
        dups: dict[object, set] = {}
        for ev in self.sim._heap:
            if ev.kind == "process" and not ev.cancelled and ev.time <= wend:
                broker, message = ev.payload
                memo = broker._match_memo.get(message.msg_id)
                if memo is None or memo[0] != broker.table.version:
                    jobs = pending.get(broker)
                    if jobs is None:
                        jobs = pending[broker] = []
                        seen[broker] = set()
                    if message.msg_id in seen[broker]:
                        dups.setdefault(broker, set()).add(message.msg_id)
                    else:
                        seen[broker].add(message.msg_id)
                    jobs.append((message, ev.time))
        if not pending:
            return
        prof = profiling.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        if not self._started and not self._degraded:
            self._start()
        fallback: list[tuple[object, list]] = []
        if self._degraded:
            fallback = list(pending.items())
        else:
            clients = self._clients
            requests: list[list] = [[] for _ in clients]
            order: list[list] = [[] for _ in clients]
            for broker, jobs in pending.items():
                idx = self._shard_of.get(broker.name)
                if idx is None:  # not in the plan (defensive)
                    fallback.append((broker, jobs))
                    continue
                journal = broker.table.journal
                if journal:
                    ops = journal[:]
                    journal.clear()
                else:
                    ops = []
                requests[idx].append((broker.name, broker.table.version, ops, jobs))
                order[idx].append((broker, jobs))
            active = [i for i in range(len(clients)) if requests[i]]
            # Scatter to every shard first, then gather: the workers'
            # match phases run concurrently while the coordinator waits
            # at the epoch barrier.
            alive: list[int] = []
            for i in active:
                try:
                    clients[i].submit(requests[i])
                    alive.append(i)
                except (BrokenPipeError, OSError) as err:
                    self._degrade(f"worker {i} unreachable ({err})")
                    fallback.extend(order[i])
            for i in alive:
                try:
                    response = clients[i].collect()
                except (EOFError, OSError) as err:
                    self._degrade(f"worker {i} died ({err})")
                    fallback.extend(order[i])
                    continue
                for (broker, jobs), batch in zip(order[i], response):
                    if batch is None or not _decode_batch(
                        broker, jobs, batch, dups.get(broker, ())
                    ):
                        fallback.append((broker, jobs))
        # Coordinator-local recompute: exactly the fused engine's path.
        for broker, jobs in fallback:
            table = broker.table
            version = table.version
            messages = [m for m, _ in jobs]
            results = table.match_grouped_many(messages)
            memo = broker._match_memo
            for message, result in zip(messages, results):
                memo[message.msg_id] = (version, result)
        if prof is not None:
            prof.add("match", perf_counter() - t0)

    # ------------------------------------------------------------------ #
    # Serialization (checkpoint composition).
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Workers hold no authoritative state — a snapshot drops the
        handles and a restored engine re-forks lazily from the restored
        system at its first lookahead."""
        state = self.__dict__.copy()
        state["_clients"] = None
        state["_started"] = False
        state["_degraded"] = False
        state["_finalizer"] = None
        state["_shard_of"] = {}
        return state
