"""Content-based publish/subscribe substrate.

Everything a broker overlay needs below the scheduling layer:

* :mod:`~repro.pubsub.message` — immutable published messages with an
  attribute header (the paper's ``{A1=x1, A2=x2}``), size, publish time and
  optional publisher-specified deadline.
* :mod:`~repro.pubsub.filters` — the subscription filter language
  (comparison predicates, conjunction, disjunction) with a small parser.
* :mod:`~repro.pubsub.matching` — matching engines: a brute-force oracle
  and a counting-index engine for conjunctive filters.
* :mod:`~repro.pubsub.subscription` — subscriptions and the per-broker
  subscription table with the paper's row format
  ``(subscriber, filter, dl, pr, nb, NN_p, μ_p, σ_p²)``.
* :mod:`~repro.pubsub.broker` — the broker: reception, processing delay,
  per-neighbour output queues driven by a pluggable scheduling strategy,
  invalid-message pruning.
* :mod:`~repro.pubsub.system` — wires a topology into a running system:
  links, monitors, routing, subscription installation, publishing.
* :mod:`~repro.pubsub.metrics` — the evaluation counters (delivery rate,
  total earning, message number).

``Broker``, ``PubSubSystem`` and ``SystemConfig`` are re-exported lazily:
they depend on :mod:`repro.core` (the strategies), which itself imports the
message/subscription modules of this package, so eager re-export would be a
circular import.
"""

from repro.pubsub.filters import AndFilter, Filter, OrFilter, Predicate, parse_filter
from repro.pubsub.matching import BruteForceMatcher, CountingIndexMatcher, MatchingEngine
from repro.pubsub.message import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.subscription import Subscription, SubscriptionTable, TableRow

__all__ = [
    "Message",
    "Predicate",
    "Filter",
    "AndFilter",
    "OrFilter",
    "parse_filter",
    "MatchingEngine",
    "BruteForceMatcher",
    "CountingIndexMatcher",
    "Subscription",
    "TableRow",
    "SubscriptionTable",
    "MetricsCollector",
    "Broker",
    "PubSubSystem",
    "SystemConfig",
    "RoutingMode",
]

_LAZY = {
    "Broker": ("repro.pubsub.broker", "Broker"),
    "PubSubSystem": ("repro.pubsub.system", "PubSubSystem"),
    "SystemConfig": ("repro.pubsub.system", "SystemConfig"),
    "RoutingMode": ("repro.pubsub.system", "RoutingMode"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
