"""The fused micro-batched event pipeline driver (``engine_backend``).

The per-event kernel (:meth:`repro.des.simulator.Simulator.run`, the
``"event"`` oracle) takes one full Python round-trip per event: heap pop
→ handler → match → enqueue → send scheduling.  The fused driver drains
the same heap in **event-time windows**: before executing a window's
events it scans the pending heap for typed ``"process"`` events (a
message reaching a broker's processing stage), batch-matches them per
broker in one pass over the columnar
:class:`~repro.pubsub.subscription.SubscriptionTable`
(:meth:`~repro.pubsub.subscription.SubscriptionTable.match_grouped_many`)
and stashes the results in each broker's match memo; the window's events
then run through a tight specialised inner loop that consumes the
precomputed matches.

Correctness discipline (the house standard, same as the queue / matcher
/ metrics backends):

* **Execution order is untouched.**  The engine pops events in exactly
  the heap's ``(time, priority, seq)`` order and runs every action —
  all side effects (metric folds, log appends, queue pushes, RNG draws)
  happen in per-event order, so delivery-log bytes and ledger float
  folds are byte-identical to the oracle.  Only the *match* — a pure
  function of (table state, message) — is computed speculatively.
* **Churn cannot skew a match.**  Memoised results carry the table's
  mutation counter; ``Broker._process`` discards a stale memo and
  recomputes.  If the lookahead meets a pending process event whose memo
  is missing or stale, it re-scans before executing it.
* **Opaque events are barriers.**  Dynamics interventions, workload
  lambdas and test callbacks carry no ``kind``; the lookahead never
  inspects them and the inner loop just executes them in order.

Windows are an execution micro-batching device only — simulated time is
continuous and event timestamps are untouched, so an event exactly on a
window boundary behaves identically under any window size.
"""

from __future__ import annotations

import heapq
from time import perf_counter

from repro.core import profiling
from repro.des.simulator import SimulationError, Simulator

#: Recognised ``engine_backend`` selectors: the fused window drain and
#: the per-event kernel kept as the differential oracle.
ENGINE_BACKENDS: tuple[str, ...] = ("fused", "event")

#: Default event-time window (ms).  Wide enough to gather a message's
#: receive→process burst across brokers (processing delay is 2 ms, hop
#: transmissions tens of ms), narrow against scheduling horizons.
DEFAULT_WINDOW_MS = 50.0


class FusedEngine:
    """Window-drain driver over a :class:`Simulator` heap.

    ``system`` supplies the brokers whose match memos the lookahead
    fills; pass ``None`` for a bare event-throughput drain (used by the
    dispatch microbenchmark), which skips the lookahead entirely.
    """

    backend = "fused"

    def __init__(
        self,
        sim: Simulator,
        system: object | None = None,
        window_ms: float = DEFAULT_WINDOW_MS,
    ) -> None:
        if window_ms <= 0.0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.sim = sim
        self.system = system
        self.window_ms = window_ms

    # ------------------------------------------------------------------ #
    # Lookahead.
    # ------------------------------------------------------------------ #
    def _precompute(self, wend: float) -> None:
        """Batch-match every pending ``"process"`` event due by ``wend``.

        One linear scan of the heap list (no pops, order irrelevant for a
        pure computation), grouped per broker so each table compiles once
        and per-source masks are shared across the window's messages.
        """
        pending: dict[object, list] = {}
        for ev in self.sim._heap:
            if ev.kind == "process" and not ev.cancelled and ev.time <= wend:
                broker, message = ev.payload
                memo = broker._match_memo.get(message.msg_id)
                if memo is None or memo[0] != broker.table.version:
                    pending.setdefault(broker, []).append(message)
        if not pending:
            return
        prof = profiling.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        for broker, messages in pending.items():
            table = broker.table
            version = table.version
            results = table.match_grouped_many(messages)
            memo = broker._match_memo
            for message, result in zip(messages, results):
                memo[message.msg_id] = (version, result)
        if prof is not None:
            prof.add("match", perf_counter() - t0)

    @staticmethod
    def _needs_rescan(head) -> bool:
        """True when the next event is a process step without a fresh memo
        (scheduled after the last lookahead, or staled by churn)."""
        if head.kind != "process":
            return False
        broker, message = head.payload
        memo = broker._match_memo.get(message.msg_id)
        return memo is None or memo[0] != broker.table.version

    # ------------------------------------------------------------------ #
    # Drive.
    # ------------------------------------------------------------------ #
    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the simulation exactly like :meth:`Simulator.run`.

        Same closed-interval ``until`` semantics, same drained-early
        clock advance, same executed-event count — the differential
        tests assert all of it.
        """
        sim = self.sim
        if sim._running:
            raise SimulationError("run() is not reentrant")
        sim._running = True
        executed = 0
        window = self.window_ms
        lookahead = self.system is not None
        heap = sim._heap
        heappop = heapq.heappop
        prof = profiling.ACTIVE
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                if head.cancelled:
                    heappop(heap)
                    continue
                if until is not None and head.time > until:
                    break
                # One event-time window, re-entered after every lookahead.
                wend = head.time + window
                if until is not None and wend > until:
                    wend = until
                if lookahead:
                    self._precompute(wend)
                # The tight inner loop: pop/dispatch without per-event
                # window arithmetic; leaves the loop at a window boundary,
                # a lookahead miss, or the event budget.
                while heap:
                    if max_events is not None and executed >= max_events:
                        break
                    head = heap[0]
                    if head.cancelled:
                        heappop(heap)
                        continue
                    if head.time > wend:
                        break
                    if lookahead and self._needs_rescan(head):
                        self._precompute(wend)
                    t0 = perf_counter() if prof is not None else 0.0
                    heappop(heap)
                    sim._now = head.time
                    sim._executed += 1
                    executed += 1
                    sim._live -= 1
                    head.done = True
                    if prof is not None:
                        prof.add("pop", perf_counter() - t0)
                    head.action()
            if until is not None and sim._now < until and sim._live == 0:
                sim._now = until
        finally:
            sim._running = False
        return executed


def make_engine(
    backend: str,
    sim: Simulator,
    system: object | None = None,
    window_ms: float = DEFAULT_WINDOW_MS,
    shards: int = 0,
    shard_backend: str = "process",
):
    """Build the event-pipeline driver by ``engine_backend`` name.

    ``"event"`` returns ``None``: callers fall back to the kernel's own
    :meth:`Simulator.run` (the oracle path has no wrapper object).
    ``shards > 0`` upgrades the fused driver to the broker-partitioned
    :class:`~repro.pubsub.shard_engine.ShardedEngine` (byte-identical
    outputs, parallel lookahead); it composes only with ``"fused"``.
    """
    if shards:
        # Lazy import: shard_engine pulls in repro.sim.shard, which the
        # bare fused/event paths never need.
        from repro.pubsub.shard_engine import ShardedEngine
        from repro.sim.shard import ShardConfigError

        if backend != "fused":
            raise ShardConfigError(
                f"shards={shards} requires engine_backend='fused' "
                f"(the per-event oracle has no lookahead to distribute), "
                f"got {backend!r}"
            )
        return ShardedEngine(
            sim, system, window_ms=window_ms,
            shards=shards, shard_backend=shard_backend,
        )
    if backend == "fused":
        return FusedEngine(sim, system, window_ms=window_ms)
    if backend == "event":
        return None
    raise ValueError(
        f"engine_backend must be one of {ENGINE_BACKENDS}, got {backend!r}"
    )
