"""Matching engines: which subscriptions does a message satisfy?

Two implementations behind one protocol:

* :class:`BruteForceMatcher` — evaluate every filter; the correctness
  oracle and the right choice for small tables.
* :class:`CountingIndexMatcher` — the classic *counting algorithm* for
  conjunctive subscriptions (Yan & Garcia-Molina): per-(attribute, op)
  sorted threshold indexes produce, per message, the count of satisfied
  predicates per subscription; a subscription matches when its count equals
  its predicate total.  Non-conjunctive filters degrade to brute force.

Engines are generic over an opaque ``key`` so both the global population
(for the delivery-rate denominator) and per-broker tables reuse them.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Generic, Hashable, Iterable, Mapping, Protocol, TypeVar

from repro.pubsub.filters import Filter, Predicate, conjunction_predicates

K = TypeVar("K", bound=Hashable)


class MatchingEngine(Protocol[K]):
    """Protocol shared by all matchers."""

    def add(self, key: K, filter_: Filter) -> None: ...

    def remove(self, key: K) -> None: ...

    def match(self, attributes: Mapping[str, float]) -> set[K]: ...

    def __len__(self) -> int: ...


class BruteForceMatcher(Generic[K]):
    """Evaluate every registered filter."""

    def __init__(self) -> None:
        self._filters: dict[K, Filter] = {}

    def add(self, key: K, filter_: Filter) -> None:
        if key in self._filters:
            raise KeyError(f"duplicate key {key!r}")
        self._filters[key] = filter_

    def remove(self, key: K) -> None:
        del self._filters[key]

    def match(self, attributes: Mapping[str, float]) -> set[K]:
        return {k for k, f in self._filters.items() if f.matches(attributes)}

    def __contains__(self, key: K) -> bool:
        return key in self._filters

    def __len__(self) -> int:
        return len(self._filters)


class _AttrOpIndex:
    """Sorted thresholds for one (attribute, op) pair.

    For ``<``/``<=`` predicates, a message value ``v`` satisfies all
    thresholds strictly greater than ``v`` (resp. ``>= v``); bisect gives
    the satisfied suffix in O(log n) + output size.
    """

    __slots__ = ("op", "_thresholds", "_keys")

    def __init__(self, op: str) -> None:
        self.op = op
        self._thresholds: list[float] = []
        self._keys: list[list] = []  # parallel: keys sharing each threshold

    def add(self, value: float, key) -> None:
        i = bisect.bisect_left(self._thresholds, value)
        if i < len(self._thresholds) and self._thresholds[i] == value:
            self._keys[i].append(key)
        else:
            self._thresholds.insert(i, value)
            self._keys.insert(i, [key])

    def add_many(self, pairs: Iterable[tuple[float, object]]) -> None:
        """Bulk insert: one sort + linear merge instead of per-add
        ``list.insert`` (O((n+m)·log m) versus O(n·m) for m adds into an
        n-threshold index).  Equivalent to calling :meth:`add` per pair in
        iteration order — keys sharing a threshold keep that order.
        """
        incoming = sorted(pairs, key=lambda p: p[0])  # stable: preserves add order
        if not incoming:
            return
        merged_t: list[float] = []
        merged_k: list[list] = []
        i = j = 0
        t, ks = self._thresholds, self._keys
        while i < len(t) or j < len(incoming):
            if j >= len(incoming) or (i < len(t) and t[i] <= incoming[j][0]):
                merged_t.append(t[i])
                merged_k.append(ks[i])
                i += 1
            else:
                value, key = incoming[j]
                if merged_t and merged_t[-1] == value:
                    merged_k[-1].append(key)
                else:
                    merged_t.append(value)
                    merged_k.append([key])
                j += 1
        self._thresholds, self._keys = merged_t, merged_k

    def remove(self, value: float, key) -> None:
        i = bisect.bisect_left(self._thresholds, value)
        if i >= len(self._thresholds) or self._thresholds[i] != value:
            raise KeyError(key)
        self._keys[i].remove(key)
        if not self._keys[i]:
            del self._thresholds[i]
            del self._keys[i]

    def satisfied_keys(self, v: float) -> Iterable:
        t, ks = self._thresholds, self._keys
        op = self.op
        if op == "<":  # v < threshold  => thresholds strictly above v
            start = bisect.bisect_right(t, v)
            rng = range(start, len(t))
        elif op == "<=":
            start = bisect.bisect_left(t, v)
            rng = range(start, len(t))
        elif op == ">":  # v > threshold => thresholds strictly below v
            stop = bisect.bisect_left(t, v)
            rng = range(0, stop)
        elif op == ">=":
            stop = bisect.bisect_right(t, v)
            rng = range(0, stop)
        elif op == "==":
            i = bisect.bisect_left(t, v)
            rng = range(i, i + 1) if i < len(t) and t[i] == v else range(0)
        else:  # "!=": everything except the equal threshold
            i = bisect.bisect_left(t, v)
            skip = i if i < len(t) and t[i] == v else -1
            for j in range(len(t)):
                if j != skip:
                    yield from ks[j]
            return
        for j in rng:
            yield from ks[j]


class CountingIndexMatcher(Generic[K]):
    """Counting-algorithm matcher for conjunctive filters."""

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], _AttrOpIndex] = {}
        self._predicate_count: dict[K, int] = {}
        self._predicates: dict[K, tuple[Predicate, ...]] = {}
        self._fallback = BruteForceMatcher[K]()

    def add(self, key: K, filter_: Filter) -> None:
        if key in self._predicate_count or key in self._fallback:
            raise KeyError(f"duplicate key {key!r}")
        preds = conjunction_predicates(filter_)
        if preds is None:
            self._fallback.add(key, filter_)
            return
        self._predicate_count[key] = len(preds)
        self._predicates[key] = preds
        for p in preds:
            idx = self._indexes.get((p.attribute, p.op))
            if idx is None:
                idx = self._indexes[(p.attribute, p.op)] = _AttrOpIndex(p.op)
            idx.add(p.value, key)

    def add_many(self, items: Iterable[tuple[K, Filter]]) -> None:
        """Bulk registration: predicates are grouped per (attribute, op)
        index and inserted with one sorted merge each.  Matching behaviour
        is identical to adding the items one at a time, in order.
        """
        items = list(items)
        seen: set[K] = set()
        for key, _ in items:
            if key in self._predicate_count or key in seen or key in self._fallback:
                raise KeyError(f"duplicate key {key!r}")
            seen.add(key)
        batches: dict[tuple[str, str], list[tuple[float, K]]] = defaultdict(list)
        for key, filter_ in items:
            preds = conjunction_predicates(filter_)
            if preds is None:
                self._fallback.add(key, filter_)
                continue
            self._predicate_count[key] = len(preds)
            self._predicates[key] = preds
            for p in preds:
                batches[(p.attribute, p.op)].append((p.value, key))
        for (attr, op), pairs in batches.items():
            idx = self._indexes.get((attr, op))
            if idx is None:
                idx = self._indexes[(attr, op)] = _AttrOpIndex(op)
            idx.add_many(pairs)

    def remove(self, key: K) -> None:
        preds = self._predicates.pop(key, None)
        if preds is None:
            self._fallback.remove(key)
            return
        del self._predicate_count[key]
        for p in preds:
            self._indexes[(p.attribute, p.op)].remove(p.value, key)

    def match(self, attributes: Mapping[str, float]) -> set[K]:
        counts: dict[K, int] = defaultdict(int)
        for (attr, _op), idx in self._indexes.items():
            v = attributes.get(attr)
            if v is None:
                continue
            for key in idx.satisfied_keys(v):
                counts[key] += 1
        result = {k for k, c in counts.items() if c == self._predicate_count[k]}
        # Empty conjunctions (match-all) never appear in any index.
        result.update(k for k, n in self._predicate_count.items() if n == 0)
        result.update(self._fallback.match(attributes))
        return result

    def __len__(self) -> int:
        return len(self._predicate_count) + len(self._fallback)
