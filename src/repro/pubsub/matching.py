"""Matching engines: which subscriptions does a message satisfy?

Three implementations behind one protocol:

* :class:`BruteForceMatcher` — evaluate every filter; the correctness
  oracle and the right choice for small tables.
* :class:`CountingIndexMatcher` — the classic *counting algorithm* for
  conjunctive subscriptions (Yan & Garcia-Molina): per-(attribute, op)
  sorted threshold indexes produce, per message, the count of satisfied
  predicates per subscription; a subscription matches when its count equals
  its predicate total.  Non-conjunctive filters degrade to brute force.
* :class:`VectorCountingMatcher` — the same counting algorithm on dense
  integer ids and numpy: every key is interned to a contiguous id, each
  (attribute, op) index stores its thresholds as one sorted array with
  CSR-style id spans, and a match is ``np.searchsorted`` (per index) +
  slice-concatenate + one ``np.bincount`` compared against the per-id
  predicate totals.  Decision-identical to :class:`CountingIndexMatcher`
  (the differential tests assert it); mutation recompiles the touched
  indexes lazily, so install-then-match workloads pay one build.

Engines are generic over an opaque ``key`` so both the global population
(for the delivery-rate denominator) and per-broker tables reuse them.
:func:`make_matcher` builds one by backend name (the ``matcher_backend``
config knob): ``"vector"`` is the fast path, ``"oracle"`` the dict-based
counting matcher kept as the differential oracle, ``"brute"`` the filter
scan.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Generic, Hashable, Iterable, Mapping, Protocol, TypeVar

import numpy as np

from repro.pubsub.filters import Filter, Predicate, conjunction_predicates

K = TypeVar("K", bound=Hashable)


class MatchingEngine(Protocol[K]):
    """Protocol shared by all matchers."""

    def add(self, key: K, filter_: Filter) -> None: ...

    def remove(self, key: K) -> None: ...

    def match(self, attributes: Mapping[str, float]) -> set[K]: ...

    def count(self, attributes: Mapping[str, float]) -> int: ...

    def __len__(self) -> int: ...


class BruteForceMatcher(Generic[K]):
    """Evaluate every registered filter."""

    def __init__(self) -> None:
        self._filters: dict[K, Filter] = {}

    def add(self, key: K, filter_: Filter, preds=None) -> None:
        if key in self._filters:
            raise KeyError(f"duplicate key {key!r}")
        self._filters[key] = filter_

    def add_many(
        self,
        items: Iterable[tuple[K, Filter]],
        preds_list: list | None = None,
    ) -> None:
        for key, filter_ in items:
            self.add(key, filter_)

    def remove(self, key: K) -> None:
        del self._filters[key]

    def match(self, attributes: Mapping[str, float]) -> set[K]:
        return {k for k, f in self._filters.items() if f.matches(attributes)}

    def count(self, attributes: Mapping[str, float]) -> int:
        """``len(match(...))`` without materialising the key set."""
        return sum(1 for f in self._filters.values() if f.matches(attributes))

    def __contains__(self, key: K) -> bool:
        return key in self._filters

    def __len__(self) -> int:
        return len(self._filters)


class _AttrOpIndex:
    """Sorted thresholds for one (attribute, op) pair.

    For ``<``/``<=`` predicates, a message value ``v`` satisfies all
    thresholds strictly greater than ``v`` (resp. ``>= v``); bisect gives
    the satisfied suffix in O(log n) + output size.
    """

    __slots__ = ("op", "_thresholds", "_keys")

    def __init__(self, op: str) -> None:
        self.op = op
        self._thresholds: list[float] = []
        self._keys: list[list] = []  # parallel: keys sharing each threshold

    def add(self, value: float, key) -> None:
        i = bisect.bisect_left(self._thresholds, value)
        if i < len(self._thresholds) and self._thresholds[i] == value:
            self._keys[i].append(key)
        else:
            self._thresholds.insert(i, value)
            self._keys.insert(i, [key])

    def add_many(self, pairs: Iterable[tuple[float, object]]) -> None:
        """Bulk insert: one sort + linear merge instead of per-add
        ``list.insert`` (O((n+m)·log m) versus O(n·m) for m adds into an
        n-threshold index).  Equivalent to calling :meth:`add` per pair in
        iteration order — keys sharing a threshold keep that order.
        """
        incoming = sorted(pairs, key=lambda p: p[0])  # stable: preserves add order
        if not incoming:
            return
        merged_t: list[float] = []
        merged_k: list[list] = []
        i = j = 0
        t, ks = self._thresholds, self._keys
        while i < len(t) or j < len(incoming):
            if j >= len(incoming) or (i < len(t) and t[i] <= incoming[j][0]):
                merged_t.append(t[i])
                merged_k.append(ks[i])
                i += 1
            else:
                value, key = incoming[j]
                if merged_t and merged_t[-1] == value:
                    merged_k[-1].append(key)
                else:
                    merged_t.append(value)
                    merged_k.append([key])
                j += 1
        self._thresholds, self._keys = merged_t, merged_k

    def remove(self, value: float, key) -> None:
        i = bisect.bisect_left(self._thresholds, value)
        if i >= len(self._thresholds) or self._thresholds[i] != value:
            raise KeyError(key)
        self._keys[i].remove(key)
        if not self._keys[i]:
            del self._thresholds[i]
            del self._keys[i]

    def satisfied_keys(self, v: float) -> Iterable:
        t, ks = self._thresholds, self._keys
        op = self.op
        if op == "<":  # v < threshold  => thresholds strictly above v
            start = bisect.bisect_right(t, v)
            rng = range(start, len(t))
        elif op == "<=":
            start = bisect.bisect_left(t, v)
            rng = range(start, len(t))
        elif op == ">":  # v > threshold => thresholds strictly below v
            stop = bisect.bisect_left(t, v)
            rng = range(0, stop)
        elif op == ">=":
            stop = bisect.bisect_right(t, v)
            rng = range(0, stop)
        elif op == "==":
            i = bisect.bisect_left(t, v)
            rng = range(i, i + 1) if i < len(t) and t[i] == v else range(0)
        else:  # "!=": everything except the equal threshold
            i = bisect.bisect_left(t, v)
            skip = i if i < len(t) and t[i] == v else -1
            for j in range(len(t)):
                if j != skip:
                    yield from ks[j]
            return
        for j in rng:
            yield from ks[j]


class CountingIndexMatcher(Generic[K]):
    """Counting-algorithm matcher for conjunctive filters."""

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], _AttrOpIndex] = {}
        self._predicate_count: dict[K, int] = {}
        self._predicates: dict[K, tuple[Predicate, ...]] = {}
        self._fallback = BruteForceMatcher[K]()
        #: Keys with zero predicates (empty conjunctions) match every
        #: message but never appear in any index; cached here so ``match``
        #: does not rescan ``_predicate_count`` on every call.
        self._match_all: set[K] = set()

    def add(self, key: K, filter_: Filter, preds=None) -> None:
        if key in self._predicate_count or key in self._fallback:
            raise KeyError(f"duplicate key {key!r}")
        if preds is None:
            preds = conjunction_predicates(filter_)
        if preds is None:
            self._fallback.add(key, filter_)
            return
        self._predicate_count[key] = len(preds)
        self._predicates[key] = preds
        if not preds:
            self._match_all.add(key)
        for p in preds:
            idx = self._indexes.get((p.attribute, p.op))
            if idx is None:
                idx = self._indexes[(p.attribute, p.op)] = _AttrOpIndex(p.op)
            idx.add(p.value, key)

    def add_many(
        self,
        items: Iterable[tuple[K, Filter]],
        preds_list: list | None = None,
    ) -> None:
        """Bulk registration: predicates are grouped per (attribute, op)
        index and inserted with one sorted merge each.  Matching behaviour
        is identical to adding the items one at a time, in order.
        """
        items = list(items)
        seen: set[K] = set()
        for key, _ in items:
            if key in self._predicate_count or key in seen or key in self._fallback:
                raise KeyError(f"duplicate key {key!r}")
            seen.add(key)
        if preds_list is None:
            preds_list = [conjunction_predicates(f) for _, f in items]
        batches: dict[tuple[str, str], list[tuple[float, K]]] = defaultdict(list)
        for (key, filter_), preds in zip(items, preds_list):
            if preds is None:
                self._fallback.add(key, filter_)
                continue
            self._predicate_count[key] = len(preds)
            self._predicates[key] = preds
            if not preds:
                self._match_all.add(key)
            for p in preds:
                batches[(p.attribute, p.op)].append((p.value, key))
        for (attr, op), pairs in batches.items():
            idx = self._indexes.get((attr, op))
            if idx is None:
                idx = self._indexes[(attr, op)] = _AttrOpIndex(op)
            idx.add_many(pairs)

    def remove(self, key: K) -> None:
        preds = self._predicates.pop(key, None)
        if preds is None:
            self._fallback.remove(key)
            return
        del self._predicate_count[key]
        self._match_all.discard(key)
        for p in preds:
            self._indexes[(p.attribute, p.op)].remove(p.value, key)

    def match(self, attributes: Mapping[str, float]) -> set[K]:
        counts: dict[K, int] = defaultdict(int)
        for (attr, _op), idx in self._indexes.items():
            v = attributes.get(attr)
            if v is None:
                continue
            for key in idx.satisfied_keys(v):
                counts[key] += 1
        result = {k for k, c in counts.items() if c == self._predicate_count[k]}
        result.update(self._match_all)
        result.update(self._fallback.match(attributes))
        return result

    def count(self, attributes: Mapping[str, float]) -> int:
        """``len(match(...))`` — the oracle keeps the straightforward form."""
        return len(self.match(attributes))

    def __len__(self) -> int:
        return len(self._predicate_count) + len(self._fallback)


class _VecAttrOpIndex:
    """One (attribute, op) index over interned ids, compiled to numpy.

    Raw ``(threshold, id)`` pairs accumulate in a list; :meth:`compile`
    sorts them once into a sorted unique ``thresholds`` array plus a
    CSR-style layout (``ids`` concatenated per threshold, ``starts`` as
    the indptr).  Every comparison op then reduces to one
    ``np.searchsorted`` and a contiguous slice (prefix for ``>``/``>=``,
    suffix for ``<``/``<=``, a single span for ``==``, its complement for
    ``!=``) — the satisfied-id set comes out as array views, no per-key
    Python iteration.
    """

    __slots__ = ("op", "entries", "dirty", "_thresholds", "_starts", "_ids")

    def __init__(self, op: str) -> None:
        self.op = op
        self.entries: list[tuple[float, int]] = []
        self.dirty = True
        self._thresholds = np.empty(0)
        self._starts = np.zeros(1, dtype=np.int64)
        self._ids = np.empty(0, dtype=np.int64)

    def add(self, value: float, id_: int) -> None:
        self.entries.append((value, id_))
        self.dirty = True

    def add_many(self, pairs: list[tuple[float, int]]) -> None:
        """Bulk append; equivalent to :meth:`add` per pair in order (the
        stable compile sort makes entry order irrelevant anyway)."""
        self.entries.extend(pairs)
        self.dirty = True

    def compile(self) -> None:
        if not self.dirty:
            return
        if self.entries:
            values = np.array([v for v, _ in self.entries])
            ids = np.array([i for _, i in self.entries], dtype=np.int64)
            order = np.argsort(values, kind="stable")
            values, ids = values[order], ids[order]
            thresholds, first = np.unique(values, return_index=True)
            self._thresholds = thresholds
            self._starts = np.append(first, len(values))
            self._ids = ids
        else:
            self._thresholds = np.empty(0)
            self._starts = np.zeros(1, dtype=np.int64)
            self._ids = np.empty(0, dtype=np.int64)
        self.dirty = False

    def collect(self, v: float, out: list[np.ndarray]) -> None:
        """Append the satisfied-id array views for message value ``v``."""
        t, starts, ids = self._thresholds, self._starts, self._ids
        op = self.op
        if op == "<":  # v < threshold => the suffix strictly above v
            out.append(ids[starts[np.searchsorted(t, v, side="right")]:])
        elif op == "<=":
            out.append(ids[starts[np.searchsorted(t, v, side="left")]:])
        elif op == ">":  # v > threshold => the prefix strictly below v
            out.append(ids[: starts[np.searchsorted(t, v, side="left")]])
        elif op == ">=":
            out.append(ids[: starts[np.searchsorted(t, v, side="right")]])
        elif op == "==":
            i = np.searchsorted(t, v, side="left")
            if i < len(t) and t[i] == v:
                out.append(ids[starts[i]: starts[i + 1]])
        else:  # "!=": everything except the equal span
            i = np.searchsorted(t, v, side="left")
            if i < len(t) and t[i] == v:
                out.append(ids[: starts[i]])
                out.append(ids[starts[i + 1]:])
            else:
                out.append(ids)


#: Sentinel predicate total for ids that must never win the count test:
#: removed keys and match-all keys (handled by their own cached set).
_NEVER = -1


class VectorCountingMatcher(Generic[K]):
    """Counting-algorithm matcher on dense ids and numpy arrays.

    Keys are interned to contiguous integer ids; a match concatenates the
    per-index satisfied-id slices and compares one ``np.bincount`` against
    the per-id predicate totals.  Ids are append-only (removals leave a
    ``_NEVER`` total behind), so compiled indexes stay valid across
    removals and only the touched (attribute, op) indexes recompile.

    Non-conjunctive filters degrade to brute force and empty conjunctions
    live in a cached match-all set, exactly as in
    :class:`CountingIndexMatcher`.
    """

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str], _VecAttrOpIndex] = {}
        self._keys: list[K] = []  # id -> key
        self._id_of: dict[K, int] = {}
        self._required: list[int] = []  # id -> predicate total (or _NEVER)
        self._predicates: dict[K, tuple[Predicate, ...]] = {}
        self._match_all: set[K] = set()
        self._fallback = BruteForceMatcher[K]()
        self._live = 0
        self._required_arr = np.empty(0, dtype=np.int64)
        self._key_arr = np.empty(0, dtype=np.int64)  # id -> key, int keys only
        self._required_dirty = True
        # Removal is tombstone-based: a removed id's predicate total goes to
        # _NEVER, so its (still-indexed) entries can inflate bincount inputs
        # but can never win the count test.  Once the tombstones outnumber
        # the live entries (or live ids), :meth:`_purge_dead` compacts the
        # whole id space — dead entries leave the indexes and surviving ids
        # are remapped to stay dense — so remove is O(1) amortised and
        # per-match bincount width tracks live keys, not cumulative adds.
        self._dead_ids: set[int] = set()
        self._dead_entries = 0
        self._total_entries = 0
        #: True while every key equals its own interned id (the
        #: subscription table keys rows by the ids it interned in the same
        #: order, so churn-free tables keep this for the whole run) —
        #: then matched ids ARE the keys and match_array needs no gather.
        self._keys_identity = True

    # -------------------------------------------------------------- #
    # Mutation.
    # -------------------------------------------------------------- #
    def _intern(self, key: K, n_predicates: int) -> int:
        id_ = len(self._keys)
        self._keys.append(key)
        self._id_of[key] = id_
        self._required.append(n_predicates if n_predicates > 0 else _NEVER)
        self._required_dirty = True
        if self._keys_identity and key != id_:
            self._keys_identity = False
        return id_

    def add(self, key: K, filter_: Filter, preds=None) -> None:
        if key in self._predicates or key in self._fallback:
            raise KeyError(f"duplicate key {key!r}")
        if preds is None:
            preds = conjunction_predicates(filter_)
        if preds is None:
            self._fallback.add(key, filter_)
            return
        id_ = self._intern(key, len(preds))
        self._predicates[key] = preds
        self._live += 1
        self._total_entries += len(preds)
        if not preds:
            self._match_all.add(key)
        for p in preds:
            idx = self._indexes.get((p.attribute, p.op))
            if idx is None:
                idx = self._indexes[(p.attribute, p.op)] = _VecAttrOpIndex(p.op)
            idx.add(p.value, id_)

    def add_many(
        self,
        items: Iterable[tuple[K, Filter]],
        preds_list: list | None = None,
    ) -> None:
        """Bulk registration: interning happens in item order (so ids are
        the same as sequential :meth:`add` calls) but predicate entries
        are grouped per (attribute, op) index and appended with one
        ``extend`` each.  ``preds_list`` lets the caller reuse already-
        computed :func:`conjunction_predicates` results.
        """
        items = list(items)
        seen: set[K] = set()
        for key, _ in items:
            if key in self._predicates or key in seen or key in self._fallback:
                raise KeyError(f"duplicate key {key!r}")
            seen.add(key)
        if preds_list is None:
            preds_list = [conjunction_predicates(f) for _, f in items]
        per_index: dict[tuple[str, str], list[tuple[float, int]]] = {}
        predicates = self._predicates
        setdefault = per_index.setdefault
        for (key, filter_), preds in zip(items, preds_list):
            if preds is None:
                self._fallback.add(key, filter_)
                continue
            id_ = self._intern(key, len(preds))
            predicates[key] = preds
            self._live += 1
            self._total_entries += len(preds)
            if not preds:
                self._match_all.add(key)
            for p in preds:
                setdefault((p.attribute, p.op), []).append((p.value, id_))
        for (attr, op), pairs in per_index.items():
            idx = self._indexes.get((attr, op))
            if idx is None:
                idx = self._indexes[(attr, op)] = _VecAttrOpIndex(op)
            idx.add_many(pairs)

    def remove(self, key: K) -> None:
        preds = self._predicates.pop(key, None)
        if preds is None:
            self._fallback.remove(key)
            return
        id_ = self._id_of.pop(key)
        self._required[id_] = _NEVER
        self._required_dirty = True
        self._match_all.discard(key)
        self._live -= 1
        self._dead_ids.add(id_)
        self._dead_entries += len(preds)
        if (self._dead_entries * 2 > self._total_entries
                or len(self._dead_ids) * 2 > len(self._keys)):
            self._purge_dead()

    def _purge_dead(self) -> None:
        """Compact the id space (amortised): drop tombstoned entries from
        every index and remap surviving ids to be dense again, so neither
        match cost nor id-table memory grows with cumulative churn."""
        live = sorted(self._id_of.items(), key=lambda kv: kv[1])  # by old id
        remap = {old: new for new, (_, old) in enumerate(live)}
        self._keys = [key for key, _ in live]
        self._required = [self._required[old] for _, old in live]
        self._id_of = {key: new for new, (key, _) in enumerate(live)}
        dead = self._dead_ids
        total = 0
        for idx in self._indexes.values():
            idx.entries = [(v, remap[i]) for v, i in idx.entries if i not in dead]
            idx.dirty = True
            total += len(idx.entries)
        self._total_entries = total
        self._dead_entries = 0
        dead.clear()
        self._required_dirty = True
        self._key_arr = np.empty(0, dtype=np.int64)
        self._keys_identity = all(k == i for i, k in enumerate(self._keys))

    # -------------------------------------------------------------- #
    # Matching.
    # -------------------------------------------------------------- #
    @property
    def array_results_sorted(self) -> bool:
        """True when :meth:`match_array` is guaranteed to return ids in
        ascending order (the identity fast path: hits come straight from
        ``flatnonzero``) — callers can then skip their canonical sort."""
        return self._keys_identity and not self._match_all and not len(self._fallback)

    def warm(self) -> None:
        """Eagerly build every lazy compiled structure (per-op indexes,
        predicate totals, key gather).  Matching compiles these on first
        use anyway; warming just moves the one-time cost out of the
        simulation's hot loop — reachable state is identical."""
        for idx in self._indexes.values():
            if idx.dirty:
                idx.compile()
        if self._required_dirty:
            self._required_arr = np.asarray(self._required, dtype=np.int64)
            self._required_dirty = False
        if not self._keys_identity and len(self._key_arr) != len(self._keys):
            try:
                self._key_arr = np.asarray(self._keys, dtype=np.int64)
            except (TypeError, ValueError):
                pass  # non-int keys never take the array path

    def _indexed_hits(self, attributes: Mapping[str, float]) -> np.ndarray:
        """Ids whose predicate count equals their total (sorted ascending)."""
        if self._required_dirty:
            self._required_arr = np.asarray(self._required, dtype=np.int64)
            self._required_dirty = False
        chunks: list[np.ndarray] = []
        for (attr, _op), idx in self._indexes.items():
            v = attributes.get(attr)
            if v is None:
                continue
            if idx.dirty:
                idx.compile()
            idx.collect(v, chunks)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        satisfied = np.concatenate(chunks)
        if satisfied.size == 0:
            return satisfied
        counts = np.bincount(satisfied, minlength=len(self._required_arr))
        return np.flatnonzero(counts == self._required_arr)

    def match(self, attributes: Mapping[str, float]) -> set[K]:
        keys = self._keys
        result = {keys[i] for i in self._indexed_hits(attributes)}
        result.update(self._match_all)
        result.update(self._fallback.match(attributes))
        return result

    def match_array(self, attributes: Mapping[str, float]) -> np.ndarray:
        """Matched keys as one int64 array — the zero-set fast path.

        Only valid when every key is a Python int (the subscription table
        interns rows to dense ids and uses those as keys).  Order is
        unspecified; callers that need a canonical order sort the result.
        """
        hits = self._indexed_hits(attributes)
        if self._keys_identity and not self._match_all and not len(self._fallback):
            # Keys == ids: the hit array (already sorted ascending, as it
            # comes from flatnonzero) is the answer with no gather.
            return hits
        if len(self._key_arr) != len(self._keys):
            self._key_arr = np.asarray(self._keys, dtype=np.int64)
        parts = [self._key_arr[hits]] if hits.size else []
        if self._match_all:
            parts.append(np.fromiter(self._match_all, dtype=np.int64, count=len(self._match_all)))
        if len(self._fallback):
            extra = self._fallback.match(attributes)
            if extra:
                parts.append(np.fromiter(extra, dtype=np.int64, count=len(extra)))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def count(self, attributes: Mapping[str, float]) -> int:
        """``len(match(...))`` without materialising the key set.

        Exact because the three categories are disjoint: ``add`` raises on
        duplicate keys, match-all ids carry a ``_NEVER`` total (never in
        the indexed hits) and fallback keys are never interned.
        """
        return (
            int(self._indexed_hits(attributes).size)
            + len(self._match_all)
            + len(self._fallback.match(attributes))
        )

    def __len__(self) -> int:
        return self._live + len(self._fallback)


#: Recognised ``matcher_backend`` selectors for :func:`make_matcher`.
MATCHER_BACKENDS = ("vector", "oracle", "brute")


def make_matcher(backend: str = "vector") -> MatchingEngine:
    """Build a matching engine by ``matcher_backend`` name.

    ``"vector"`` is the numpy fast path, ``"oracle"`` the dict-based
    counting matcher retained as the differential oracle, ``"brute"`` the
    plain filter scan.
    """
    if backend == "vector":
        return VectorCountingMatcher()
    if backend == "oracle":
        return CountingIndexMatcher()
    if backend == "brute":
        return BruteForceMatcher()
    raise ValueError(f"matcher_backend must be one of {MATCHER_BACKENDS}, got {backend!r}")
