"""Fault accounting: the queue-entry conservation ledger.

One :class:`FaultLedger` is shared by the system and every broker.  It
counts queue *entries* (one message bound for one remote neighbour) and
the (message, subscriber) *pairs* riding inside them, at each point of
the entry life cycle:

* ``enqueued``   — entry pushed onto a neighbour queue,
* ``sent``       — entry popped and its transmission started,
* ``pruned``     — entry deleted by deadline/feasibility pruning,
* ``dead``       — entry dead-lettered after aging out on a down link.

At any instant ``enqueued == sent + pruned + dead + still-queued`` holds
exactly (the sentinel checks it at every window boundary), and because
``sent`` entries either complete or are still in flight, the pair-level
identity *published = delivered + expired + dead-lettered + in-flight*
closes at end of run.  All updates are cheap integer adds on paths that
already do far more work per entry, and with no faults in the script the
fault counters stay zero — the run is byte-identical either way because
the ledger only observes, never decides.

Dead-letter semantics (graceful degradation): a broker whose link is
hard-down keeps the queued entries and retries with bounded exponential
backoff; entries older than ``dead_letter_timeout_ms`` are removed and
recorded here.  Nothing is silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class DeadLetterRecord:
    """One dead-lettered queue entry (a message × one down neighbour)."""

    broker: str
    neighbor: str
    msg_id: int
    pairs: int
    enqueue_ms: float
    dead_ms: float
    reason: str


@dataclass
class FaultLedger:
    """Shared entry/pair life-cycle counters plus fault-specific drops."""

    # -- entry life cycle (always active, faults or not) ----------------- #
    enqueued_entries: int = 0
    enqueued_pairs: int = 0
    sent_entries: int = 0
    sent_pairs: int = 0
    pruned_entries: int = 0
    pruned_pairs: int = 0

    # -- fault-layer drops (zero unless a fault script bites) ------------ #
    dead_entries: int = 0
    dead_pairs: int = 0
    #: Publications dropped whole because their source broker was down.
    publish_drops: int = 0
    #: Interested pairs of those dropped publications.
    publish_drop_pairs: int = 0
    #: Retry events fired against down links (diagnostics only).
    retries: int = 0
    #: Bounded tail of individual dead-letter records for inspection.
    records: list[DeadLetterRecord] = field(default_factory=list)
    #: Cap on ``records`` length (counters above are always exact).
    max_records: int = 4096

    # ------------------------------------------------------------------ #
    # Recording (all O(1) integer adds).
    # ------------------------------------------------------------------ #
    def on_enqueue(self, pairs: int) -> None:
        self.enqueued_entries += 1
        self.enqueued_pairs += pairs

    def on_send(self, pairs: int) -> None:
        self.sent_entries += 1
        self.sent_pairs += pairs

    def on_prune(self, entries: int, pairs: int) -> None:
        self.pruned_entries += entries
        self.pruned_pairs += pairs

    def on_dead_letter(self, record: DeadLetterRecord) -> None:
        self.dead_entries += 1
        self.dead_pairs += record.pairs
        if len(self.records) < self.max_records:
            self.records.append(record)

    def on_publish_drop(self, pairs: int) -> None:
        self.publish_drops += 1
        self.publish_drop_pairs += pairs

    def on_retry(self) -> None:
        self.retries += 1

    # ------------------------------------------------------------------ #
    # Views.
    # ------------------------------------------------------------------ #
    @property
    def clean(self) -> bool:
        """True iff no fault ever bit (the no-faults byte-identity case)."""
        return (
            self.dead_entries == 0
            and self.publish_drops == 0
            and self.retries == 0
        )

    def summary(self) -> dict[str, int]:
        return {
            "enqueued_entries": self.enqueued_entries,
            "enqueued_pairs": self.enqueued_pairs,
            "sent_entries": self.sent_entries,
            "sent_pairs": self.sent_pairs,
            "pruned_entries": self.pruned_entries,
            "pruned_pairs": self.pruned_pairs,
            "dead_entries": self.dead_entries,
            "dead_pairs": self.dead_pairs,
            "publish_drops": self.publish_drops,
            "publish_drop_pairs": self.publish_drop_pairs,
            "retries": self.retries,
        }
