"""Subscription filter language.

The paper's workload uses conjunctions of strict comparisons
(``A1 < x1 ∧ A2 < x2``); the filter language here is the natural superset
used by content-based systems (Siena-style): comparison predicates over
named numeric attributes combined with AND/OR.

Filters are immutable and hashable so they can key matching indexes.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Callable, Mapping

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class FilterError(ValueError):
    """Raised for malformed filters or filter expressions."""


class Filter:
    """Base class: anything with ``matches(attributes) -> bool``."""

    def matches(self, attributes: Mapping[str, float]) -> bool:
        raise NotImplementedError

    # Convenience combinators.
    def __and__(self, other: "Filter") -> "AndFilter":
        return AndFilter(_flatten(AndFilter, self) + _flatten(AndFilter, other))

    def __or__(self, other: "Filter") -> "OrFilter":
        return OrFilter(_flatten(OrFilter, self) + _flatten(OrFilter, other))


def _flatten(kind: type, f: Filter) -> tuple[Filter, ...]:
    if isinstance(f, kind):
        return f.parts  # type: ignore[attr-defined]
    return (f,)


@dataclass(frozen=True, slots=True)
class Predicate(Filter):
    """One comparison: ``attribute op value``.

    A message without the attribute does not match (tri-state logic
    collapsed to false, as in Siena).
    """

    attribute: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise FilterError(f"unknown operator {self.op!r}")
        if not self.attribute:
            raise FilterError("empty attribute name")

    def matches(self, attributes: Mapping[str, float]) -> bool:
        actual = attributes.get(self.attribute)
        if actual is None:
            return False
        return _OPS[self.op](actual, self.value)

    def __str__(self) -> str:
        return f"{self.attribute}{self.op}{self.value:g}"


@dataclass(frozen=True, slots=True)
class AndFilter(Filter):
    """Conjunction; the empty conjunction matches everything."""

    parts: tuple[Filter, ...]

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, attributes: Mapping[str, float]) -> bool:
        return all(p.matches(attributes) for p in self.parts)

    def __str__(self) -> str:
        return " & ".join(f"({p})" if isinstance(p, OrFilter) else str(p) for p in self.parts) or "TRUE"


@dataclass(frozen=True, slots=True)
class OrFilter(Filter):
    """Disjunction; the empty disjunction matches nothing."""

    parts: tuple[Filter, ...]

    def __init__(self, parts) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, attributes: Mapping[str, float]) -> bool:
        return any(p.matches(attributes) for p in self.parts)

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.parts) or "FALSE"


_TOKEN = re.compile(
    r"\s*(?P<attr>[A-Za-z_][A-Za-z_0-9]*)\s*(?P<op><=|>=|==|!=|<|>)\s*(?P<val>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*"
)


def parse_filter(text: str) -> Filter:
    """Parse ``"A1<5 & A2>=2 | A3==1"`` (``&`` binds tighter than ``|``).

    Returns a single :class:`Predicate` when the expression has one term.
    """
    if not text.strip():
        raise FilterError("empty filter expression")
    disjuncts = []
    for clause in text.split("|"):
        conjuncts = []
        for term in clause.split("&"):
            m = _TOKEN.fullmatch(term)
            if m is None:
                raise FilterError(f"cannot parse filter term {term.strip()!r}")
            conjuncts.append(Predicate(m["attr"], m["op"], float(m["val"])))
        disjuncts.append(conjuncts[0] if len(conjuncts) == 1 else AndFilter(conjuncts))
    if len(disjuncts) == 1:
        return disjuncts[0]
    return OrFilter(disjuncts)


def conjunction_predicates(f: Filter) -> tuple[Predicate, ...] | None:
    """The predicate list if ``f`` is a pure conjunction, else ``None``.

    The counting-index matcher only indexes pure conjunctions; everything
    else falls back to brute-force evaluation.
    """
    if isinstance(f, Predicate):
        return (f,)
    if isinstance(f, AndFilter) and all(isinstance(p, Predicate) for p in f.parts):
        return f.parts  # type: ignore[return-value]
    return None
