"""Client endpoints: publishers and subscribers.

Clients talk to their edge broker locally (no access link is modelled,
matching the paper), so these classes are thin: a publisher stamps and
injects messages, a subscriber records what arrives.

Delivery records are column-oriented **and chunked**: all endpoints of
one system share a :class:`DeliveryLog` (msg_id/time/latency/valid/sub_id
columns in a :class:`~repro.core.chunked.ChunkedColumnStore`) that the
system appends to per batch, one broadcast write per (message, edge
broker).  Sealed chunks are immutable and — with ``log_spill`` enabled —
live on disk, so a run's delivery history no longer has to fit in RAM;
every inspection path below is a streaming reduction over chunks.  A
:class:`SubscriberHandle` is a view over its slice of the log;
``records`` materialises :class:`DeliveryRecord` objects lazily for the
analysis/tests surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from repro.core.chunked import DEFAULT_CHUNK_ROWS, ChunkedColumnStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.message import Message
    from repro.pubsub.system import PubSubSystem


@dataclass
class PublisherHandle:
    """Named publisher bound to a system; counts what it published."""

    name: str
    system: "PubSubSystem"
    published: int = 0

    def publish(
        self,
        attributes: Mapping[str, float],
        size_kb: float | None = None,
        deadline_ms: float | None = None,
    ) -> "Message":
        message = self.system.publish(
            self.name, attributes, size_kb=size_kb, deadline_ms=deadline_ms
        )
        self.published += 1
        return message


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One message arrival at a subscriber endpoint."""

    msg_id: int
    time: float
    latency_ms: float
    valid: bool


#: Column schema of the shared delivery log (chunk storage order).
_LOG_SCHEMA = (
    ("sub_id", np.int64),
    ("msg_id", np.int64),
    ("time", np.float64),
    ("latency", np.float64),
    ("valid", np.bool_),
)


class DeliveryLog:
    """Chunked columnar append-only store of local delivery attempts.

    One instance is shared by every endpoint of a system; a batch of
    deliveries (one message fanning out to many local subscribers) lands
    as a single slice write per column.  Endpoint ids are dense ints
    handed out by :meth:`register`; id ``-1`` marks rows addressed to
    endpoints that no longer exist (filtered out before the write).

    Rows live in fixed-size immutable chunks (``chunk_rows`` each); with
    ``spill=True`` sealed chunks are written to a private temp ``.npz``
    ring and only the active chunk stays hot — the memory high-water
    mark of the log becomes O(chunk), independent of run length.
    Chunking never reorders rows, so every chunk-streaming reduction
    below returns exactly what the old whole-array pass returned.
    """

    __slots__ = ("_store", "_endpoints", "_counts_len", "_valid_counts", "_total_counts")

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS, spill: bool = False) -> None:
        self._store = ChunkedColumnStore(
            _LOG_SCHEMA, chunk_rows=chunk_rows, spill=spill,
            spill_prefix="repro-delivery-log",
        )
        self._endpoints = 0
        # One-pass per-endpoint tallies, cached against the log length:
        # post-run analysis (revenue tiers, per-subscriber counts) asks
        # for every endpoint, and a single chunk stream beats one full
        # scan per endpoint by a factor of the population size.
        self._counts_len = -1
        self._valid_counts: np.ndarray | None = None
        self._total_counts: np.ndarray | None = None

    def register(self) -> int:
        """Hand out the next endpoint id (re-subscribing yields a fresh id,
        so a returned handle keeps its own history)."""
        eid = self._endpoints
        self._endpoints += 1
        return eid

    @property
    def endpoint_count(self) -> int:
        """Endpoints registered so far (dense ids ``0..count-1``)."""
        return self._endpoints

    @property
    def chunk_rows(self) -> int:
        return self._store.chunk_rows

    @property
    def spilled_chunks(self) -> int:
        """Sealed chunks currently resident on disk rather than in RAM."""
        return self._store.spilled_chunks

    @property
    def spills(self) -> bool:
        return self._store.spills

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------ #
    # Appending.
    # ------------------------------------------------------------------ #
    def append(self, sub_id: int, msg_id: int, time: float, latency_ms: float, valid: bool) -> None:
        self._store.append_row(sub_id, msg_id, time, latency_ms, valid)

    def append_batch(
        self,
        sub_ids: np.ndarray,
        msg_id: int,
        time: float,
        latency_ms: float,
        valid: np.ndarray,
    ) -> None:
        """One message's local fan-out: shared msg/time/latency scalars
        (broadcast, no temporaries), per-row endpoint id and validity.
        Rows with ``sub_id < 0`` (no live endpoint) are dropped."""
        live = sub_ids >= 0
        if not live.all():
            sub_ids = sub_ids[live]
            valid = valid[live]
        n = sub_ids.shape[0]
        if n == 0:
            return
        self._store.append_batch(n, sub_ids, msg_id, time, latency_ms, valid)

    # ------------------------------------------------------------------ #
    # Streaming reads.
    # ------------------------------------------------------------------ #
    def iter_chunks(
        self, names: Sequence[str] | None = None
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Stream ``(col, ...)`` tuples per chunk in append (= simulated
        time) order — the input of every analysis reduction.  Spilled
        chunks load only the requested columns.  Do not mutate yields;
        consume before appending again."""
        return self._store.iter_chunks(names)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-log ``(sub_id, msg_id, time, latency, valid)`` columns in
        append order, as **snapshot copies** — safe to hold across later
        appends (unlike the pre-chunking zero-copy views), but the whole
        log is materialised: prefer :meth:`iter_chunks` at scale."""
        return self._store.gather()  # type: ignore[return-value]

    def _endpoint_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """(total, valid) delivery tallies per endpoint id, one streaming
        pass over (sub_id, valid), cached against the log length."""
        n = len(self._store)
        if n != self._counts_len:
            total = np.zeros(max(self._endpoints, 1), dtype=np.int64)
            valid_c = np.zeros(max(self._endpoints, 1), dtype=np.int64)
            for sub, valid in self._store.iter_chunks(("sub_id", "valid")):
                total += np.bincount(sub, minlength=total.shape[0])
                valid_c += np.bincount(sub[valid], minlength=valid_c.shape[0])
            self._total_counts, self._valid_counts = total, valid_c
            self._counts_len = n
        elif self._total_counts is not None and self._total_counts.shape[0] < self._endpoints:
            # Endpoints registered since the cache was built have no rows
            # by construction (ids are handed out before first use): pad
            # with zeros instead of re-streaming the (possibly spilled) log.
            pad = self._endpoints - self._total_counts.shape[0]
            self._total_counts = np.concatenate(
                (self._total_counts, np.zeros(pad, dtype=np.int64))
            )
            self._valid_counts = np.concatenate(
                (self._valid_counts, np.zeros(pad, dtype=np.int64))
            )
        return self._total_counts, self._valid_counts  # type: ignore[return-value]

    def counts_for(self, sub_id: int) -> tuple[int, int]:
        """(total, valid) deliveries recorded for one endpoint."""
        total, valid = self._endpoint_counts()
        if sub_id >= total.shape[0]:
            return 0, 0
        return int(total[sub_id]), int(valid[sub_id])

    def columns_for(self, sub_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(msg_id, time, latency, valid) columns of one endpoint, in
        arrival order (copies — safe to hold across later appends).

        A per-call streaming filter: each call scans every chunk (from
        disk, under spill), gathering only the matching rows.  That is
        the deliberate bounded-memory trade for dropping the old
        whole-log grouped index; code inspecting *many* endpoints must
        not loop over this — the mass consumers in :mod:`repro.analysis`
        (pooled latency samples, received sets, per-endpoint tallies)
        each group one shared streaming pass instead."""
        parts: list[tuple[np.ndarray, ...]] = []
        for sub, msg, time, lat, valid in self._store.iter_chunks():
            hit = sub == sub_id
            if hit.any():
                parts.append((msg[hit], time[hit], lat[hit], valid[hit]))
        if not parts:
            return (
                np.empty(0, dtype=np.int64), np.empty(0), np.empty(0),
                np.empty(0, dtype=bool),
            )
        if len(parts) == 1:
            return parts[0]  # fancy-index results are already copies
        return tuple(np.concatenate([p[i] for p in parts]) for i in range(4))  # type: ignore[return-value]


class SubscriberHandle:
    """Named subscriber endpoint: a view over the shared delivery log.

    Constructed standalone (tests, ad-hoc use) it owns a private log;
    inside a system all handles share the system's log so deliveries
    append in bulk.
    """

    __slots__ = ("name", "_log", "_sub_id", "_cache_len", "_cache")

    def __init__(self, name: str, log: DeliveryLog | None = None) -> None:
        self.name = name
        self._log = log if log is not None else DeliveryLog()
        self._sub_id = self._log.register()
        self._cache_len = -1
        self._cache: list[DeliveryRecord] = []

    @property
    def log_id(self) -> int:
        """This endpoint's dense id in the shared delivery log."""
        return self._sub_id

    @property
    def log(self) -> DeliveryLog:
        """The (possibly shared) delivery log backing this endpoint."""
        return self._log

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def on_delivery(self, message: "Message", latency_ms: float, valid: bool, now: float) -> None:
        self._log.append(self._sub_id, message.msg_id, now, latency_ms, valid)

    def record(self, msg_id: int, time: float, latency_ms: float, valid: bool) -> None:
        """Append one raw record (test/analysis convenience)."""
        self._log.append(self._sub_id, msg_id, time, latency_ms, valid)

    # ------------------------------------------------------------------ #
    # Inspection.
    # ------------------------------------------------------------------ #
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(msg_id, time, latency_ms, valid) arrays, arrival order."""
        return self._log.columns_for(self._sub_id)

    @property
    def records(self) -> list[DeliveryRecord]:
        """Lazy materialisation of the endpoint's delivery records.

        Cached against the shared log's length; treat the list as
        read-only (use :meth:`record` / :meth:`on_delivery` to add)."""
        n = len(self._log)
        if n != self._cache_len:
            msg, time, lat, valid = self.columns()
            self._cache = [
                DeliveryRecord(m, t, l, v)
                for m, t, l, v in zip(
                    msg.tolist(), time.tolist(), lat.tolist(), valid.tolist()
                )
            ]
            self._cache_len = n
        return self._cache

    @property
    def valid_count(self) -> int:
        _, valid = self._log.counts_for(self._sub_id)
        return valid

    @property
    def late_count(self) -> int:
        total, valid = self._log.counts_for(self._sub_id)
        return total - valid

    def received_ids(self) -> set[int]:
        out: set[int] = set()
        for sub, msg in self._log.iter_chunks(("sub_id", "msg_id")):
            out.update(msg[sub == self._sub_id].tolist())
        return out
