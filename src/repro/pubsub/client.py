"""Client endpoints: publishers and subscribers.

Clients talk to their edge broker locally (no access link is modelled,
matching the paper), so these classes are thin: a publisher stamps and
injects messages, a subscriber records what arrives.  Examples and tests
use them; the sweep harness drives the system directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.message import Message
    from repro.pubsub.system import PubSubSystem


@dataclass
class PublisherHandle:
    """Named publisher bound to a system; counts what it published."""

    name: str
    system: "PubSubSystem"
    published: int = 0

    def publish(
        self,
        attributes: Mapping[str, float],
        size_kb: float | None = None,
        deadline_ms: float | None = None,
    ) -> "Message":
        message = self.system.publish(
            self.name, attributes, size_kb=size_kb, deadline_ms=deadline_ms
        )
        self.published += 1
        return message


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One message arrival at a subscriber endpoint."""

    msg_id: int
    time: float
    latency_ms: float
    valid: bool


@dataclass
class SubscriberHandle:
    """Named subscriber endpoint recording its deliveries."""

    name: str
    records: list[DeliveryRecord] = field(default_factory=list)

    def on_delivery(self, message: "Message", latency_ms: float, valid: bool, now: float) -> None:
        self.records.append(
            DeliveryRecord(msg_id=message.msg_id, time=now, latency_ms=latency_ms, valid=valid)
        )

    @property
    def valid_count(self) -> int:
        return sum(1 for r in self.records if r.valid)

    @property
    def late_count(self) -> int:
        return sum(1 for r in self.records if not r.valid)

    def received_ids(self) -> set[int]:
        return {r.msg_id for r in self.records}
