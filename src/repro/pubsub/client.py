"""Client endpoints: publishers and subscribers.

Clients talk to their edge broker locally (no access link is modelled,
matching the paper), so these classes are thin: a publisher stamps and
injects messages, a subscriber records what arrives.

Delivery records are column-oriented: all endpoints of one system share a
:class:`DeliveryLog` (msg_id/time/latency/valid/sub_id columns in growable
arrays) that the system appends to **per batch**, one vectorised write per
(message, edge broker).  A :class:`SubscriberHandle` is a view over its
slice of the log; ``records`` materialises :class:`DeliveryRecord` objects
lazily for the analysis/tests surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.growable import GrowableArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pubsub.message import Message
    from repro.pubsub.system import PubSubSystem


@dataclass
class PublisherHandle:
    """Named publisher bound to a system; counts what it published."""

    name: str
    system: "PubSubSystem"
    published: int = 0

    def publish(
        self,
        attributes: Mapping[str, float],
        size_kb: float | None = None,
        deadline_ms: float | None = None,
    ) -> "Message":
        message = self.system.publish(
            self.name, attributes, size_kb=size_kb, deadline_ms=deadline_ms
        )
        self.published += 1
        return message


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One message arrival at a subscriber endpoint."""

    msg_id: int
    time: float
    latency_ms: float
    valid: bool


_NO_ROWS = np.empty(0, dtype=np.int64)


class DeliveryLog:
    """Columnar append-only store of local delivery attempts.

    One instance is shared by every endpoint of a system; a batch of
    deliveries (one message fanning out to many local subscribers) lands
    as a single slice write per column.  Endpoint ids are dense ints
    handed out by :meth:`register`; id ``-1`` marks rows addressed to
    endpoints that no longer exist (filtered out before the write).
    """

    __slots__ = (
        "_sub_id", "_msg_id", "_time", "_latency", "_valid", "_endpoints",
        "_index", "_index_len",
    )

    def __init__(self) -> None:
        self._sub_id = GrowableArray(np.int64)
        self._msg_id = GrowableArray(np.int64)
        self._time = GrowableArray(np.float64)
        self._latency = GrowableArray(np.float64)
        self._valid = GrowableArray(bool)
        self._endpoints = 0
        # Lazy endpoint-id -> row-index map, rebuilt when the log grew;
        # post-run analysis queries every endpoint, so one grouped argsort
        # beats one full-column scan per endpoint.
        self._index: dict[int, np.ndarray] = {}
        self._index_len = -1

    def register(self) -> int:
        """Hand out the next endpoint id (re-subscribing yields a fresh id,
        so a returned handle keeps its own history)."""
        eid = self._endpoints
        self._endpoints += 1
        return eid

    @property
    def endpoint_count(self) -> int:
        """Endpoints registered so far (dense ids ``0..count-1``)."""
        return self._endpoints

    def __len__(self) -> int:
        return len(self._sub_id)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-log ``(sub_id, msg_id, time, latency, valid)`` columns in
        append (= simulated-time) order, as zero-copy views — the input of
        the windowed time-series reductions.  Do not hold across appends."""
        return (
            self._sub_id.view(),
            self._msg_id.view(),
            self._time.view(),
            self._latency.view(),
            self._valid.view(),
        )

    def append(self, sub_id: int, msg_id: int, time: float, latency_ms: float, valid: bool) -> None:
        self._sub_id.append(sub_id)
        self._msg_id.append(msg_id)
        self._time.append(time)
        self._latency.append(latency_ms)
        self._valid.append(valid)

    def append_batch(
        self,
        sub_ids: np.ndarray,
        msg_id: int,
        time: float,
        latency_ms: float,
        valid: np.ndarray,
    ) -> None:
        """One message's local fan-out: shared msg/time/latency scalars,
        per-row endpoint id and validity.  Rows with ``sub_id < 0`` (no
        live endpoint) are dropped."""
        live = sub_ids >= 0
        if not live.all():
            sub_ids = sub_ids[live]
            valid = valid[live]
        n = sub_ids.shape[0]
        if n == 0:
            return
        self._sub_id.extend(sub_ids)
        self._msg_id.extend(np.full(n, msg_id, dtype=np.int64))
        self._time.extend(np.full(n, time))
        self._latency.extend(np.full(n, latency_ms))
        self._valid.extend(valid)

    def _rows_of(self, sub_id: int) -> np.ndarray:
        n = len(self._sub_id)
        if n != self._index_len:
            if n == 0:
                self._index = {}
                self._index_len = 0
                return _NO_ROWS
            sub = self._sub_id.view()
            order = np.argsort(sub, kind="stable")  # stable: arrival order
            sorted_ids = sub[order]
            bounds = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
            stops = np.append(bounds, n)
            self._index = {
                int(sorted_ids[s]): order[s:e] for s, e in zip(starts, stops)
            }
            self._index_len = n
        return self._index.get(sub_id, _NO_ROWS)

    def columns_for(self, sub_id: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(msg_id, time, latency, valid) columns of one endpoint, in
        arrival order (copies — safe to hold across later appends)."""
        idx = self._rows_of(sub_id)
        return (
            self._msg_id.view()[idx],
            self._time.view()[idx],
            self._latency.view()[idx],
            self._valid.view()[idx],
        )


class SubscriberHandle:
    """Named subscriber endpoint: a view over the shared delivery log.

    Constructed standalone (tests, ad-hoc use) it owns a private log;
    inside a system all handles share the system's log so deliveries
    append in bulk.
    """

    __slots__ = ("name", "_log", "_sub_id", "_cache_len", "_cache")

    def __init__(self, name: str, log: DeliveryLog | None = None) -> None:
        self.name = name
        self._log = log if log is not None else DeliveryLog()
        self._sub_id = self._log.register()
        self._cache_len = -1
        self._cache: list[DeliveryRecord] = []

    @property
    def log_id(self) -> int:
        """This endpoint's dense id in the shared delivery log."""
        return self._sub_id

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def on_delivery(self, message: "Message", latency_ms: float, valid: bool, now: float) -> None:
        self._log.append(self._sub_id, message.msg_id, now, latency_ms, valid)

    def record(self, msg_id: int, time: float, latency_ms: float, valid: bool) -> None:
        """Append one raw record (test/analysis convenience)."""
        self._log.append(self._sub_id, msg_id, time, latency_ms, valid)

    # ------------------------------------------------------------------ #
    # Inspection.
    # ------------------------------------------------------------------ #
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(msg_id, time, latency_ms, valid) arrays, arrival order."""
        return self._log.columns_for(self._sub_id)

    @property
    def records(self) -> list[DeliveryRecord]:
        """Lazy materialisation of the endpoint's delivery records.

        Cached against the shared log's length; treat the list as
        read-only (use :meth:`record` / :meth:`on_delivery` to add)."""
        n = len(self._log)
        if n != self._cache_len:
            msg, time, lat, valid = self.columns()
            self._cache = [
                DeliveryRecord(m, t, l, v)
                for m, t, l, v in zip(
                    msg.tolist(), time.tolist(), lat.tolist(), valid.tolist()
                )
            ]
            self._cache_len = n
        return self._cache

    @property
    def valid_count(self) -> int:
        _, _, _, valid = self.columns()
        return int(np.count_nonzero(valid))

    @property
    def late_count(self) -> int:
        _, _, _, valid = self.columns()
        return int(valid.shape[0] - np.count_nonzero(valid))

    def received_ids(self) -> set[int]:
        msg, _, _, _ = self.columns()
        return set(msg.tolist())
