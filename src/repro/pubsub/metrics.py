"""Evaluation counters (Section 4.1 and 6.1).

* **Delivery rate** (PSD): ``Σ ds_i / Σ ts_i`` over published messages,
  where ``ts_i`` is how many subscribers are interested in message ``i``
  and ``ds_i`` how many received it before its deadline.
* **Total earning** (SSD): ``Σ price(s) · msg(s)`` over subscribers.
* **Message number**: total messages received by all brokers — the
  network-traffic proxy the paper plots in Figs. 5(b)/6(b).

Two interchangeable backends implement the accounting
(:func:`make_metrics`):

* ``"ledger"`` (:class:`LedgerMetricsCollector`, the default) — the
  columnar spine: subscribers and messages interned to dense ids,
  per-message duplicate settlement via flat sorted settled-id arrays,
  tallies in growable numpy accumulators, and a batched
  ``on_delivery_batch`` entry point matched to the broker's batched
  local delivery.
* ``"scalar"`` (:class:`MetricsCollector`) — the original per-delivery
  dict/set collector, kept as the differential oracle.

Both produce byte-identical derived metrics: the ledger logs the float
contributions (prices, latencies) in arrival order and folds them with
the same left-to-right summation the scalar collector performs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.folds import fold_sum_array
from repro.core.growable import GrowableArray

#: Available accounting backends, fast path first.
METRICS_BACKENDS: tuple[str, ...] = ("ledger", "scalar")


class MetricsError(AssertionError):
    """An accounting invariant does not hold.

    Subclasses :class:`AssertionError` for backwards compatibility, but is
    raised explicitly so the checks survive ``python -O``.
    """


def make_metrics(backend: str = "ledger") -> "MetricsCollector | LedgerMetricsCollector":
    """Instantiate the accounting backend by name."""
    if backend == "ledger":
        return LedgerMetricsCollector()
    if backend == "scalar":
        return MetricsCollector()
    raise ValueError(
        f"metrics_backend must be one of {METRICS_BACKENDS}, got {backend!r}"
    )


@dataclass
class MetricsCollector:
    """Mutable counters updated by the system while the simulation runs.

    The scalar reference backend: one Python call per delivery, pair
    settlement via ``(msg_id, subscriber)`` tuple sets.
    """

    published: int = 0
    receptions: int = 0  # "message number"
    transmissions: int = 0
    deliveries_valid: int = 0
    deliveries_late: int = 0
    pruned: int = 0  # queue entries deleted as invalid/hopeless
    earning: float = 0.0
    interested: dict[int, int] = field(default_factory=dict)  # msg_id -> ts_i
    delivered: dict[int, int] = field(default_factory=lambda: defaultdict(int))  # msg_id -> ds_i
    per_subscriber_valid: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    latency_sum_ms: float = 0.0
    # Pair-level dedup: under multi-path routing the same (message,
    # subscriber) pair can arrive more than once; only the first arrival
    # counts (single-path routing never produces duplicates, so this is a
    # no-op there).  Keys are (msg_id, subscriber).
    _valid_pairs: set = field(default_factory=set, repr=False)
    _late_pairs: set = field(default_factory=set, repr=False)
    duplicate_deliveries: int = 0

    #: Backend name, mirroring :data:`METRICS_BACKENDS`.
    backend = "scalar"

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def on_publish(self, msg_id: int, interested_subscribers: int) -> None:
        self.published += 1
        self.interested[msg_id] = interested_subscribers

    def on_reception(self) -> None:
        self.receptions += 1

    def on_transmission(self) -> None:
        self.transmissions += 1

    def on_delivery(self, msg_id: int, subscriber: str, latency_ms: float, price: float, valid: bool) -> None:
        pair = (msg_id, subscriber)
        if pair in self._valid_pairs or pair in self._late_pairs:
            self.duplicate_deliveries += 1
            return
        if valid:
            self._valid_pairs.add(pair)
            self.deliveries_valid += 1
            self.delivered[msg_id] += 1
            self.per_subscriber_valid[subscriber] += 1
            self.earning += price
            self.latency_sum_ms += latency_ms
        else:
            # Arrivals are time-ordered, so a late first arrival implies
            # every later duplicate is late too — safe to settle the pair.
            self._late_pairs.add(pair)
            self.deliveries_late += 1

    def on_delivery_batch(
        self,
        msg_id: int,
        subscribers: list[str],
        latency_ms: float,
        prices: np.ndarray,
        valid: np.ndarray,
    ) -> None:
        """One message's local deliveries at one broker, settled per row.

        All rows of a batch share the arrival time (hence one scalar
        ``latency_ms``); the scalar backend just replays the per-row path
        in batch order — it *is* the oracle for the ledger's batched
        settlement.
        """
        for sub, price, ok in zip(subscribers, prices.tolist(), valid.tolist()):
            self.on_delivery(msg_id, sub, latency_ms, price, ok)

    def on_prune(self, count: int = 1) -> None:
        self.pruned += count

    # ------------------------------------------------------------------ #
    # Derived metrics.
    # ------------------------------------------------------------------ #
    @property
    def total_interested(self) -> int:
        # repro-lint: ignore[RL006] -- exact integer tally (int counters)
        return sum(self.interested.values())

    @property
    def delivery_rate(self) -> float:
        """``Σ ds_i / Σ ts_i`` — 0.0 when nothing was publishable."""
        denom = self.total_interested
        return self.deliveries_valid / denom if denom else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.deliveries_valid if self.deliveries_valid else 0.0

    def check_invariants(self) -> None:
        """Accounting sanity: raise :class:`MetricsError` on impossible
        counters (a real raise, not ``assert`` — survives ``python -O``)."""
        # repro-lint: ignore[RL006] -- exact integer tally (int counters)
        if self.deliveries_valid != sum(self.delivered.values()):
            raise MetricsError(
                f"valid-delivery total {self.deliveries_valid} != per-message "
                f"sum {sum(self.delivered.values())}"  # repro-lint: ignore[RL006]
            )
        if self.deliveries_valid > self.total_interested:
            raise MetricsError("delivered more than the interested population")
        for msg_id, count in self.delivered.items():
            if count > self.interested.get(msg_id, 0):
                raise MetricsError(f"over-delivery of msg {msg_id}")
        if self.receptions < 0 or self.pruned < 0:
            raise MetricsError("negative traffic counters")
        if self.earning < 0.0:
            raise MetricsError("negative earning")


_EMPTY_SETTLED = np.empty(0, dtype=np.int64)


class _FoldedSum:
    """Float contributions logged in arrival order, folded left-to-right
    on read.

    The fold order is correctness-critical: it reproduces byte-for-byte
    the running ``acc += value`` sum the scalar collector keeps, while
    appends on the hot path stay vectorised.  The fold is amortised O(1)
    per read (a watermark remembers what has been folded).

    Memory is **bounded**: once the unfolded tail reaches ``_TRIM_AT``
    entries the log is folded into the accumulator and discarded —
    folding earlier performs exactly the same additions in exactly the
    same order, so trimming is invisible in the result, and the ledger's
    float state stays O(1) over million-delivery runs instead of
    retaining every contribution.
    """

    __slots__ = ("_log", "_folded", "_acc")

    #: Fold-and-trim threshold (entries); small enough to bound memory,
    #: large enough that the Python fold loop stays amortised.
    _TRIM_AT = 65_536

    def __init__(self) -> None:
        self._log = GrowableArray(np.float64)
        self._folded = 0
        self._acc = 0.0

    def append(self, value: float) -> None:
        self._log.append(value)
        if len(self._log) >= self._TRIM_AT:
            self._fold_and_trim()

    def extend(self, values: np.ndarray) -> None:
        self._log.extend(values)
        if len(self._log) >= self._TRIM_AT:
            self._fold_and_trim()

    def _fold_and_trim(self) -> None:
        self.value()
        self._log = GrowableArray(np.float64)
        self._folded = 0

    def value(self) -> float:
        n = len(self._log)
        if self._folded < n:
            tail = self._log.view()[self._folded:]
            # The documented left fold (repro.core.folds): the same
            # sequential chain of float64 additions as the scalar
            # ``acc += v`` loop, seeded with the accumulator — the
            # running sum byte-for-byte, no Python loop over the tail.
            self._acc = fold_sum_array(tail, start=self._acc)
            self._folded = n
        return self._acc


class LedgerMetricsCollector:
    """Array-backed accounting: the columnar spine's ledger.

    Subscribers and messages are interned to dense ids on first sight
    (the same counting-index discipline the vector matcher applies to
    rows), per-message pair settlement is a flat sorted array of settled
    subscriber ids probed with ``searchsorted``, and per-message /
    per-subscriber tallies are growable numpy accumulators.  Float
    contributions (prices of counted valid deliveries, their latencies)
    are appended in arrival order and folded left-to-right on read, so
    ``earning`` and ``mean_latency_ms`` are byte-identical to the scalar
    collector's running sums.
    """

    backend = "ledger"

    def __init__(self) -> None:
        self.published = 0
        self.receptions = 0
        self.transmissions = 0
        self.deliveries_valid = 0
        self.deliveries_late = 0
        self.pruned = 0
        self.duplicate_deliveries = 0
        # Message interning and per-message tallies (dense mid-indexed).
        self._mid_of: dict[int, int] = {}
        self._msg_ids: list[int] = []
        self._interested = GrowableArray(np.int64)
        self._delivered = GrowableArray(np.int64)
        #: Per message: sorted array of settled subscriber ids (valid and
        #: late alike — settlement is first-arrival-wins either way).
        self._settled: list[np.ndarray] = []
        # Subscriber interning and per-subscriber tallies.
        self._sid_of: dict[str, int] = {}
        self._sub_names: list[str] = []
        self._sub_valid = GrowableArray(np.int64)
        # Float contribution logs (arrival order, folded on read).
        self._earn = _FoldedSum()
        self._lat = _FoldedSum()
        self._total_interested = 0

    # ------------------------------------------------------------------ #
    # Interning.
    # ------------------------------------------------------------------ #
    def _mid(self, msg_id: int) -> int:
        mid = self._mid_of.get(msg_id)
        if mid is None:
            mid = self._mid_of[msg_id] = len(self._msg_ids)
            self._msg_ids.append(msg_id)
            self._interested.at_least(mid + 1)
            self._delivered.at_least(mid + 1)
            self._settled.append(_EMPTY_SETTLED)
        return mid

    def _sid(self, subscriber: str) -> int:
        sid = self._sid_of.get(subscriber)
        if sid is None:
            sid = self._sid_of[subscriber] = len(self._sub_names)
            self._sub_names.append(subscriber)
        return sid

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def on_publish(self, msg_id: int, interested_subscribers: int) -> None:
        self.published += 1
        mid = self._mid(msg_id)
        col = self._interested.view()
        self._total_interested += interested_subscribers - int(col[mid])
        col[mid] = interested_subscribers

    def on_reception(self) -> None:
        self.receptions += 1

    def on_transmission(self) -> None:
        self.transmissions += 1

    def on_prune(self, count: int = 1) -> None:
        self.pruned += count

    def intern_subscribers(self, names: list[str]) -> np.ndarray:
        """Dense ledger ids for a name column, in order.

        Brokers call this once per growth of their table's interned name
        list and cache the result, so batched settlement maps table-local
        subscriber ids to ledger ids with one fancy index — no per-row
        dict lookups on the delivery path.
        """
        return np.fromiter(map(self._sid, names), dtype=np.int64, count=len(names))

    def _settle_one(self, mid: int, sid: int, latency_ms: float, price: float, valid: bool) -> None:
        settled = self._settled[mid]
        pos = int(np.searchsorted(settled, sid))
        if pos < settled.size and settled[pos] == sid:
            self.duplicate_deliveries += 1
            return
        self._settled[mid] = np.insert(settled, pos, sid)
        if valid:
            self.deliveries_valid += 1
            self._delivered.view()[mid] += 1
            self._sub_valid.at_least(sid + 1)[sid] += 1
            self._earn.append(price)
            self._lat.append(latency_ms)
        else:
            self.deliveries_late += 1

    def on_delivery(self, msg_id: int, subscriber: str, latency_ms: float, price: float, valid: bool) -> None:
        """Scalar entry point (API parity with the oracle collector)."""
        self._settle_one(self._mid(msg_id), self._sid(subscriber), latency_ms, price, valid)

    def on_delivery_batch(
        self,
        msg_id: int,
        subscribers: list[str],
        latency_ms: float,
        prices: np.ndarray,
        valid: np.ndarray,
    ) -> None:
        """Settle one message's local deliveries at one broker in bulk."""
        if subscribers:
            self.on_delivery_batch_ids(
                msg_id, self.intern_subscribers(subscribers), latency_ms, prices, valid
            )

    def on_delivery_batch_ids(
        self,
        msg_id: int,
        sids: np.ndarray,
        latency_ms: float,
        prices: np.ndarray,
        valid: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        """Batched settlement with pre-interned ledger subscriber ids
        (see :meth:`intern_subscribers`).

        Rows are expected unique per subscriber within a batch (the
        broker's ``match_grouped`` dedups per group and passes
        ``assume_unique=True`` to skip the check); when the check runs and
        fails, the batch falls back to the order-exact scalar path.
        """
        n = sids.shape[0]
        if n == 0:
            return
        mid = self._mid(msg_id)
        settled = self._settled[mid]
        pos = np.searchsorted(settled, sids)
        dup = np.zeros(n, dtype=bool)
        in_range = pos < settled.size
        dup[in_range] = settled[pos[in_range]] == sids[in_range]
        fresh = ~dup
        fresh_ids = sids[fresh]
        if not assume_unique and np.unique(fresh_ids).size != fresh_ids.size:
            # Intra-batch duplicate subscribers: replay row by row so the
            # first-arrival-wins order is exact.
            for sid, price, ok in zip(sids.tolist(), prices.tolist(), valid.tolist()):
                self._settle_one(mid, sid, latency_ms, price, ok)
            return
        ndup = int(dup.sum())
        self.duplicate_deliveries += ndup
        if ndup == n:
            return
        valid_new = valid & fresh
        nv = int(np.count_nonzero(valid_new))
        self.deliveries_valid += nv
        self.deliveries_late += (n - ndup) - nv
        if nv:
            self._delivered.view()[mid] += nv
            vids = sids[valid_new]
            tallies = self._sub_valid.at_least(int(vids.max()) + 1)
            np.add.at(tallies, vids, 1)
            self._earn.extend(prices[valid_new])
            self._lat.extend(np.full(nv, latency_ms))
        # Both sides sorted (settled by invariant, fresh after its own
        # small sort) — a positional insert is a linear merge, instead of
        # re-sorting the whole settled set on every batch.
        fresh_sorted = np.sort(fresh_ids)
        self._settled[mid] = np.insert(
            settled, np.searchsorted(settled, fresh_sorted), fresh_sorted
        )

    # ------------------------------------------------------------------ #
    # Derived metrics.
    # ------------------------------------------------------------------ #
    @property
    def earning(self) -> float:
        return self._earn.value()

    @property
    def latency_sum_ms(self) -> float:
        return self._lat.value()

    @property
    def total_interested(self) -> int:
        return self._total_interested

    @property
    def delivery_rate(self) -> float:
        denom = self._total_interested
        return self.deliveries_valid / denom if denom else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.deliveries_valid if self.deliveries_valid else 0.0

    @property
    def interested(self) -> dict[int, int]:
        """Materialised ``msg_id -> ts_i`` view (oracle-dict parity)."""
        col = self._interested.view()
        return {m: int(col[i]) for i, m in enumerate(self._msg_ids)}

    @property
    def delivered(self) -> dict[int, int]:
        """Materialised ``msg_id -> ds_i`` view, messages with ds_i > 0."""
        col = self._delivered.view()
        return {m: int(col[i]) for i, m in enumerate(self._msg_ids) if col[i]}

    @property
    def per_subscriber_valid(self) -> dict[str, int]:
        """Materialised ``subscriber -> valid count`` view (counts > 0)."""
        col = self._sub_valid.view()
        n = col.shape[0]
        return {
            s: int(col[i])
            for i, s in enumerate(self._sub_names)
            if i < n and col[i]
        }

    def check_invariants(self) -> None:
        """Accounting sanity over the ledger arrays (real raises)."""
        delivered = self._delivered.view()
        interested = self._interested.view()
        if self.deliveries_valid != int(delivered.sum()):
            raise MetricsError(
                f"valid-delivery total {self.deliveries_valid} != per-message "
                f"sum {int(delivered.sum())}"
            )
        if self.deliveries_valid > self._total_interested:
            raise MetricsError("delivered more than the interested population")
        over = np.flatnonzero(delivered > interested)
        if over.size:
            raise MetricsError(f"over-delivery of msg {self._msg_ids[int(over[0])]}")
        if self.receptions < 0 or self.pruned < 0:
            raise MetricsError("negative traffic counters")
        if self.earning < 0.0:
            raise MetricsError("negative earning")
