"""Evaluation counters (Section 4.1 and 6.1).

* **Delivery rate** (PSD): ``Σ ds_i / Σ ts_i`` over published messages,
  where ``ts_i`` is how many subscribers are interested in message ``i``
  and ``ds_i`` how many received it before its deadline.
* **Total earning** (SSD): ``Σ price(s) · msg(s)`` over subscribers.
* **Message number**: total messages received by all brokers — the
  network-traffic proxy the paper plots in Figs. 5(b)/6(b).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class MetricsCollector:
    """Mutable counters updated by the system while the simulation runs."""

    published: int = 0
    receptions: int = 0  # "message number"
    transmissions: int = 0
    deliveries_valid: int = 0
    deliveries_late: int = 0
    pruned: int = 0  # queue entries deleted as invalid/hopeless
    earning: float = 0.0
    interested: dict[int, int] = field(default_factory=dict)  # msg_id -> ts_i
    delivered: dict[int, int] = field(default_factory=lambda: defaultdict(int))  # msg_id -> ds_i
    per_subscriber_valid: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    latency_sum_ms: float = 0.0
    # Pair-level dedup: under multi-path routing the same (message,
    # subscriber) pair can arrive more than once; only the first arrival
    # counts (single-path routing never produces duplicates, so this is a
    # no-op there).  Keys are (msg_id, subscriber).
    _valid_pairs: set = field(default_factory=set, repr=False)
    _late_pairs: set = field(default_factory=set, repr=False)
    duplicate_deliveries: int = 0

    # ------------------------------------------------------------------ #
    # Recording.
    # ------------------------------------------------------------------ #
    def on_publish(self, msg_id: int, interested_subscribers: int) -> None:
        self.published += 1
        self.interested[msg_id] = interested_subscribers

    def on_reception(self) -> None:
        self.receptions += 1

    def on_transmission(self) -> None:
        self.transmissions += 1

    def on_delivery(self, msg_id: int, subscriber: str, latency_ms: float, price: float, valid: bool) -> None:
        pair = (msg_id, subscriber)
        if pair in self._valid_pairs or pair in self._late_pairs:
            self.duplicate_deliveries += 1
            return
        if valid:
            self._valid_pairs.add(pair)
            self.deliveries_valid += 1
            self.delivered[msg_id] += 1
            self.per_subscriber_valid[subscriber] += 1
            self.earning += price
            self.latency_sum_ms += latency_ms
        else:
            # Arrivals are time-ordered, so a late first arrival implies
            # every later duplicate is late too — safe to settle the pair.
            self._late_pairs.add(pair)
            self.deliveries_late += 1

    def on_prune(self, count: int = 1) -> None:
        self.pruned += count

    # ------------------------------------------------------------------ #
    # Derived metrics.
    # ------------------------------------------------------------------ #
    @property
    def total_interested(self) -> int:
        return sum(self.interested.values())

    @property
    def delivery_rate(self) -> float:
        """``Σ ds_i / Σ ts_i`` — 0.0 when nothing was publishable."""
        denom = self.total_interested
        return self.deliveries_valid / denom if denom else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.deliveries_valid if self.deliveries_valid else 0.0

    def check_invariants(self) -> None:
        """Accounting sanity: raise AssertionError on impossible counters."""
        assert self.deliveries_valid == sum(self.delivered.values())
        assert self.deliveries_valid <= self.total_interested, (
            "delivered more than the interested population"
        )
        for msg_id, count in self.delivered.items():
            assert count <= self.interested.get(msg_id, 0), f"over-delivery of msg {msg_id}"
        assert self.receptions >= 0 and self.pruned >= 0
        assert self.earning >= 0.0
