"""System assembly: topology + strategy -> a running broker overlay.

Responsibilities:

* instantiate one :class:`~repro.pubsub.broker.Broker` per topology node
  and two :class:`~repro.network.link.DirectedLink` channels per edge
  (TCP is full-duplex; each direction serialises independently);
* attach a :class:`~repro.network.measurement.LinkMonitor` per direction
  (oracle or estimated parameters);
* install subscriptions: for each subscriber, compute the min-mean-TR sink
  tree rooted at its edge broker, then place one
  :class:`~repro.pubsub.subscription.TableRow` on every broker lying on a
  routed path from some publisher-hosting broker, recording *which*
  source brokers route through it.  The provenance check in
  :meth:`SubscriptionTable.match` then guarantees each (message,
  subscriber) pair travels exactly one path — single-path routing with no
  duplicate deliveries, as Section 3.3 requires;
* accept publications, count the interested population (the ``ts_i``
  denominator of Eq. 1) and inject the message at its source broker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Mapping

import networkx as nx
import numpy as np

from repro.core.chunked import DEFAULT_CHUNK_ROWS, ChunkedColumnStore
from repro.core.pruning import DEFAULT_EPSILON, PruningPolicy
from repro.core.strategies import Strategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.des.trace import TraceRecorder
from repro.network.link import DirectedLink
from repro.network.measurement import ESTIMATOR_FACTORIES, LinkMonitor, MeasurementMode
from repro.network.paths import path_distribution
from repro.network.routing import SinkTree, compute_sink_tree, k_shortest_paths
from repro.network.topology import Topology, TopologyError
from repro.pubsub.broker import Broker
from repro.pubsub.client import DeliveryLog, PublisherHandle, SubscriberHandle
from repro.pubsub.engine import ENGINE_BACKENDS, make_engine
from repro.pubsub.faults import FaultLedger
from repro.pubsub.filters import conjunction_predicates
from repro.pubsub.matching import MATCHER_BACKENDS, MatchingEngine, make_matcher
from repro.pubsub.message import Message
from repro.pubsub.metrics import METRICS_BACKENDS, MetricsCollector, make_metrics
from repro.pubsub.subscription import Subscription, TableRow
from repro.stats.normal import Normal


@dataclass(frozen=True, slots=True)
class RoutingMode:
    """Single-path (the paper, Section 3.3) or multi-path (the DCP-style
    alternative the paper contrasts itself against).

    Multi-path installs up to ``k`` lowest-mean simple paths per
    (publisher broker, subscriber) pair; duplicate arrivals are settled
    once by the metrics layer.  ``extra_hops`` bounds path enumeration to
    the hop-shortest route plus that many extra hops.
    """

    k: int = 1
    extra_hops: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.extra_hops < 0:
            raise ValueError(f"extra_hops must be non-negative, got {self.extra_hops}")

    @property
    def is_single_path(self) -> bool:
        return self.k == 1

    @classmethod
    def single_path(cls) -> "RoutingMode":
        return cls(k=1)

    @classmethod
    def multi_path(cls, k: int = 2, extra_hops: int = 2) -> "RoutingMode":
        return cls(k=k, extra_hops=extra_hops)


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Knobs shared by every broker in the system.

    Defaults are the paper's simulation setup: 2 ms processing delay,
    ε = 0.05 %, 50 KB messages, oracle link parameters, single-path
    routing.
    """

    processing_delay_ms: float = 2.0
    epsilon: float = DEFAULT_EPSILON
    default_size_kb: float = 50.0
    measurement_mode: MeasurementMode = MeasurementMode.ORACLE
    pruning_override: PruningPolicy | None = None
    scheduling_slack_per_hop_ms: float = 0.0
    routing: RoutingMode = RoutingMode.single_path()
    enable_trace: bool = False
    #: Output-queue servicing structure: "auto" picks the incremental heap
    #: matching the strategy's score_kind, "scan" forces the legacy
    #: full-rescan oracle (see :mod:`repro.core.queueing`).
    queue_backend: str = "auto"
    #: Cross-check every queue decision against the full-scan oracle and
    #: raise on divergence (slow; differential tests only).
    queue_validate: bool = False
    #: Matching engine for subscription tables and the interested-population
    #: index: "vector" (numpy counting index, the fast path), "oracle" (the
    #: dict-based counting matcher, the differential oracle) or "brute".
    matcher_backend: str = "vector"
    #: Accounting backend: "ledger" (array-backed, batched — the fast
    #: path) or "scalar" (the per-delivery dict/set oracle).  Both produce
    #: byte-identical figure data (see :mod:`repro.pubsub.metrics`).
    metrics_backend: str = "ledger"
    #: Estimator used by ESTIMATED link monitors ("welford" | "window" |
    #: "ewma"); forgetting estimators adapt to runtime rate changes.
    link_estimator: str = "welford"
    #: Spill sealed delivery-/publication-log chunks to a temp ``.npz``
    #: ring, keeping only the active chunk in RAM — the bounded-memory
    #: scale tier.  Off by default (chunks stay in memory).
    log_spill: bool = False
    #: Rows per sealed log chunk; smaller chunks lower the memory
    #: high-water mark under spill at the cost of more seal/load churn.
    log_chunk_rows: int = DEFAULT_CHUNK_ROWS
    #: Event-pipeline driver behind :meth:`PubSubSystem.run`: "fused"
    #: drains the heap in event-time windows with a batched match
    #: lookahead; "event" is the per-event kernel, kept as the
    #: differential oracle.  Byte-identical outputs either way.
    engine_backend: str = "fused"
    #: Fused engine's event-time window (ms); decision-neutral execution
    #: micro-batching granularity.
    engine_window_ms: float = 50.0
    #: Fault layer (graceful degradation on hard-down links): initial and
    #: maximum retry backoff, and the per-entry age past which queued
    #: traffic for a dead link is dead-lettered.  Inert (no events, no
    #: decisions) unless a fault script actually downs a link or broker.
    fault_retry_backoff_ms: float = 1_000.0
    fault_retry_max_backoff_ms: float = 8_000.0
    dead_letter_timeout_ms: float = 30_000.0
    #: Broker-partitioned parallel lookahead: 0 = off (sequential fused /
    #: event driver), N >= 1 = partition the overlay into N shards and
    #: distribute the pure match phase (see
    #: :mod:`repro.pubsub.shard_engine`).  Byte-identical outputs — a
    #: result-neutral knob, like spill.  Requires ``engine_backend`` =
    #: "fused".  The ``REPRO_SHARDS`` env var forces a shard count onto
    #: fused systems built with ``shards=0`` (suite-wide override).
    shards: int = 0
    #: "process" forks one worker per shard (POSIX); "inline" runs the
    #: identical protocol in-process (portable, deterministic testing).
    shard_backend: str = "process"

    def __post_init__(self) -> None:
        if (
            self.fault_retry_backoff_ms <= 0.0
            or self.fault_retry_max_backoff_ms < self.fault_retry_backoff_ms
        ):
            raise ValueError("retry backoff must be positive and <= its cap")
        if self.dead_letter_timeout_ms <= 0.0:
            raise ValueError("dead_letter_timeout_ms must be positive")
        if self.engine_backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"engine_backend must be one of {ENGINE_BACKENDS}, "
                f"got {self.engine_backend!r}"
            )
        if self.engine_window_ms <= 0.0:
            raise ValueError("engine_window_ms must be positive")
        if self.log_chunk_rows < 1:
            raise ValueError(
                f"log_chunk_rows must be >= 1, got {self.log_chunk_rows}"
            )
        if self.link_estimator not in ESTIMATOR_FACTORIES:
            raise ValueError(
                f"link_estimator must be one of {sorted(ESTIMATOR_FACTORIES)}, "
                f"got {self.link_estimator!r}"
            )
        if self.processing_delay_ms < 0.0:
            raise ValueError("processing_delay_ms must be non-negative")
        if self.scheduling_slack_per_hop_ms < 0.0:
            raise ValueError("scheduling_slack_per_hop_ms must be non-negative")
        if self.epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        if self.default_size_kb <= 0.0:
            raise ValueError("default_size_kb must be positive")
        if self.matcher_backend not in MATCHER_BACKENDS:
            raise ValueError(
                f"matcher_backend must be one of {MATCHER_BACKENDS}, "
                f"got {self.matcher_backend!r}"
            )
        if self.metrics_backend not in METRICS_BACKENDS:
            raise ValueError(
                f"metrics_backend must be one of {METRICS_BACKENDS}, "
                f"got {self.metrics_backend!r}"
            )
        # Imported here (not at module top) to keep repro.sim imports
        # lazy from the pubsub layer.
        from repro.sim.shard import SHARD_BACKENDS, ShardConfigError

        if self.shards < 0:
            raise ShardConfigError(f"shards must be non-negative, got {self.shards}")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ShardConfigError(
                f"shard_backend must be one of {SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if self.shards and self.engine_backend != "fused":
            raise ShardConfigError(
                "shards > 0 requires engine_backend='fused' (the per-event "
                "oracle has no lookahead to distribute)"
            )


class PubSubSystem:
    """A fully wired overlay ready to publish into."""

    def __init__(
        self,
        topology: Topology,
        strategy: Strategy,
        sim: Simulator,
        streams: RngStreams,
        config: SystemConfig | None = None,
        metrics: MetricsCollector | None = None,
    ) -> None:
        if not topology.is_connected():
            raise TopologyError("topology must be connected")
        self.topology = topology
        self.strategy = strategy
        self.sim = sim
        self.streams = streams
        self.config = config or SystemConfig()
        self.metrics = metrics if metrics is not None else make_metrics(self.config.metrics_backend)
        self.trace = TraceRecorder(enabled=self.config.enable_trace)
        #: Chunked columnar store behind every subscriber endpoint; brokers
        #: append whole local-delivery batches through the batch callback,
        #: sealed chunks spill to disk when ``log_spill`` is on.
        self.delivery_log = DeliveryLog(
            chunk_rows=self.config.log_chunk_rows, spill=self.config.log_spill
        )
        # Per-broker translation of table-interned subscriber ids to
        # endpoint log ids (−1 = no live endpoint).  Maintained
        # incrementally: new interned names extend the tail, and
        # subscribe/unsubscribe patch the one affected slot per broker —
        # no full rebuilds on churn.
        self._endpoint_ids: dict[str, np.ndarray] = {}

        self.brokers: dict[str, Broker] = {}
        self.monitors: dict[tuple[str, str], LinkMonitor] = {}
        self.subscribers: dict[str, SubscriberHandle] = {}
        self.publishers: dict[str, PublisherHandle] = {}
        self._subscriptions: dict[str, Subscription] = {}
        self._population: MatchingEngine[str] = make_matcher(self.config.matcher_backend)
        self._sink_trees: dict[str, SinkTree] = {}
        #: Single-path install plans per edge broker, tagged with the
        #: publisher-broker count they were computed under (attaching a
        #: publisher can add a source broker; link-rate changes clear the
        #: cache with the sink trees).  100k subscribers share a few
        #: dozen edge brokers, so routing is computed per *edge*, not per
        #: subscriber.
        self._install_plans: dict[str, tuple[int, list]] = {}
        self._next_msg_id = 0
        #: Build-time link distributions, keyed ``(a, b)`` with a < b —
        #: the restore point for degrade/recover interventions.
        self._built_rates: dict[tuple[str, str], Normal] = {}
        #: Shared conservation/dead-letter ledger (see :mod:`repro.pubsub.
        #: faults`); all brokers write into this one instance.
        self.faults = FaultLedger()
        #: Hard-failed links, keyed ``(a, b)`` with a < b, and brokers
        #: currently down; per-direction ``DirectedLink.up`` is derived
        #: from these (a link is up iff it isn't failed and neither
        #: endpoint broker is down).
        self._failed_links: set[tuple[str, str]] = set()
        self._down_brokers: set[str] = set()
        #: Mid-run unsubscribe count.  Joins are watermarked and safe, but
        #: a leave can orphan in-flight pairs, which breaks the exact
        #: pair-conservation identity; the sentinel consults this to know
        #: whether that deep check is applicable.
        self.unsubscribe_count = 0
        #: Price per endpoint log id, fixed at subscribe time (what the
        #: metrics layer bills for that endpoint's valid deliveries);
        #: lets the windowed time-series fold earnings without a join.
        self._endpoint_price: list[float] = []
        # Publication log (msg_id is the dense index): publish times and
        # interested-population sizes, for windowed time-series analysis.
        # Chunked like the delivery log, and spilled under the same knob.
        self._pub_log = ChunkedColumnStore(
            (("time", np.float64), ("interested", np.int64)),
            chunk_rows=self.config.log_chunk_rows,
            spill=self.config.log_spill,
            spill_prefix="repro-publication-log",
        )

        #: The event-pipeline driver (None = per-event oracle kernel).
        #: ``REPRO_SHARDS`` forces sharding onto fused systems built
        #: without it (decision-neutral, so the whole suite can run
        #: sharded), mirroring ``REPRO_SENTINEL``; the backend then comes
        #: from ``REPRO_SHARD_BACKEND`` (default "inline" — cheap enough
        #: for thousands of tiny test systems).
        shards = self.config.shards
        shard_backend = self.config.shard_backend
        if shards == 0 and self.config.engine_backend == "fused":
            env = os.environ.get("REPRO_SHARDS", "")
            if env not in ("", "0"):
                shards = int(env)
                shard_backend = os.environ.get("REPRO_SHARD_BACKEND", "inline")
        self._engine = make_engine(
            self.config.engine_backend, sim, system=self,
            window_ms=self.config.engine_window_ms,
            shards=shards, shard_backend=shard_backend,
        )

        self._build_brokers()
        self._wire_links()
        for pub in sorted(topology.publisher_brokers):
            self.publishers[pub] = PublisherHandle(pub, self)

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    def _build_brokers(self) -> None:
        for name in self.topology.brokers:
            broker = Broker(
                name=name,
                sim=self.sim,
                strategy=self.strategy,
                metrics=self.metrics,
                processing_delay_ms=self.config.processing_delay_ms,
                epsilon=self.config.epsilon,
                pruning_override=self.config.pruning_override,
                default_size_kb=self.config.default_size_kb,
                scheduling_slack_per_hop_ms=self.config.scheduling_slack_per_hop_ms,
                trace=self.trace if self.config.enable_trace else None,
                queue_backend=self.config.queue_backend,
                queue_validate=self.config.queue_validate,
                matcher_backend=self.config.matcher_backend,
                faults=self.faults,
                fault_retry_backoff_ms=self.config.fault_retry_backoff_ms,
                fault_retry_max_backoff_ms=self.config.fault_retry_max_backoff_ms,
                dead_letter_timeout_ms=self.config.dead_letter_timeout_ms,
            )
            broker.delivery_batch_callbacks.append(self._on_local_delivery_batch)
            self.brokers[name] = broker

    def _wire_links(self) -> None:
        for a, b, rate in self.topology.links():
            self._built_rates[(a, b)] = rate
            for src, dst in ((a, b), (b, a)):
                rng = self.streams.get(f"link:{src}->{dst}")
                link = DirectedLink(src, dst, rate, rng)
                monitor = LinkMonitor(
                    link,
                    mode=self.config.measurement_mode,
                    estimator_factory=ESTIMATOR_FACTORIES[self.config.link_estimator],
                )
                self.monitors[(src, dst)] = monitor
                self.brokers[src].add_neighbor(
                    dst, link, monitor, self._make_deliver(dst)
                )

    def _make_deliver(self, dst: str) -> Callable[[Message], None]:
        broker = self.brokers[dst]
        return broker.receive

    def _on_local_delivery_batch(self, broker: Broker, group, message: Message, latency: float, valid) -> None:
        """Record one message's local fan-out in the shared delivery log.

        One vectorised append per batch: the group's table-interned
        subscriber ids are gathered through a per-broker translation array
        (rebuilt only when a subscription is added/removed or the table
        interned new names).  Rows whose subscriber no longer has a live
        endpoint (unsubscribed while copies were in flight) map to id −1
        and are dropped by the log.
        """
        names = group.sub_names
        cached = self._endpoint_ids.get(broker.name)
        if cached is None or cached.shape[0] < len(names):
            start = 0 if cached is None else cached.shape[0]
            get = self.subscribers.get
            tail = np.fromiter(
                (-1 if (h := get(s)) is None else h.log_id for s in names[start:]),
                dtype=np.int64, count=len(names) - start,
            )
            cached = tail if cached is None else np.concatenate((cached, tail))
            self._endpoint_ids[broker.name] = cached
        self.delivery_log.append_batch(
            cached[group.sub_ids], message.msg_id, self.sim.now, latency, valid
        )

    def _patch_endpoint_ids(self, name: str, log_id: int) -> None:
        """Point one subscriber's slot at a new endpoint id (−1 = gone) in
        every broker cache that already covers the name."""
        for broker_name, ids in self._endpoint_ids.items():
            sid = self.brokers[broker_name].table._sub_id_of.get(name)
            if sid is not None and sid < ids.shape[0]:
                ids[sid] = log_id

    # ------------------------------------------------------------------ #
    # Subscriptions.
    # ------------------------------------------------------------------ #
    def _sink_tree(self, edge_broker: str) -> SinkTree:
        tree = self._sink_trees.get(edge_broker)
        if tree is None:
            tree = compute_sink_tree(self.topology, edge_broker)
            self._sink_trees[edge_broker] = tree
        return tree

    def subscribe(self, subscription: Subscription) -> SubscriberHandle:
        """Install a subscription along all routed paths toward it.

        The subscriber must be attached to a broker in the topology.  Rows
        are installed on every broker on the routed path(s) from each
        publisher-hosting broker to the subscriber's edge broker; each row
        records the set of source brokers that route through it.  With
        multi-path routing, one row per (path, broker) is installed.

        Subscribing mid-run (churn waves, flash crowds) is supported: the
        rows carry the current message-id watermark, so the subscriber
        sees exactly the messages published after it joined — never an
        in-flight older message, which would break the ``ds_i <= ts_i``
        accounting invariant.
        """
        name = subscription.subscriber
        if name in self._subscriptions:
            raise ValueError(f"subscriber {name!r} already has a subscription")
        edge = self.topology.subscriber_brokers.get(name)
        if edge is None:
            raise TopologyError(f"subscriber {name!r} is not attached to any broker")

        if self.config.routing.is_single_path:
            self._install_single_path(subscription, edge)
        else:
            self._install_multi_path(subscription, edge)

        self._subscriptions[name] = subscription
        self._population.add(name, subscription.filter)
        handle = SubscriberHandle(name, log=self.delivery_log)
        self.subscribers[name] = handle
        # Endpoint ids are handed out sequentially and only here, so the
        # price list stays index-aligned with the shared delivery log.
        assert handle.log_id == len(self._endpoint_price)
        self._endpoint_price.append(
            subscription.price if subscription.price is not None else 1.0
        )
        self._patch_endpoint_ids(name, handle.log_id)
        return handle

    def _install_plan(self, edge: str) -> list:
        """The single-path install plan shared by every subscriber at one
        edge broker: ``(node, next_hop, nn, rate, sources)`` per on-path
        broker, in the canonical walk order.  Cached per edge — and
        recomputed if a publisher attached since (new source broker)."""
        n_pubs = len(self.topology.publisher_brokers)
        cached = self._install_plans.get(edge)
        if cached is not None and cached[0] == n_pubs:
            return cached[1]
        tree = self._sink_tree(edge)
        on_path_sources: dict[str, set[str]] = {}
        for source in sorted(set(self.topology.publisher_brokers.values())):
            for node in tree.path_from(source):
                on_path_sources.setdefault(node, set()).add(source)
        plan = []
        for node, sources in on_path_sources.items():
            entry = tree.entry(node)
            plan.append((
                node,
                entry.next_hop,
                entry.nn,
                entry.rate if entry.next_hop is not None else Normal(0.0, 0.0),
                frozenset(sources),
            ))
        self._install_plans[edge] = (n_pubs, plan)
        return plan

    def _install_single_path(self, subscription: Subscription, edge: str) -> None:
        preds = conjunction_predicates(subscription.filter)
        min_msg = self._next_msg_id
        for node, next_hop, nn, rate, sources in self._install_plan(edge):
            self.brokers[node].install(
                TableRow(
                    subscription=subscription,
                    next_hop=next_hop,
                    nn=nn,
                    rate=rate,
                    sources=sources,
                    min_msg_id=min_msg,
                ),
                preds=preds,
            )

    def _install_multi_path(self, subscription: Subscription, edge: str) -> None:
        mode = self.config.routing
        graph = self.topology.graph_view()
        path_id = 0
        for source in sorted(set(self.topology.publisher_brokers.values())):
            if source == edge:
                paths: list[list[str]] = [[edge]]
            else:
                min_hops = nx.shortest_path_length(graph, source, edge)
                paths = k_shortest_paths(
                    self.topology, source, edge, k=mode.k,
                    cutoff=min_hops + mode.extra_hops,
                )
            for path in paths:
                for i, node in enumerate(path):
                    suffix = path[i:]
                    self.brokers[node].install(
                        TableRow(
                            subscription=subscription,
                            next_hop=path[i + 1] if i + 1 < len(path) else None,
                            nn=len(suffix) - 1,
                            rate=path_distribution(self.topology, suffix),
                            sources=frozenset({source}),
                            path_id=path_id,
                            min_msg_id=self._next_msg_id,
                        )
                    )
                path_id += 1

    def subscribe_all(self, subscriptions: list[Subscription]) -> None:
        """Install a population in bulk.

        End state is identical to calling :meth:`subscribe` per entry in
        order — per-table row order, interned ids, endpoint ids and (when
        armed) journal entries are all the same — but rows are grouped
        per broker so each table takes one bulk
        :meth:`~repro.pubsub.subscription.SubscriptionTable.install_many`
        instead of one call per (subscriber, on-path broker) pair: the
        scale tier's build-phase hot path.
        """
        if not self.config.routing.is_single_path:
            for subscription in subscriptions:
                self.subscribe(subscription)
            return
        per_broker: dict[str, list] = {}
        for subscription in subscriptions:
            name = subscription.subscriber
            if name in self._subscriptions:
                raise ValueError(f"subscriber {name!r} already has a subscription")
            edge = self.topology.subscriber_brokers.get(name)
            if edge is None:
                raise TopologyError(
                    f"subscriber {name!r} is not attached to any broker"
                )
            preds = conjunction_predicates(subscription.filter)
            min_msg = self._next_msg_id
            for node, next_hop, nn, rate, sources in self._install_plan(edge):
                per_broker.setdefault(node, []).append((
                    TableRow(
                        subscription=subscription,
                        next_hop=next_hop,
                        nn=nn,
                        rate=rate,
                        sources=sources,
                        min_msg_id=min_msg,
                    ),
                    preds,
                ))
            self._subscriptions[name] = subscription
            self._population.add(name, subscription.filter, preds=preds)
            handle = SubscriberHandle(name, log=self.delivery_log)
            self.subscribers[name] = handle
            assert handle.log_id == len(self._endpoint_price)
            self._endpoint_price.append(
                subscription.price if subscription.price is not None else 1.0
            )
            self._patch_endpoint_ids(name, handle.log_id)
        for node, pairs in per_broker.items():
            self.brokers[node].install_many(pairs)

    def unsubscribe(self, subscriber: str) -> SubscriberHandle:
        """Remove a subscription from every broker that holds a row for it.

        In-flight queue copies are not chased: their entries still carry
        the old rows and will either deliver (the endpoint handle is kept
        and returned so late records remain inspectable) or be pruned.
        This mirrors real systems, where unsubscription propagates as
        state-change messages and races in-flight data.
        """
        if subscriber not in self._subscriptions:
            raise KeyError(f"no subscription for {subscriber!r}")
        for broker in self.brokers.values():
            if subscriber in broker.table:
                broker.table.uninstall(subscriber)
        del self._subscriptions[subscriber]
        self._population.remove(subscriber)
        self._patch_endpoint_ids(subscriber, -1)
        self.unsubscribe_count += 1
        return self.subscribers.pop(subscriber)

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------ #
    # Publishing.
    # ------------------------------------------------------------------ #
    def publish(
        self,
        publisher: str,
        attributes: Mapping[str, float],
        size_kb: float | None = None,
        deadline_ms: float | None = None,
    ) -> Message:
        """Publish now: stamp, count the interested population, inject."""
        source = self.topology.publisher_brokers.get(publisher)
        if source is None:
            raise TopologyError(f"publisher {publisher!r} is not attached to any broker")
        message = Message(
            msg_id=self._next_msg_id,
            publisher=publisher,
            source_broker=source,
            attributes=dict(attributes),
            size_kb=size_kb if size_kb is not None else self.config.default_size_kb,
            publish_time=self.sim.now,
            deadline_ms=deadline_ms,
        )
        self._next_msg_id += 1
        # count() skips materialising the matched-key set — at the 100k
        # tier that set build was the single hottest line per publish.
        interested = self._population.count(message.attributes)
        self.metrics.on_publish(message.msg_id, interested)
        self._pub_log.append_row(message.publish_time, interested)
        if source in self._down_brokers:
            # The source broker is offline: the publication still counts
            # against the interested population (those subscribers really
            # did miss it) but never enters the overlay.  Fully accounted
            # in the dead-letter ledger, so conservation balances.
            self.faults.on_publish_drop(interested)
            return message
        self.brokers[source].receive(message)
        return message

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #
    def warm(self) -> None:
        """Compile every broker table and matcher index eagerly.

        All of these build lazily on first use; at the 100k tier that
        "first use" lands inside the measured hot loop and is seconds of
        one-off list-to-array conversion.  Warming after the tables are
        populated reaches the identical compiled state ahead of time, so
        run-phase timings measure steady-state matching only.
        """
        warm = getattr(self._population, "warm", None)
        if warm is not None:
            warm()
        for broker in self.brokers.values():
            broker.table.warm()

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the simulation through the configured engine backend.

        Semantics are exactly :meth:`Simulator.run` (closed-interval
        ``until``, drained-early clock advance, executed-event count);
        the ``fused`` backend merely batches the pure match computation
        per event-time window before dispatching.
        """
        if self._engine is None:
            return self.sim.run(until=until, max_events=max_events)
        return self._engine.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------ #
    # Runtime interventions (the dynamics subsystem's write API).
    # ------------------------------------------------------------------ #
    def set_link_rate(self, a: str, b: str, rate: Normal) -> None:
        """Change a link's true rate at runtime — real failure injection.

        Propagates through every layer that holds the distribution: the
        static topology, both live :class:`DirectedLink` directions (the
        next transmission samples the new rate) and, via the links' rate
        listeners, the :class:`LinkMonitor` pinned ORACLE caches.
        ESTIMATED monitors are deliberately *not* told: they keep
        measuring and adapt at their estimator's pace.  Cached sink trees
        are dropped so later subscriptions route on current rates;
        already-installed rows keep their build-time routes (routing is
        static per subscription, as in the paper).
        """
        if (min(a, b), max(a, b)) not in self._built_rates:
            raise TopologyError(f"no link {a!r}-{b!r}")
        self.topology.set_link_rate(a, b, rate)
        for src, dst in ((a, b), (b, a)):
            self.monitors[(src, dst)].link.set_true_rate(rate)
        self._sink_trees.clear()
        self._install_plans.clear()

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Slow link ``a–b`` by ``factor`` relative to its *build-time*
        rate (mean and std scale linearly; rates are ms/KB, so factor > 1
        degrades).  Repeated degrades therefore don't compound."""
        if factor <= 0.0:
            raise ValueError(f"factor must be positive, got {factor}")
        base = self.built_link_rate(a, b)
        self.set_link_rate(a, b, Normal(base.mean * factor, base.variance * factor * factor))

    def recover_link(self, a: str, b: str) -> None:
        """Restore link ``a–b`` to its build-time distribution."""
        self.set_link_rate(a, b, self.built_link_rate(a, b))

    def built_link_rate(self, a: str, b: str) -> Normal:
        """The distribution link ``a–b`` was built with."""
        try:
            return self._built_rates[(min(a, b), max(a, b))]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}") from None

    # ------------------------------------------------------------------ #
    # Hard faults: link failures, broker outages, partitions.
    # ------------------------------------------------------------------ #
    def _link_key(self, a: str, b: str) -> tuple[str, str]:
        key = (min(a, b), max(a, b))
        if key not in self._built_rates:
            raise TopologyError(f"no link {a!r}-{b!r}")
        return key

    def _refresh_link(self, a: str, b: str) -> None:
        """Derive both directions' ``up`` flags from the fault state and
        fire the owning broker's retry hook on a down → up transition."""
        key = (min(a, b), max(a, b))
        should_up = (
            key not in self._failed_links
            and a not in self._down_brokers
            and b not in self._down_brokers
        )
        for src, dst in ((a, b), (b, a)):
            link = self.monitors[(src, dst)].link
            was_up = link.up
            if should_up:
                link.restore()
                if not was_up:
                    self.brokers[src].on_link_up(dst)
            else:
                link.fail()

    def fail_link(self, a: str, b: str) -> None:
        """Hard-down link ``a–b`` (both directions).  An in-flight
        transmission completes; the next send attempt enters the broker's
        retry/dead-letter path.  Idempotent."""
        self._failed_links.add(self._link_key(a, b))
        self._refresh_link(a, b)

    def restore_link_up(self, a: str, b: str) -> None:
        """Undo :meth:`fail_link` (the link may stay down if an endpoint
        broker is itself down).  Idempotent."""
        self._failed_links.discard(self._link_key(a, b))
        self._refresh_link(a, b)

    def fail_broker(self, name: str) -> None:
        """Take a broker offline: every adjacent link direction goes down
        and publications sourced at it are dropped (and accounted).
        Messages already *inside* the broker keep processing and
        delivering locally — a degraded island, as a real broker process
        losing its uplinks would.  Idempotent."""
        if name not in self.brokers:
            raise TopologyError(f"no broker {name!r}")
        self._down_brokers.add(name)
        for neighbor in self.brokers[name].queues:
            self._refresh_link(name, neighbor)

    def recover_broker(self, name: str) -> None:
        """Bring a broker back online; adjacent links come back up unless
        independently failed.  Idempotent."""
        if name not in self.brokers:
            raise TopologyError(f"no broker {name!r}")
        self._down_brokers.discard(name)
        for neighbor in self.brokers[name].queues:
            self._refresh_link(name, neighbor)

    def partition(self, group: frozenset[str] | set[str]) -> list[tuple[str, str]]:
        """Fail every link with exactly one endpoint in ``group`` — a
        network partition isolating the group.  Returns the failed keys
        (sorted) so the heal can be exact."""
        unknown = set(group) - set(self.brokers)
        if unknown:
            raise TopologyError(f"unknown brokers in partition group: {sorted(unknown)}")
        crossing = sorted(
            key for key in self._built_rates
            if (key[0] in group) != (key[1] in group)
        )
        for a, b in crossing:
            self.fail_link(a, b)
        return crossing

    def heal_partition(self, group: frozenset[str] | set[str]) -> None:
        """Restore every link :meth:`partition` would fail for ``group``."""
        for a, b in self.partition_links(group):
            self.restore_link_up(a, b)

    def partition_links(self, group: frozenset[str] | set[str]) -> list[tuple[str, str]]:
        """The crossing-link keys for ``group`` (no state change)."""
        return sorted(
            key for key in self._built_rates
            if (key[0] in group) != (key[1] in group)
        )

    def link_up(self, a: str, b: str) -> bool:
        """True iff both directions of ``a–b`` are up."""
        self._link_key(a, b)
        return self.monitors[(a, b)].link.up and self.monitors[(b, a)].link.up

    @property
    def down_brokers(self) -> frozenset[str]:
        return frozenset(self._down_brokers)

    @property
    def failed_links(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._failed_links)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def total_queued(self) -> int:
        return sum(b.queued_entries() for b in self.brokers.values())

    def publication_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """``(publish_time, interested)`` arrays indexed by msg_id
        (whole-log snapshot copies; prefer :meth:`publication_chunks`
        at scale)."""
        return self._pub_log.gather()  # type: ignore[return-value]

    def publication_chunks(self):
        """Stream ``(publish_time, interested)`` per chunk, msg_id order."""
        return self._pub_log.iter_chunks()

    def endpoint_prices(self) -> np.ndarray:
        """Price per delivery-log endpoint id (1.0 where unpriced)."""
        return np.asarray(self._endpoint_price, dtype=np.float64)

    def routing_path(self, source_broker: str, subscriber: str) -> list[str]:
        """The single path a message from ``source_broker`` takes to reach
        ``subscriber`` (diagnostics/tests)."""
        edge = self.topology.subscriber_brokers[subscriber]
        return self._sink_tree(edge).path_from(source_broker)
