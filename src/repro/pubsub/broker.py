"""The message broker (Section 3.2, Fig. 2).

A broker has three modules: message receiving, message processing and
message forwarding.  Incoming messages incur a fixed processing delay
``PD``; processed messages are matched against the subscription table and
either delivered locally or placed, one copy per downstream neighbour, in
that neighbour's **output queue**.  Each output queue is drained over a
serialised link; when the link frees, the queue's
:class:`~repro.core.queueing.ScheduledQueue` deletes invalid messages
(Section 5.4) and picks the next entry under the configured
:class:`~repro.core.strategies.Strategy` — incrementally, not by
rescanning (the broker itself is just wiring).

Input-queue waiting is ignored, as in the paper (processing is never the
bottleneck), so processing completes exactly ``PD`` after reception.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import Callable

import numpy as np

from repro.core import profiling
from repro.core.context import SchedulingContext
from repro.core.pruning import DEFAULT_EPSILON, PruningPolicy
from repro.core.queueing import ScheduledQueue
from repro.core.strategies import QueueEntry, Strategy
from repro.core.success import effective_deadline_array
from repro.des.simulator import Simulator
from repro.des.trace import TraceRecorder
from repro.network.link import DirectedLink
from repro.network.measurement import LinkMonitor
from repro.pubsub.faults import DeadLetterRecord, FaultLedger
from repro.pubsub.message import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.subscription import SubscriptionTable, TableRow

_EMPTY_SIDS = np.empty(0, dtype=np.int64)


@dataclass
class OutputQueue:
    """The outbound channel to one downstream neighbour.

    ``sched`` owns the waiting entries, their pruning and the
    next-to-send selection; this record just ties it to the link.
    """

    neighbor: str
    link: DirectedLink
    monitor: LinkMonitor
    deliver: Callable[[Message], None]
    sched: ScheduledQueue

    def __len__(self) -> int:
        return len(self.sched)

    @property
    def entries(self) -> list[QueueEntry]:
        """Snapshot of the waiting entries (queue order), for inspection."""
        return self.sched.entries()


DeliveryCallback = Callable[[str, Message, float, bool], None]

#: Batched local-delivery hook: (broker, local row group, message,
#: latency_ms, valid flags).  One call per (message, local group); all
#: rows of a group share the arrival latency, ``valid`` is a per-row
#: boolean array, and the group exposes the table's interned subscriber
#: ids so receivers can translate with a cached gather.
BatchDeliveryCallback = Callable[["Broker", "object", Message, float, "object"], None]


class Broker:
    """One overlay broker."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        strategy: Strategy,
        metrics: MetricsCollector,
        processing_delay_ms: float = 2.0,
        epsilon: float = DEFAULT_EPSILON,
        pruning_override: PruningPolicy | None = None,
        default_size_kb: float = 50.0,
        scheduling_slack_per_hop_ms: float = 0.0,
        trace: TraceRecorder | None = None,
        queue_backend: str = "auto",
        queue_validate: bool = False,
        matcher_backend: str = "vector",
        faults: FaultLedger | None = None,
        fault_retry_backoff_ms: float = 1_000.0,
        fault_retry_max_backoff_ms: float = 8_000.0,
        dead_letter_timeout_ms: float = 30_000.0,
    ) -> None:
        if processing_delay_ms < 0.0:
            raise ValueError("processing_delay_ms must be non-negative")
        if scheduling_slack_per_hop_ms < 0.0:
            raise ValueError("scheduling_slack_per_hop_ms must be non-negative")
        if fault_retry_backoff_ms <= 0.0 or fault_retry_max_backoff_ms < fault_retry_backoff_ms:
            raise ValueError("retry backoff must be positive and <= its cap")
        if dead_letter_timeout_ms <= 0.0:
            raise ValueError("dead_letter_timeout_ms must be positive")
        self.name = name
        self.sim = sim
        self.strategy = strategy
        self.metrics = metrics
        self.processing_delay_ms = processing_delay_ms
        # The paper assumes downstream scheduling delay is 0 inside fdl;
        # this slack relaxes that, billing every remaining hop an extra
        # planning allowance inside success() without changing the real
        # per-hop delay.  0 reproduces the paper.
        self.planning_delay_ms = processing_delay_ms + scheduling_slack_per_hop_ms
        self.epsilon = epsilon
        self.pruning = (
            pruning_override
            if pruning_override is not None
            else PruningPolicy.for_strategy(strategy.probabilistic_pruning)
        )
        self.queue_backend = queue_backend
        self.queue_validate = queue_validate
        self.table = SubscriptionTable(matcher_backend=matcher_backend)
        self.queues: dict[str, OutputQueue] = {}
        self.trace = trace
        # Fault layer: shared conservation ledger plus per-neighbour retry
        # state.  With every link up none of this schedules anything — the
        # no-faults run stays byte-identical.
        self.faults = faults if faults is not None else FaultLedger()
        self.fault_retry_backoff_ms = fault_retry_backoff_ms
        self.fault_retry_max_backoff_ms = fault_retry_max_backoff_ms
        self.dead_letter_timeout_ms = dead_letter_timeout_ms
        self._retry_pending: set[str] = set()
        self._retry_backoff: dict[str, float] = {}
        self._seq = 0
        self._size_sum = 0.0
        self._size_count = 0
        self._default_size_kb = default_size_kb
        #: Called per local delivery attempt: (subscriber, message, latency,
        #: valid).  Legacy scalar hook — kept for tests/diagnostics; the
        #: per-row loop only runs when a callback is registered.
        self.delivery_callbacks: list[DeliveryCallback] = []
        #: Called once per (message, local group) with the whole batch; the
        #: system's endpoint log subscribes here.
        self.delivery_batch_callbacks: list[BatchDeliveryCallback] = []
        # Table-local subscriber id -> ledger id translation, extended
        # whenever the table interns new names; lets batched settlement
        # skip per-row name lookups when the collector supports ids.
        self._metrics_sids = _EMPTY_SIDS if hasattr(metrics, "on_delivery_batch_ids") else None
        #: msg_id -> (table version, match_grouped result), filled by the
        #: fused engine's window lookahead and consumed by :meth:`_process`
        #: (stale versions are recomputed, so churn can never skew a match).
        self._match_memo: dict[int, tuple[int, tuple]] = {}
        #: msg_id -> (table version, latency_ms, valid flags) for the local
        #: group, filled by the sharded engine alongside the match memo
        #: (workers compute the pure validity comparison too).  Same
        #: version discipline; empty unless a sharded engine is driving.
        self._delivery_memo: dict[int, tuple[int, float, object]] = {}

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #
    def add_neighbor(
        self,
        neighbor: str,
        link: DirectedLink,
        monitor: LinkMonitor,
        deliver: Callable[[Message], None],
    ) -> None:
        """Register the outbound channel to ``neighbor``.

        ``deliver`` is invoked (at transmission-completion time) with the
        message so the system can hand it to the neighbour broker.
        """
        if neighbor in self.queues:
            raise ValueError(f"{self.name}: neighbor {neighbor!r} already wired")
        sched = ScheduledQueue(
            strategy=self.strategy,
            pruning=self.pruning,
            epsilon=self.epsilon,
            planning_delay_ms=self.planning_delay_ms,
            backend=self.queue_backend,
            validate=self.queue_validate,
        )
        self.queues[neighbor] = OutputQueue(neighbor, link, monitor, deliver, sched)

    def install(self, row: TableRow, preds=None) -> None:
        if row.next_hop is not None and row.next_hop not in self.queues:
            raise ValueError(
                f"{self.name}: row for {row.subscriber!r} routes via unwired "
                f"neighbor {row.next_hop!r}"
            )
        self.table.install(row, preds=preds)

    def install_many(self, pairs: list[tuple[TableRow, object]]) -> None:
        """Bulk :meth:`install`; same wiring validation, one table call."""
        for row, _ in pairs:
            if row.next_hop is not None and row.next_hop not in self.queues:
                raise ValueError(
                    f"{self.name}: row for {row.subscriber!r} routes via unwired "
                    f"neighbor {row.next_hop!r}"
                )
        self.table.install_many(pairs)

    # ------------------------------------------------------------------ #
    # Message path.
    # ------------------------------------------------------------------ #
    def receive(self, message: Message) -> None:
        """Message arrives from upstream (or from a local publisher)."""
        self.metrics.on_reception()
        if self.trace is not None:
            self.trace.record(self.sim.now, "receive", self.name, msg=message.msg_id)
        self.sim.schedule(
            self.processing_delay_ms,
            # A partial of the bound method (not a lambda) so the pending
            # event pickles by reference inside a checkpoint's object graph.
            partial(self._process, message),
            # Label construction is skipped when tracing is off: labels
            # exist for trace/debug inspection only, and the f-string per
            # event is measurable at ingest rates.
            label=f"{self.name}:process:{message.msg_id}" if self.trace is not None else "",
            # Typed metadata so the fused engine's window lookahead can
            # batch-match pending processing steps ahead of execution.
            kind="process",
            payload=(self, message),
        )

    def _process(self, message: Message) -> None:
        self._size_sum += message.size_kb
        self._size_count += 1
        prof = profiling.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        memo = self._match_memo.pop(message.msg_id, None)
        if memo is not None and memo[0] == self.table.version:
            # Precomputed by the fused engine's window lookahead; the
            # version check discards results staled by churn in between.
            local, remote = memo[1]
        else:
            local, remote = self.table.match_grouped(message)
        if prof is not None:
            prof.add("match", perf_counter() - t0)
        now = self.sim.now
        if len(local):
            # Columnar local delivery: one vectorised validity comparison
            # over the group's deadline column, one batched hand-off to the
            # metrics ledger and the endpoint log.  All rows share the
            # arrival latency ``hdl(now)``.
            prices = local.price
            dmemo = self._delivery_memo.pop(message.msg_id, None)
            if dmemo is not None and dmemo[0] == self.table.version:
                # Shard worker precomputed the (pure) arrival latency and
                # validity flags; the version stamp matches the match
                # memo's, so the rows these flags describe are the rows
                # in ``local``.
                latency, valid = dmemo[1], dmemo[2]
            else:
                latency = message.hdl(now)
                valid = latency <= effective_deadline_array(local.deadline, message)
            if prof is not None:
                t0 = perf_counter()
            if self._metrics_sids is not None:
                sids = self._metrics_sids
                names = local.sub_names
                if sids.shape[0] < len(names):
                    # Interning is append-only on both sides: extend the
                    # translation with the new tail only.
                    sids = self._metrics_sids = np.concatenate((
                        sids, self.metrics.intern_subscribers(names[sids.shape[0]:])
                    ))
                # match_grouped guarantees one row per subscriber in the
                # local group, so the ledger can skip its uniqueness check.
                self.metrics.on_delivery_batch_ids(
                    message.msg_id, sids[local.sub_ids], latency, prices, valid,
                    assume_unique=True,
                )
            else:
                self.metrics.on_delivery_batch(
                    message.msg_id, local.subscribers, latency, prices, valid
                )
            if prof is not None:
                t1 = perf_counter()
                prof.add("metrics", t1 - t0)
            for batch_callback in self.delivery_batch_callbacks:
                batch_callback(self, local, message, latency, valid)
            if prof is not None:
                prof.add("append", perf_counter() - t1)
            if self.delivery_callbacks or self.trace is not None:
                valid_list = valid.tolist()
                for i, subscriber in enumerate(local.subscribers):
                    for callback in self.delivery_callbacks:
                        callback(subscriber, message, latency, valid_list[i])
                    if self.trace is not None:
                        self.trace.record(
                            now, "deliver", self.name,
                            msg=message.msg_id, subscriber=subscriber,
                            valid=valid_list[i],
                        )
        # ``remote`` iterates in sorted neighbor-name order (match_grouped's
        # insertion order) — the deterministic enqueue order, no per-message
        # re-sort.
        for neighbor, group in remote.items():
            # The group goes in as-is: TableRow objects materialise only
            # if this queue's strategy actually reads ``entry.rows``.
            if prof is not None:
                t0 = perf_counter()
            entry = QueueEntry(
                message, group, enqueue_time=now, seq=self._seq,
                arrays=group.arrays,
            )
            self._seq += 1
            self.queues[neighbor].sched.push(entry)
            self.faults.on_enqueue(len(entry.arrays))
            if prof is not None:
                prof.add("enqueue", perf_counter() - t0)
            if self.trace is not None:
                self.trace.record(
                    now, "enqueue", self.name,
                    msg=message.msg_id, neighbor=neighbor, fanout=len(group),
                )
            self._try_send(neighbor)

    # ------------------------------------------------------------------ #
    # Output-queue service.
    # ------------------------------------------------------------------ #
    def average_size_kb(self) -> float:
        """Running average of processed message sizes (the ``FT`` input)."""
        if self._size_count == 0:
            return self._default_size_kb
        return self._size_sum / self._size_count

    def _context_for(self, queue: OutputQueue) -> SchedulingContext:
        rate = queue.monitor.rate()
        return SchedulingContext(
            now=self.sim.now,
            processing_delay_ms=self.planning_delay_ms,
            ft_ms=self.average_size_kb() * rate.mean,
            link_rate=rate,
        )

    def _prune(self, queue: OutputQueue) -> None:
        pruned = queue.sched.prune(self.sim.now)
        if pruned:
            if self.trace is not None:
                for entry in pruned:
                    self.trace.record(
                        self.sim.now, "prune", self.name,
                        msg=entry.message.msg_id, neighbor=queue.neighbor,
                    )
            self.metrics.on_prune(len(pruned))
            self.faults.on_prune(
                len(pruned), sum(len(e.arrays) for e in pruned)
            )

    def _try_send(self, neighbor: str) -> None:
        prof = profiling.ACTIVE
        if prof is not None:
            t0 = perf_counter()
            self._service(neighbor)
            prof.add("drain", perf_counter() - t0)
        else:
            self._service(neighbor)

    def _service(self, neighbor: str) -> None:
        queue = self.queues[neighbor]
        if queue.link.busy:
            return
        if not queue.link.up:
            # Hard-down link: keep the queue, retry with bounded backoff,
            # dead-letter entries that age past the tolerance window.
            if queue.sched:
                self._schedule_retry(neighbor)
            return
        self._prune(queue)
        if not queue.sched:
            return
        ctx = self._context_for(queue)
        entry = queue.sched.pop_best(ctx)
        self.faults.on_send(len(entry.arrays))
        duration = queue.link.draw_transmission_time(entry.message.size_kb)
        queue.link.acquire()
        self.metrics.on_transmission()
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "send", self.name,
                msg=entry.message.msg_id, neighbor=neighbor, duration=duration,
            )
        self.sim.schedule(
            duration,
            partial(self._complete_send, neighbor, entry),
            label=f"{self.name}->{neighbor}:{entry.message.msg_id}" if self.trace is not None else "",
            # Typed metadata: lets the sentinel count in-flight pairs by
            # scanning the heap (the fused engine executes non-"process"
            # kinds opaquely, so this is decision-neutral).
            kind="transmit",
            payload=(self, neighbor, entry),
        )

    def _complete_send(self, neighbor: str, entry: QueueEntry) -> None:
        queue = self.queues[neighbor]
        queue.link.release()
        queue.deliver(entry.message)
        self._try_send(neighbor)

    # ------------------------------------------------------------------ #
    # Fault handling: retry + dead-letter for hard-down links.
    # ------------------------------------------------------------------ #
    def _schedule_retry(self, neighbor: str) -> None:
        """Arm (at most) one pending retry event for a down link."""
        if neighbor in self._retry_pending:
            return
        backoff = self._retry_backoff.get(neighbor, self.fault_retry_backoff_ms)
        self._retry_backoff[neighbor] = min(
            backoff * 2.0, self.fault_retry_max_backoff_ms
        )
        self._retry_pending.add(neighbor)
        self.sim.schedule(
            backoff,
            partial(self._retry_link, neighbor),
            label=f"{self.name}->{neighbor}:retry" if self.trace is not None else "",
            kind="retry",
        )

    def _retry_link(self, neighbor: str) -> None:
        """Retry event: send if the link recovered, otherwise dead-letter
        aged entries and re-arm with doubled (capped) backoff."""
        self._retry_pending.discard(neighbor)
        queue = self.queues[neighbor]
        self.faults.on_retry()
        if queue.link.up:
            self._retry_backoff.pop(neighbor, None)
            self._try_send(neighbor)
            return
        now = self.sim.now
        for entry in queue.sched.drain_aged(now, self.dead_letter_timeout_ms):
            self.faults.on_dead_letter(DeadLetterRecord(
                broker=self.name,
                neighbor=neighbor,
                msg_id=entry.message.msg_id,
                pairs=len(entry.arrays),
                enqueue_ms=entry.enqueue_time,
                dead_ms=now,
                reason="link_down",
            ))
            if self.trace is not None:
                self.trace.record(
                    now, "dead_letter", self.name,
                    msg=entry.message.msg_id, neighbor=neighbor,
                )
        if queue.sched:
            self._schedule_retry(neighbor)

    def on_link_up(self, neighbor: str) -> None:
        """System hook fired when this direction transitions down → up."""
        self._retry_backoff.pop(neighbor, None)
        self._try_send(neighbor)

    # ------------------------------------------------------------------ #
    # Serialization.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Checkpoint support: the match memo is a pure cache (recomputed
        by the fused engine's lookahead, version-checked by
        :meth:`_process`), so snapshots drop its contents instead of
        serializing speculative results."""
        state = self.__dict__.copy()
        state["_match_memo"] = {}
        state["_delivery_memo"] = {}
        return state

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def queued_entries(self) -> int:
        """Total entries currently waiting across all output queues."""
        return sum(len(q) for q in self.queues.values())
