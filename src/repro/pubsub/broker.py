"""The message broker (Section 3.2, Fig. 2).

A broker has three modules: message receiving, message processing and
message forwarding.  Incoming messages incur a fixed processing delay
``PD``; processed messages are matched against the subscription table and
either delivered locally or placed, one copy per downstream neighbour, in
that neighbour's **output queue**.  Each output queue is drained over a
serialised link; when the link frees, the queue's
:class:`~repro.core.queueing.ScheduledQueue` deletes invalid messages
(Section 5.4) and picks the next entry under the configured
:class:`~repro.core.strategies.Strategy` — incrementally, not by
rescanning (the broker itself is just wiring).

Input-queue waiting is ignored, as in the paper (processing is never the
bottleneck), so processing completes exactly ``PD`` after reception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.context import SchedulingContext
from repro.core.pruning import DEFAULT_EPSILON, PruningPolicy
from repro.core.queueing import ScheduledQueue
from repro.core.strategies import QueueEntry, Strategy
from repro.core.success import effective_deadline
from repro.des.simulator import Simulator
from repro.des.trace import TraceRecorder
from repro.network.link import DirectedLink
from repro.network.measurement import LinkMonitor
from repro.pubsub.message import Message
from repro.pubsub.metrics import MetricsCollector
from repro.pubsub.subscription import SubscriptionTable, TableRow


@dataclass
class OutputQueue:
    """The outbound channel to one downstream neighbour.

    ``sched`` owns the waiting entries, their pruning and the
    next-to-send selection; this record just ties it to the link.
    """

    neighbor: str
    link: DirectedLink
    monitor: LinkMonitor
    deliver: Callable[[Message], None]
    sched: ScheduledQueue

    def __len__(self) -> int:
        return len(self.sched)

    @property
    def entries(self) -> list[QueueEntry]:
        """Snapshot of the waiting entries (queue order), for inspection."""
        return self.sched.entries()


DeliveryCallback = Callable[[str, Message, float, bool], None]


class Broker:
    """One overlay broker."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        strategy: Strategy,
        metrics: MetricsCollector,
        processing_delay_ms: float = 2.0,
        epsilon: float = DEFAULT_EPSILON,
        pruning_override: PruningPolicy | None = None,
        default_size_kb: float = 50.0,
        scheduling_slack_per_hop_ms: float = 0.0,
        trace: TraceRecorder | None = None,
        queue_backend: str = "auto",
        queue_validate: bool = False,
        matcher_backend: str = "vector",
    ) -> None:
        if processing_delay_ms < 0.0:
            raise ValueError("processing_delay_ms must be non-negative")
        if scheduling_slack_per_hop_ms < 0.0:
            raise ValueError("scheduling_slack_per_hop_ms must be non-negative")
        self.name = name
        self.sim = sim
        self.strategy = strategy
        self.metrics = metrics
        self.processing_delay_ms = processing_delay_ms
        # The paper assumes downstream scheduling delay is 0 inside fdl;
        # this slack relaxes that, billing every remaining hop an extra
        # planning allowance inside success() without changing the real
        # per-hop delay.  0 reproduces the paper.
        self.planning_delay_ms = processing_delay_ms + scheduling_slack_per_hop_ms
        self.epsilon = epsilon
        self.pruning = (
            pruning_override
            if pruning_override is not None
            else PruningPolicy.for_strategy(strategy.probabilistic_pruning)
        )
        self.queue_backend = queue_backend
        self.queue_validate = queue_validate
        self.table = SubscriptionTable(matcher_backend=matcher_backend)
        self.queues: dict[str, OutputQueue] = {}
        self.trace = trace
        self._seq = 0
        self._size_sum = 0.0
        self._size_count = 0
        self._default_size_kb = default_size_kb
        #: Called on local delivery attempts: (subscriber, message, latency, valid).
        self.delivery_callbacks: list[DeliveryCallback] = []

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #
    def add_neighbor(
        self,
        neighbor: str,
        link: DirectedLink,
        monitor: LinkMonitor,
        deliver: Callable[[Message], None],
    ) -> None:
        """Register the outbound channel to ``neighbor``.

        ``deliver`` is invoked (at transmission-completion time) with the
        message so the system can hand it to the neighbour broker.
        """
        if neighbor in self.queues:
            raise ValueError(f"{self.name}: neighbor {neighbor!r} already wired")
        sched = ScheduledQueue(
            strategy=self.strategy,
            pruning=self.pruning,
            epsilon=self.epsilon,
            planning_delay_ms=self.planning_delay_ms,
            backend=self.queue_backend,
            validate=self.queue_validate,
        )
        self.queues[neighbor] = OutputQueue(neighbor, link, monitor, deliver, sched)

    def install(self, row: TableRow) -> None:
        if row.next_hop is not None and row.next_hop not in self.queues:
            raise ValueError(
                f"{self.name}: row for {row.subscriber!r} routes via unwired "
                f"neighbor {row.next_hop!r}"
            )
        self.table.install(row)

    # ------------------------------------------------------------------ #
    # Message path.
    # ------------------------------------------------------------------ #
    def receive(self, message: Message) -> None:
        """Message arrives from upstream (or from a local publisher)."""
        self.metrics.on_reception()
        if self.trace is not None:
            self.trace.record(self.sim.now, "receive", self.name, msg=message.msg_id)
        self.sim.schedule(
            self.processing_delay_ms,
            lambda: self._process(message),
            # Label construction is skipped when tracing is off: labels
            # exist for trace/debug inspection only, and the f-string per
            # event is measurable at ingest rates.
            label=f"{self.name}:process:{message.msg_id}" if self.trace is not None else "",
        )

    def _process(self, message: Message) -> None:
        self._size_sum += message.size_kb
        self._size_count += 1
        local, remote = self.table.match_grouped(message)
        now = self.sim.now
        for row in local:
            latency = message.hdl(now)
            valid = latency <= effective_deadline(row, message)
            price = row.price if row.price is not None else 1.0
            self.metrics.on_delivery(message.msg_id, row.subscriber, latency, price, valid)
            for callback in self.delivery_callbacks:
                callback(row.subscriber, message, latency, valid)
            if self.trace is not None:
                self.trace.record(
                    now, "deliver", self.name,
                    msg=message.msg_id, subscriber=row.subscriber, valid=valid,
                )
        for neighbor in sorted(remote):
            group = remote[neighbor]
            entry = QueueEntry(
                message, group.rows, enqueue_time=now, seq=self._seq,
                arrays=group.arrays,
            )
            self._seq += 1
            self.queues[neighbor].sched.push(entry)
            if self.trace is not None:
                self.trace.record(
                    now, "enqueue", self.name,
                    msg=message.msg_id, neighbor=neighbor, fanout=len(group),
                )
            self._try_send(neighbor)

    # ------------------------------------------------------------------ #
    # Output-queue service.
    # ------------------------------------------------------------------ #
    def average_size_kb(self) -> float:
        """Running average of processed message sizes (the ``FT`` input)."""
        if self._size_count == 0:
            return self._default_size_kb
        return self._size_sum / self._size_count

    def _context_for(self, queue: OutputQueue) -> SchedulingContext:
        rate = queue.monitor.rate()
        return SchedulingContext(
            now=self.sim.now,
            processing_delay_ms=self.planning_delay_ms,
            ft_ms=self.average_size_kb() * rate.mean,
            link_rate=rate,
        )

    def _prune(self, queue: OutputQueue) -> None:
        pruned = queue.sched.prune(self.sim.now)
        if pruned:
            if self.trace is not None:
                for entry in pruned:
                    self.trace.record(
                        self.sim.now, "prune", self.name,
                        msg=entry.message.msg_id, neighbor=queue.neighbor,
                    )
            self.metrics.on_prune(len(pruned))

    def _try_send(self, neighbor: str) -> None:
        queue = self.queues[neighbor]
        if queue.link.busy:
            return
        self._prune(queue)
        if not queue.sched:
            return
        ctx = self._context_for(queue)
        entry = queue.sched.pop_best(ctx)
        duration = queue.link.draw_transmission_time(entry.message.size_kb)
        queue.link.acquire()
        self.metrics.on_transmission()
        if self.trace is not None:
            self.trace.record(
                self.sim.now, "send", self.name,
                msg=entry.message.msg_id, neighbor=neighbor, duration=duration,
            )
        self.sim.schedule(
            duration,
            lambda: self._complete_send(neighbor, entry),
            label=f"{self.name}->{neighbor}:{entry.message.msg_id}" if self.trace is not None else "",
        )

    def _complete_send(self, neighbor: str, entry: QueueEntry) -> None:
        queue = self.queues[neighbor]
        queue.link.release()
        queue.deliver(entry.message)
        self._try_send(neighbor)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def queued_entries(self) -> int:
        """Total entries currently waiting across all output queues."""
        return sum(len(q) for q in self.queues.values())
