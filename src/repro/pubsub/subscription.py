"""Subscriptions and the per-broker subscription table (Section 4.2).

The paper's table row is ``(subscriber, filter, dl, pr, nb, NN_p, μ_p,
σ_p²)``.  :class:`TableRow` carries exactly that, plus the set of source
(publisher-hosting) brokers for which this broker lies on the routing path —
the provenance check that makes single-path routing duplicate-free on a
mesh (see :mod:`repro.pubsub.system`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.pubsub.filters import Filter
from repro.pubsub.matching import CountingIndexMatcher
from repro.pubsub.message import Message
from repro.stats.normal import Normal


@dataclass(frozen=True, slots=True)
class Subscription:
    """A subscriber's standing interest.

    ``deadline_ms`` / ``price`` are the SSD scenario's ``dl`` / ``pr``;
    both are ``None`` in the pure PSD scenario (the paper then treats the
    price as 1, which :mod:`repro.core.metrics` does).
    """

    subscriber: str
    filter: Filter
    deadline_ms: float | None = None
    price: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.price is not None and self.price < 0.0:
            raise ValueError(f"price must be non-negative, got {self.price}")


@dataclass(frozen=True, slots=True)
class TableRow:
    """One subscription-table entry at one broker.

    ``next_hop is None`` means the subscriber is local to this broker.
    ``nn``, ``rate`` describe the remaining path (``NN_p``, ``TR_p``).
    ``sources`` is the set of publisher-hosting brokers whose routed path
    to this subscriber passes through this broker; a message is forwarded
    on this row only if its source broker is in the set.

    ``path_id`` distinguishes rows when the multi-path routing extension
    installs several routes for the same subscriber (single-path routing
    always uses 0).
    """

    subscription: Subscription
    next_hop: str | None
    nn: int
    rate: Normal
    sources: frozenset[str]
    path_id: int = 0

    @property
    def is_local(self) -> bool:
        return self.next_hop is None

    @property
    def subscriber(self) -> str:
        return self.subscription.subscriber

    @property
    def deadline_ms(self) -> float | None:
        return self.subscription.deadline_ms

    @property
    def price(self) -> float | None:
        return self.subscription.price


class SubscriptionTable:
    """All rows installed at one broker, with an index for matching.

    Rows are keyed by ``(subscriber, path_id)``: single-path routing keeps
    one row per subscriber (path 0), the multi-path extension several.
    """

    def __init__(self) -> None:
        self._rows: dict[tuple[str, int], TableRow] = {}
        self._matcher: CountingIndexMatcher[tuple[str, int]] = CountingIndexMatcher()

    def install(self, row: TableRow) -> None:
        key = (row.subscriber, row.path_id)
        if key in self._rows:
            raise KeyError(f"row {key!r} already installed")
        self._rows[key] = row
        self._matcher.add(key, row.subscription.filter)

    def uninstall(self, subscriber: str) -> None:
        """Remove every row (any path) of a subscriber."""
        keys = [k for k in self._rows if k[0] == subscriber]
        if not keys:
            raise KeyError(subscriber)
        for key in keys:
            del self._rows[key]
            self._matcher.remove(key)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, subscriber: str) -> bool:
        return any(k[0] == subscriber for k in self._rows)

    def row(self, subscriber: str, path_id: int = 0) -> TableRow:
        return self._rows[(subscriber, path_id)]

    def rows(self) -> list[TableRow]:
        return [self._rows[k] for k in sorted(self._rows)]

    def match(self, message: Message) -> list[TableRow]:
        """Rows whose filter matches *and* whose sources include the
        message's origin broker (provenance check)."""
        keys = self._matcher.match(message.attributes)
        out = [
            self._rows[k]
            for k in sorted(keys)
            if message.source_broker in self._rows[k].sources
        ]
        return out

    def match_grouped(self, message: Message) -> tuple[list[TableRow], dict[str, list[TableRow]]]:
        """Split matches into (local rows, remote rows grouped by next hop).

        Within each group, rows are deduplicated by subscriber (multi-path
        can route the same subscriber through one broker via several paths
        sharing a next hop — the queue copy must count the subscriber's
        benefit once).  Local rows are likewise unique per subscriber.
        """
        local: dict[str, TableRow] = {}
        remote: dict[str, dict[str, TableRow]] = defaultdict(dict)
        for row in self.match(message):
            if row.is_local:
                local.setdefault(row.subscriber, row)
            else:
                remote[row.next_hop].setdefault(row.subscriber, row)
        return (
            list(local.values()),
            {hop: list(rows.values()) for hop, rows in remote.items()},
        )


@dataclass(frozen=True)
class RowArrays:
    """Vectorised view of a set of rows for the metric kernels.

    ``deadline``/``price`` use ``inf``/1.0 for unspecified values, matching
    the paper's PSD convention (price 1, deadline supplied by the message).
    """

    nn: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    deadline: np.ndarray
    price: np.ndarray

    @staticmethod
    def from_rows(rows: list[TableRow]) -> "RowArrays":
        n = len(rows)
        nn = np.empty(n)
        mean = np.empty(n)
        std = np.empty(n)
        deadline = np.empty(n)
        price = np.empty(n)
        for i, row in enumerate(rows):
            nn[i] = row.nn
            mean[i] = row.rate.mean
            std[i] = row.rate.std
            deadline[i] = row.deadline_ms if row.deadline_ms is not None else np.inf
            price[i] = row.price if row.price is not None else 1.0
        return RowArrays(nn=nn, mean=mean, std=std, deadline=deadline, price=price)

    def __len__(self) -> int:
        return int(self.nn.shape[0])
